//! Performance regression tests for the CPL join-graph planner (ISSUE 2).
//!
//! The E6 genome pipeline used to materialise ~23M-row cross products (the
//! translator emitted scans as raw products, and the rule-based rewriter
//! could not see join equalities through `Map`-defined variables). The
//! planner must keep that workload index-probed and product-free; these tests
//! guard the speed-up and are also run in release mode by CI.

use std::time::Duration;

use wol_repro::morphase::{Morphase, PipelineOptions};
use wol_repro::wol_engine::instances_equivalent;
use wol_repro::wol_model::ClassName;
use wol_repro::workloads::genome::{self, GenomeParams};

/// The planner-vs-raw wall-clock regression: on a moderate genome workload
/// the planned execute phase must be at least 5x faster than the raw
/// (unoptimised) plans, while producing an equivalent target.
#[test]
fn e6_planned_execution_is_at_least_5x_faster_than_raw_plans() {
    let params = GenomeParams {
        clones: 30,
        markers: 90,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let program = genome::program();

    let planned = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("planned run succeeds");
    let raw = Morphase::with_options(PipelineOptions {
        optimize_plans: false,
        ..PipelineOptions::default()
    })
    .transform(&program, &[&source][..])
    .expect("raw run succeeds");

    assert!(
        instances_equivalent(&planned.target, &raw.target, 2),
        "planned and raw targets diverge"
    );
    // The raw plans materialise the marker x marker (x clone) products; the
    // planner must stay well below them.
    assert!(
        raw.exec.max_intermediate_rows >= 10 * planned.exec.max_intermediate_rows.max(1),
        "expected >=10x fewer peak rows, got raw={} planned={}",
        raw.exec.max_intermediate_rows,
        planned.exec.max_intermediate_rows
    );
    assert!(
        planned.exec.index_probes > 0,
        "planner lost the index probes"
    );
    let speedup =
        raw.timings.execute.as_secs_f64() / planned.timings.execute.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "expected a >=5x execute speed-up, got {speedup:.1}x (raw {:?}, planned {:?})",
        raw.timings.execute,
        planned.timings.execute
    );
}

/// The full-size E6 acceptance check (100 clones x 300 markers): the genome
/// join runs on index probes, the ~23M-row cross product is gone (peak
/// operator output far below 1M rows), and the execute phase — ~20-60s
/// before the planner — finishes promptly even in debug builds.
#[test]
fn e6_full_size_genome_pipeline_has_no_cross_products() {
    let params = GenomeParams {
        clones: 100,
        markers: 300,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let run = Morphase::new()
        .transform(&genome::program(), &[&source][..])
        .expect("genome pipeline runs");

    assert_eq!(run.target.extent_size(&ClassName::new("CloneD")), 100);
    assert_eq!(run.target.extent_size(&ClassName::new("MarkerD")), 300);
    assert!(
        run.exec.max_intermediate_rows < 1_000_000,
        "cross product is back: peak operator output {} rows",
        run.exec.max_intermediate_rows
    );
    assert!(
        run.exec.index_probes > 0,
        "the genome join no longer uses index probes"
    );
    // No plan in the compiled program contains a product operator.
    for plan in &run.plans {
        assert!(
            !plan.contains("CrossJoin") && !plan.contains("NestedLoopJoin"),
            "a product survived planning:\n{plan}"
        );
    }
    // Generous absolute bound (debug builds included): the pre-planner
    // execute phase took tens of seconds in release.
    assert!(
        run.timings.execute < Duration::from_secs(10),
        "execute took {:?}",
        run.timings.execute
    );
}
