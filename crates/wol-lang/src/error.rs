//! Errors produced by the WOL language front end.

use std::fmt;

/// Errors from lexing, parsing, type checking or range-restriction analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LangError {
    /// A lexical error at a byte offset in the input.
    Lex {
        /// Byte offset of the offending character.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// A parse error.
    Parse {
        /// Byte offset near which the error occurred.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// A clause is not well-typed.
    Type {
        /// Clause identifier (index or label) the error refers to.
        clause: String,
        /// Description of the problem.
        message: String,
    },
    /// A clause is not range-restricted.
    RangeRestriction {
        /// Clause identifier (index or label) the error refers to.
        clause: String,
        /// The variables that could not be bound.
        unbound: Vec<String>,
    },
    /// A schema required by the program is missing or inconsistent.
    Schema(String),
    /// Any other invariant violation.
    Invalid(String),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { offset, message } => {
                write!(f, "lexical error at byte {offset}: {message}")
            }
            LangError::Parse { offset, message } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            LangError::Type { clause, message } => {
                write!(f, "type error in clause {clause}: {message}")
            }
            LangError::RangeRestriction { clause, unbound } => write!(
                f,
                "clause {clause} is not range-restricted: unbound variables {unbound:?}"
            ),
            LangError::Schema(m) => write!(f, "schema error: {m}"),
            LangError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<wol_model::ModelError> for LangError {
    fn from(e: wol_model::ModelError) -> Self {
        LangError::Schema(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        let e = LangError::Lex {
            offset: 3,
            message: "bad char".into(),
        };
        assert!(e.to_string().contains("byte 3"));
        let e = LangError::RangeRestriction {
            clause: "C1".into(),
            unbound: vec!["Y".into()],
        };
        assert!(e.to_string().contains("not range-restricted"));
        let e = LangError::Type {
            clause: "0".into(),
            message: "boom".into(),
        };
        assert!(e.to_string().contains("type error"));
    }

    #[test]
    fn from_model_error() {
        let m = wol_model::ModelError::Invalid("x".into());
        let e: LangError = m.into();
        assert!(matches!(e, LangError::Schema(_)));
    }
}
