//! Translation of normal-form WOL clauses into CPL queries (Figure 6's
//! "Translator to CPL").
//!
//! Each [`NormalClause`] becomes one [`cpl::Query`]: its body's class
//! membership atoms become scans combined by joins, equality atoms become
//! either binding maps (when they define a fresh variable) or filters, and the
//! clause's key and attribute terms become the query's insert action. The
//! resulting plan is handed to the CPL optimiser, which pushes filters down
//! and upgrades equality joins to hash joins — the role the paper assigns to
//! the Kleisli optimiser.

use std::collections::BTreeSet;

use cpl::plan::InsertAction;
use cpl::{Expr, Plan, Query};
use wol_engine::normalize::{NormalClause, NormalProgram};
use wol_lang::ast::{Atom, SkolemArgs, Term};

use crate::error::MorphaseError;
use crate::Result;

/// Translate a WOL term over body variables into a CPL row expression.
pub fn translate_term(term: &Term) -> Expr {
    match term {
        Term::Var(v) => Expr::Var(v.clone()),
        Term::Const(value) => Expr::Const(value.clone()),
        Term::Proj(base, label) => Expr::Proj(Box::new(translate_term(base)), label.clone()),
        Term::Record(fields) => Expr::Record(
            fields
                .iter()
                .map(|(l, t)| (l.clone(), translate_term(t)))
                .collect(),
        ),
        Term::Variant(label, payload) => {
            Expr::Variant(label.clone(), Box::new(translate_term(payload)))
        }
        Term::Skolem(class, args) => Expr::Skolem(class.clone(), Box::new(translate_key(args))),
    }
}

/// Translate Skolem arguments into the key expression whose value identifies
/// the created object.
pub fn translate_key(args: &SkolemArgs) -> Expr {
    match args {
        SkolemArgs::Positional(ts) if ts.len() == 1 => translate_term(&ts[0]),
        SkolemArgs::Positional(ts) => Expr::Record(
            ts.iter()
                .enumerate()
                .map(|(i, t)| (format!("_{i}"), translate_term(t)))
                .collect(),
        ),
        SkolemArgs::Named(fields) => Expr::Record(
            fields
                .iter()
                .map(|(l, t)| (l.clone(), translate_term(t)))
                .collect(),
        ),
    }
}

fn translate_atom_predicate(atom: &Atom) -> Result<Expr> {
    Ok(match atom {
        Atom::Eq(s, t) => Expr::Eq(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Neq(s, t) => Expr::Neq(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Lt(s, t) => Expr::Lt(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Leq(s, t) => Expr::Leq(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Member(_, c) => {
            return Err(MorphaseError::Compilation(format!(
                "membership in `{c}` cannot appear as a filter predicate"
            )))
        }
        Atom::InSet(_, _) => {
            return Err(MorphaseError::Compilation(
                "`member` atoms are not supported by the CPL translator".to_string(),
            ))
        }
    })
}

/// Compile one normal clause into a CPL query.
pub fn compile_clause(clause: &NormalClause, optimize_plan: bool) -> Result<Query> {
    // 1. Scans for every membership atom.
    let mut plan: Option<Plan> = None;
    let mut produced: BTreeSet<String> = BTreeSet::new();
    let mut rest: Vec<&Atom> = Vec::new();
    for atom in &clause.body {
        match atom {
            Atom::Member(Term::Var(v), class) => {
                let scan = Plan::scan(class.clone(), v.clone());
                produced.insert(v.clone());
                plan = Some(match plan {
                    None => scan,
                    Some(existing) => existing.join(scan, None),
                });
            }
            Atom::Member(_, class) => {
                return Err(MorphaseError::Compilation(format!(
                    "membership of a non-variable term in `{class}` is not supported"
                )))
            }
            other => rest.push(other),
        }
    }
    let mut plan = plan.ok_or_else(|| {
        MorphaseError::Compilation(format!(
            "clause for `{}` has no source membership atoms",
            clause.class
        ))
    })?;

    // 2. Remaining atoms: binding maps (defining equations) or filters, in
    //    dependency order.
    let mut remaining: Vec<&Atom> = rest;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut deferred: Vec<&Atom> = Vec::new();
        for atom in remaining.drain(..) {
            // A defining equation `V = t` (or `t = V`) with V fresh and t computable.
            let defining = match atom {
                Atom::Eq(Term::Var(v), t) if !produced.contains(v) && covered(t, &produced) => {
                    Some((v.clone(), t))
                }
                Atom::Eq(t, Term::Var(v)) if !produced.contains(v) && covered(t, &produced) => {
                    Some((v.clone(), t))
                }
                _ => None,
            };
            if let Some((var, term)) = defining {
                plan = plan.map(vec![(var.clone(), translate_term(term))]);
                produced.insert(var);
                progressed = true;
                continue;
            }
            // A filter whose variables are all available.
            if atom.var_set().iter().all(|v| produced.contains(v)) {
                plan = plan.filter(translate_atom_predicate(atom)?);
                progressed = true;
                continue;
            }
            deferred.push(atom);
        }
        if !progressed && !deferred.is_empty() {
            return Err(MorphaseError::Compilation(format!(
                "cannot order the body atoms of the clause for `{}`: {} atoms remain unplaced",
                clause.class,
                deferred.len()
            )));
        }
        remaining = deferred;
    }

    if optimize_plan {
        plan = cpl::optimize(plan);
    }

    // 3. The insert action.
    let insert = InsertAction {
        class: clause.class.clone(),
        key: translate_key(&clause.key),
        attrs: clause
            .attrs
            .iter()
            .map(|(l, t)| (l.clone(), translate_term(t)))
            .collect(),
    };
    Ok(Query {
        name: clause.provenance.join("+"),
        plan,
        inserts: vec![insert],
    })
}

fn covered(term: &Term, produced: &BTreeSet<String>) -> bool {
    term.var_set().iter().all(|v| produced.contains(v))
}

/// Compile a whole normal-form program into CPL queries.
pub fn compile_program(normal: &NormalProgram, optimize_plans: bool) -> Result<Vec<Query>> {
    normal
        .clauses
        .iter()
        .map(|c| compile_clause(c, optimize_plans))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpl::exec::{execute_query, ExecStats};
    use cpl::expr::EvalCtx;
    use wol_engine::{normalize, NormalizeOptions};
    use wol_model::{ClassName, Instance, Value};
    use workloads::cities::{generate_euro, CitiesWorkload};

    #[test]
    fn cities_program_compiles_and_runs_through_cpl() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let queries = compile_program(&normal, true).unwrap();
        assert_eq!(queries.len(), normal.len());

        let source = generate_euro(4, 3, 17);
        let refs = [&source];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut target = Instance::new("target");
        for query in &queries {
            execute_query(query, &mut ctx, &mut target, &mut stats).unwrap();
        }
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 4);
        assert_eq!(target.extent_size(&ClassName::new("CityT")), 12);
        assert!(stats.rows_scanned > 0);

        // The CPL path agrees with the engine's reference executor.
        let reference = wol_engine::execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(
            reference.extent_size(&ClassName::new("CityT")),
            target.extent_size(&ClassName::new("CityT"))
        );
        for (_, value) in target.objects(&ClassName::new("CountryT")) {
            assert!(value.project("capital").is_some());
        }
    }

    #[test]
    fn optimised_plans_use_hash_joins_for_the_cities_join() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let optimised = compile_program(&normal, true).unwrap();
        let unoptimised = compile_program(&normal, false).unwrap();
        let rendered_opt: String = optimised.iter().map(|q| q.plan.render()).collect();
        let rendered_raw: String = unoptimised.iter().map(|q| q.plan.render()).collect();
        assert!(rendered_opt.contains("HashJoin"));
        assert!(!rendered_raw.contains("HashJoin"));
    }

    #[test]
    fn translate_key_styles() {
        let single = SkolemArgs::Positional(vec![Term::var("N")]);
        assert_eq!(translate_key(&single), Expr::Var("N".to_string()));
        let multi = SkolemArgs::Positional(vec![Term::var("A"), Term::var("B")]);
        assert!(matches!(translate_key(&multi), Expr::Record(fields) if fields.len() == 2));
        let named = SkolemArgs::Named(vec![("name".to_string(), Term::var("N"))]);
        assert!(matches!(translate_key(&named), Expr::Record(fields) if fields[0].0 == "name"));
    }

    #[test]
    fn translate_term_shapes() {
        let term = Term::variant("euro_city", Term::skolem("CountryT", [Term::var("N")]));
        let expr = translate_term(&term);
        match expr {
            Expr::Variant(label, payload) => {
                assert_eq!(label, "euro_city");
                assert!(matches!(*payload, Expr::Skolem(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            translate_term(&Term::Const(Value::int(3))),
            Expr::Const(Value::int(3))
        );
    }

    #[test]
    fn unsupported_member_atom_reported() {
        use std::collections::BTreeMap;
        let clause = NormalClause {
            class: ClassName::new("Tgt"),
            key: SkolemArgs::Positional(vec![Term::var("N")]),
            attrs: BTreeMap::new(),
            body: vec![
                Atom::InSet(Term::var("X"), Term::var("S")),
                Atom::Member(Term::var("S"), ClassName::new("Src")),
            ],
            creates: true,
            provenance: vec!["t".to_string()],
        };
        let err = compile_clause(&clause, false).unwrap_err();
        assert!(matches!(err, MorphaseError::Compilation(_)));
    }
}
