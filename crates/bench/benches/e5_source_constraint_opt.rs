//! Experiment E5 — optimising derived clauses with source constraints.
//!
//! Paper claim (Section 4.2, Example 4.1): using the key constraint on
//! `CountryE.name`, the derived clause that joins `CountryE` with itself can
//! be simplified to a single scan, which "is simpler and more efficient to
//! evaluate". The workload is the split (T4)/(T5) description of `CountryT`
//! over a growing `CountryE` extent, normalised with and without
//! source-constraint optimisation and then executed.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wol_engine::{execute, normalize, NormalizeOptions};
use wol_lang::program::{Program, SchemaBinding};
use workloads::cities::{generate_euro, CitiesWorkload};

/// The Example 4.1 program: the CountryT description split over two clauses,
/// with the derived self-join made explicit in a single clause.
fn example_4_1_program(workload: &CitiesWorkload) -> Program {
    Program::new(
        "example_4_1",
        vec![SchemaBinding::keyed(workload.euro_schema.clone(), workload.euro_keys.clone())],
        SchemaBinding::keyed(workload.target_schema.clone(), workload.target_keys.clone()),
    )
    .with_text(
        "T: X in CountryT, X.name = N, X.language = L, X.currency = C \
             <= Y in CountryE, Y.name = N, Y.language = L, Z in CountryE, Z.name = N, Z.currency = C;\n\
         C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
         C8: X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;",
    )
}

fn bench_source_constraint_opt(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_source_constraint_opt");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let workload = CitiesWorkload::new();
    let program = example_4_1_program(&workload);
    let optimised = normalize(&program, &NormalizeOptions::default()).unwrap();
    let unoptimised = normalize(
        &program,
        &NormalizeOptions {
            use_source_constraints: false,
            ..NormalizeOptions::default()
        },
    )
    .unwrap();

    for &countries in &[50usize, 200, 500] {
        let source = generate_euro(countries, 1, 3);
        group.bench_with_input(
            BenchmarkId::new("with_source_key", countries),
            &source,
            |b, source| b.iter(|| execute(&optimised, &[source][..], "t").expect("executes")),
        );
        group.bench_with_input(
            BenchmarkId::new("without_source_key", countries),
            &source,
            |b, source| b.iter(|| execute(&unoptimised, &[source][..], "t").expect("executes")),
        );
    }
    group.finish();

    eprintln!(
        "[E5] derived clause size with source key: {}, without: {} (smaller is better)",
        optimised.size(),
        unoptimised.size()
    );
}

criterion_group!(benches, bench_source_constraint_opt);
criterion_main!(benches);
