//! The workspace-wide parallelism knob and the persistent worker pool.
//!
//! Both execution engines (`cpl`'s plan executor and `wol-engine`'s clause
//! matcher) partition their work over pool workers. How many workers is a
//! *policy* decision threaded down from the pipeline driver, so it lives here
//! in the shared model crate: a [`Parallelism`] value is "use `n` OS
//! threads", defaulting to the machine's available cores and overridable with
//! the `WOL_THREADS` environment variable (the hook the CI thread-matrix uses
//! to run the whole suite single- and multi-threaded).
//!
//! ## The pool threading model
//!
//! Until PR 5 every parallel operator paid a fresh [`std::thread::scope`]
//! spawn round (~100µs for four workers) — cheap for one big join, ruinous
//! for a pipeline of medium operators. [`WorkerPool`] replaces the per
//! operator scopes with *persistent* workers:
//!
//! * A pool for `Parallelism(n)` spawns `n - 1` long-lived OS workers that
//!   block on a shared channel of jobs. [`Parallelism::sequential`] spawns
//!   **no** threads at all.
//! * [`WorkerPool::scope`] submits a batch of closures and blocks until all
//!   of them have finished. The *calling thread participates*: it executes
//!   queued jobs itself instead of idling, so a batch of `n` jobs runs at
//!   concurrency `n` — and, crucially, a scope entered *from a pool worker*
//!   (query-level parallelism nesting operator-level parallelism) can always
//!   drain its own jobs even when every other worker is busy. There is no
//!   configuration in which `scope` deadlocks waiting for a worker.
//! * Results come back **in submission order**, whatever order jobs actually
//!   ran in, so pool execution is as deterministic as the scoped-thread
//!   rounds it replaces.
//! * A panicking job is caught on the worker (the worker itself survives and
//!   keeps serving jobs), recorded in the job's result slot, and re-raised on
//!   the calling thread once the whole batch has finished — the same
//!   propagate-on-join contract as [`std::thread::scope`], never a hang.
//! * Dropping a pool closes the job channel and joins every worker.
//!
//! [`WorkerPool::shared`] returns a process-wide pool per thread count, so
//! every executor sharing one `Parallelism` shares one set of workers instead
//! of re-spawning per operator.
//!
//! Parallel execution is required to be *deterministic*: the same inputs must
//! produce bit-identical outputs at every thread count. The executors achieve
//! that by partitioning work by data (contiguous chunks, or key-hash shards)
//! rather than by scheduling, and by reassembling results in input order —
//! the pool only decides *where* a partition runs, never what it computes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Number of worker threads parallel operators may use. Always at least 1;
/// `1` means fully sequential execution (no threads are spawned).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Parallelism(usize);

impl Parallelism {
    /// Exactly `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        Parallelism(threads.max(1))
    }

    /// Sequential execution: one worker, no threads spawned.
    pub fn sequential() -> Self {
        Parallelism(1)
    }

    /// The environment's parallelism: `WOL_THREADS` if set to an integer
    /// (`0` clamps to sequential, matching [`Parallelism::new`]; leading and
    /// trailing whitespace is tolerated), otherwise the number of available
    /// cores (1 if unknown). A set-but-unparsable `WOL_THREADS` falls back to
    /// the available cores and warns **once** per process on stderr — before
    /// PR 5 the garbage value was silently swallowed, which made a typoed
    /// `WOL_THREADS=fuor` indistinguishable from the default.
    pub fn from_env() -> Self {
        match std::env::var("WOL_THREADS") {
            Ok(raw) => match Self::from_spec(&raw) {
                Some(parallelism) => parallelism,
                None => {
                    static WARN_ONCE: std::sync::Once = std::sync::Once::new();
                    WARN_ONCE.call_once(|| {
                        eprintln!(
                            "[wol] WOL_THREADS={raw:?} is not an integer; \
                             falling back to all available cores"
                        );
                    });
                    Self::available()
                }
            },
            Err(_) => Self::available(),
        }
    }

    /// Parse a `WOL_THREADS`-style specification: an integer, surrounded by
    /// optional whitespace. `0` clamps to sequential (matching
    /// [`Parallelism::new`]); anything unparsable — including an empty or
    /// all-whitespace string — is `None`. Split out of [`from_env`] so the
    /// parsing rules are unit-testable without racing on the process
    /// environment.
    ///
    /// [`from_env`]: Parallelism::from_env
    pub fn from_spec(raw: &str) -> Option<Self> {
        raw.trim().parse::<usize>().ok().map(Parallelism::new)
    }

    /// The machine's available cores, ignoring `WOL_THREADS`.
    pub fn available() -> Self {
        Parallelism(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// The number of worker threads.
    pub fn threads(self) -> usize {
        self.0
    }

    /// True when no threads would be spawned.
    pub fn is_sequential(self) -> bool {
        self.0 <= 1
    }
}

impl Default for Parallelism {
    /// The environment default ([`Parallelism::from_env`]).
    fn default() -> Self {
        Self::from_env()
    }
}

/// Split `n` items into at most `threads` contiguous, order-preserving index
/// ranges of near-equal length (the first `n % threads` ranges are one item
/// longer). Empty ranges are never emitted, so the result has
/// `min(threads, n)` entries; concatenating the ranges in order yields
/// `0..n`. Partitioning work this way keeps parallel results mergeable in
/// input order, which is what makes the executors deterministic.
pub fn chunk_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let workers = threads.max(1).min(n);
    if workers == 0 {
        return Vec::new();
    }
    let base = n / workers;
    let extra = n % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for i in 0..workers {
        let len = base + usize::from(i < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, n);
    ranges
}

// ---------------------------------------------------------------------------
// The persistent worker pool.
// ---------------------------------------------------------------------------

/// A job as the executors submit it: a closure borrowing scope-local data.
pub type Job<'env, T> = Box<dyn FnOnce() -> T + Send + 'env>;

/// A type-erased ticket shipped to pool workers through the job channel.
type Ticket = Box<dyn FnOnce() + Send + 'static>;

/// One in-flight [`WorkerPool::scope`] batch: the job queue, the result
/// slots, and the completion latch. Jobs are popped by whoever gets there
/// first (the calling thread or a pool worker) and their results land in the
/// slot of their submission index, so result order never depends on
/// scheduling.
struct ScopeState<'env, T> {
    jobs: Mutex<VecDeque<(usize, Job<'env, T>)>>,
    results: Mutex<Vec<Option<std::thread::Result<T>>>>,
    remaining: Mutex<usize>,
    done: Condvar,
}

impl<T: Send> ScopeState<'_, T> {
    /// Pop and run one job if any are queued; returns whether a job ran.
    /// Panics are caught into the job's result slot — the executing thread
    /// (pool worker or caller) always survives — and the latch counts the
    /// job as finished either way, so a panicking batch completes instead of
    /// hanging.
    fn run_one(&self) -> bool {
        let popped = self.jobs.lock().expect("pool scope poisoned").pop_front();
        let Some((slot, job)) = popped else {
            return false;
        };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        self.results.lock().expect("pool scope poisoned")[slot] = Some(result);
        let mut remaining = self.remaining.lock().expect("pool scope poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
        true
    }
}

/// A persistent pool of worker threads shared by the parallel executors.
/// See the module docs for the threading model; the short version:
/// submission-ordered results, caller participation (no deadlocks, nesting
/// allowed), panic propagation on join, workers joined on drop.
pub struct WorkerPool {
    /// Job channel; `None` only during drop (closing it stops the workers).
    sender: Option<Sender<Ticket>>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
    /// Live worker-thread count, for lifecycle assertions: incremented as a
    /// worker starts, decremented as its loop exits.
    live: Arc<AtomicUsize>,
}

impl WorkerPool {
    /// A pool sized for `parallelism`: `threads - 1` OS workers (the calling
    /// thread is the remaining unit of concurrency), so
    /// [`Parallelism::sequential`] spawns no threads at all.
    pub fn new(parallelism: Parallelism) -> Self {
        let threads = parallelism.threads();
        let (sender, receiver) = channel::<Ticket>();
        let receiver = Arc::new(Mutex::new(receiver));
        let live = Arc::new(AtomicUsize::new(0));
        let workers = (0..threads.saturating_sub(1))
            .map(|i| {
                let receiver = Arc::clone(&receiver);
                let live = Arc::clone(&live);
                std::thread::Builder::new()
                    .name(format!("wol-worker-{i}"))
                    .spawn(move || {
                        live.fetch_add(1, Ordering::SeqCst);
                        loop {
                            // Hold the lock only while popping: a running job
                            // must never block the other workers' queue.
                            let ticket = {
                                let receiver = receiver.lock().expect("pool channel poisoned");
                                receiver.recv()
                            };
                            match ticket {
                                Ok(ticket) => ticket(),
                                Err(_) => break, // channel closed: pool dropped
                            }
                        }
                        live.fetch_sub(1, Ordering::SeqCst);
                    })
                    .expect("spawning a pool worker failed")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers,
            threads,
            live,
        }
    }

    /// The process-wide shared pool for a thread count. Executors sharing a
    /// [`Parallelism`] share workers instead of spawning their own; the pool
    /// persists for the life of the process (idle workers block on the job
    /// channel and cost nothing).
    pub fn shared(parallelism: Parallelism) -> Arc<WorkerPool> {
        static POOLS: OnceLock<Mutex<BTreeMap<usize, Arc<WorkerPool>>>> = OnceLock::new();
        let pools = POOLS.get_or_init(|| Mutex::new(BTreeMap::new()));
        let mut pools = pools.lock().expect("pool registry poisoned");
        Arc::clone(
            pools
                .entry(parallelism.threads())
                .or_insert_with(|| Arc::new(WorkerPool::new(parallelism))),
        )
    }

    /// The concurrency this pool provides (OS workers + the calling thread).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The number of OS worker threads the pool spawned (`threads() - 1`).
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// A handle to the live worker-thread counter, for lifecycle tests: the
    /// count drops to zero once [`Drop`] has joined every worker.
    pub fn live_workers(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.live)
    }

    /// Run a batch of jobs to completion and return their results **in
    /// submission order**. The calling thread executes queued jobs alongside
    /// the pool workers (see the module docs), then blocks until stragglers
    /// stolen by workers finish. If any job panicked, the first panic (by
    /// submission index — the one a sequential left-to-right run would have
    /// hit first) is re-raised here after the whole batch has completed.
    pub fn scope<'env, T: Send + 'env>(&self, jobs: Vec<Job<'env, T>>) -> Vec<T> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let state = Arc::new(ScopeState {
            jobs: Mutex::new(jobs.into_iter().enumerate().collect()),
            results: Mutex::new((0..n).map(|_| None).collect()),
            remaining: Mutex::new(n),
            done: Condvar::new(),
        });
        // Offer at most (jobs - 1) tickets to the workers — the caller will
        // run at least one job itself — capped at the worker count.
        let tickets = self.worker_count().min(n.saturating_sub(1));
        if tickets > 0 {
            let sender = self.sender.as_ref().expect("pool is live");
            for _ in 0..tickets {
                let state = Arc::clone(&state);
                // SAFETY: the ticket borrows `'env` data only through the
                // queued jobs. `scope` does not return until `remaining`
                // reaches zero, i.e. until every job has *finished running*
                // (panics included — `run_one` counts them); a ticket that
                // fires after that pops nothing and touches no borrowed
                // data. So no `'env` borrow is ever used after `scope`
                // returns, which is the invariant the lifetime erasure
                // needs.
                //
                // Each ticket *drains* the queue rather than running a
                // single job: with more jobs than workers (a wide query
                // stage), every worker keeps pulling until the batch is
                // empty instead of leaving the surplus to the caller.
                let ticket: Box<dyn FnOnce() + Send + 'env> =
                    Box::new(move || while state.run_one() {});
                let ticket: Ticket = unsafe { std::mem::transmute(ticket) };
                // A send error means the pool is mid-drop; impossible while
                // `&self` is alive, but harmless: the caller runs every job.
                let _ = sender.send(ticket);
            }
        }
        // Caller participation: drain the queue, then wait for stragglers.
        while state.run_one() {}
        let mut remaining = state.remaining.lock().expect("pool scope poisoned");
        while *remaining > 0 {
            remaining = state
                .done
                .wait(remaining)
                .expect("pool scope wait poisoned");
        }
        drop(remaining);
        let results = std::mem::take(&mut *state.results.lock().expect("pool scope poisoned"));
        let mut values = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for result in results {
            match result.expect("latch counted every job") {
                Ok(value) => values.push(value),
                Err(payload) => {
                    if panic.is_none() {
                        panic = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        values
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel wakes every idle worker with a recv error.
        drop(self.sender.take());
        for worker in self.workers.drain(..) {
            // A worker only panics if a ticket's own latch bookkeeping
            // panicked; surface that instead of swallowing it.
            worker.join().expect("pool worker panicked outside a job");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallelism_clamps_and_reports() {
        assert_eq!(Parallelism::new(0).threads(), 1);
        assert_eq!(Parallelism::new(8).threads(), 8);
        assert!(Parallelism::sequential().is_sequential());
        assert!(!Parallelism::new(2).is_sequential());
        assert!(Parallelism::available().threads() >= 1);
        assert!(Parallelism::from_env().threads() >= 1);
        assert!(Parallelism::default().threads() >= 1);
    }

    /// The `WOL_THREADS` parsing rules: integers (with surrounding
    /// whitespace) parse, `0` clamps to sequential, and garbage — including
    /// empty and all-whitespace strings — is rejected so `from_env` can warn
    /// and fall back instead of silently using all cores.
    #[test]
    fn thread_spec_parsing_accepts_integers_and_rejects_garbage() {
        assert_eq!(Parallelism::from_spec("4"), Some(Parallelism::new(4)));
        assert_eq!(Parallelism::from_spec(" 8\t"), Some(Parallelism::new(8)));
        // `0` is accepted and clamps to sequential, like `Parallelism::new`.
        assert_eq!(Parallelism::from_spec("0"), Some(Parallelism::sequential()));
        for garbage in ["", "  ", "four", "4.0", "-2", "8threads", "0x8"] {
            assert_eq!(
                Parallelism::from_spec(garbage),
                None,
                "`{garbage}` should not parse"
            );
        }
    }

    #[test]
    fn chunk_ranges_cover_exactly_in_order() {
        for n in 0..40usize {
            for threads in 1..10usize {
                let ranges = chunk_ranges(n, threads);
                assert_eq!(ranges.len(), threads.min(n));
                let mut expected = 0usize;
                for range in &ranges {
                    assert_eq!(range.start, expected);
                    assert!(!range.is_empty());
                    expected = range.end;
                }
                assert_eq!(expected, n);
                // Near-equal: lengths differ by at most one.
                if let (Some(max), Some(min)) = (
                    ranges.iter().map(|r| r.len()).max(),
                    ranges.iter().map(|r| r.len()).min(),
                ) {
                    assert!(max - min <= 1);
                }
            }
        }
    }

    /// A sequential pool spawns no OS threads; scope still runs every job
    /// (on the caller) and returns results in submission order.
    #[test]
    fn sequential_pool_spawns_no_threads_and_runs_inline() {
        let pool = WorkerPool::new(Parallelism::sequential());
        assert_eq!(pool.worker_count(), 0);
        assert_eq!(pool.live_workers().load(Ordering::SeqCst), 0);
        let caller = std::thread::current().id();
        let jobs: Vec<Job<'_, (usize, std::thread::ThreadId)>> = (0..5usize)
            .map(|i| {
                Box::new(move || (i * i, std::thread::current().id()))
                    as Job<'_, (usize, std::thread::ThreadId)>
            })
            .collect();
        let results = pool.scope(jobs);
        for (i, (square, thread)) in results.iter().enumerate() {
            assert_eq!(*square, i * i);
            assert_eq!(*thread, caller, "sequential jobs must run on the caller");
        }
    }

    /// The pool is reused across many scope rounds (the whole point of
    /// persistence): results stay submission-ordered, borrowed data works,
    /// and the worker count never changes between rounds.
    #[test]
    fn pool_reuse_across_rounds_keeps_results_in_submission_order() {
        let pool = WorkerPool::new(Parallelism::new(4));
        assert_eq!(pool.worker_count(), 3);
        let data: Vec<usize> = (0..100).collect();
        for round in 0..50 {
            let results = pool.scope(
                data.iter()
                    .map(|&x| Box::new(move || x * 2 + round) as Job<'_, usize>)
                    .collect(),
            );
            let expected: Vec<usize> = data.iter().map(|&x| x * 2 + round).collect();
            assert_eq!(results, expected, "round {round} diverged");
            assert_eq!(pool.worker_count(), 3, "workers died between rounds");
        }
    }

    /// A panicking job propagates to the scope caller as a panic (never a
    /// hang), the non-panicking jobs of the same batch still complete, and
    /// the pool remains fully usable afterwards.
    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(Parallelism::new(4));
        let completed = AtomicUsize::new(0);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.scope(
                (0..8usize)
                    .map(|i| {
                        let completed = &completed;
                        Box::new(move || {
                            if i == 3 {
                                panic!("job {i} exploded");
                            }
                            completed.fetch_add(1, Ordering::SeqCst);
                            i
                        }) as Job<'_, usize>
                    })
                    .collect(),
            )
        }));
        let payload = outcome.expect_err("the panic must propagate to the caller");
        let message = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(message.contains("job 3 exploded"), "got `{message}`");
        // Every other job of the batch ran to completion before the join.
        assert_eq!(completed.load(Ordering::SeqCst), 7);
        // The workers caught the panic and keep serving jobs.
        let results = pool.scope(
            (0..8usize)
                .map(|i| Box::new(move || i + 1) as Job<'_, usize>)
                .collect(),
        );
        assert_eq!(results, (1..9).collect::<Vec<_>>());
    }

    /// Dropping the pool joins every worker: the live-thread count falls to
    /// zero (no leaked threads, no hang).
    #[test]
    fn drop_joins_all_workers() {
        let pool = WorkerPool::new(Parallelism::new(4));
        let live = pool.live_workers();
        // Give the workers a beat to register themselves, then verify they
        // are all alive before the drop.
        for _ in 0..100 {
            if live.load(Ordering::SeqCst) == 3 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(live.load(Ordering::SeqCst), 3);
        drop(pool);
        assert_eq!(
            live.load(Ordering::SeqCst),
            0,
            "drop returned before every worker exited"
        );
    }

    /// A scope entered from inside a pool job (query-level parallelism
    /// nesting operator-level parallelism) completes even when the batch
    /// saturates every worker: the job's thread drains the nested scope
    /// itself.
    #[test]
    fn nested_scopes_cannot_deadlock() {
        let pool = Arc::new(WorkerPool::new(Parallelism::new(4)));
        let results = pool.scope(
            (0..8usize)
                .map(|i| {
                    let pool = Arc::clone(&pool);
                    Box::new(move || {
                        let inner = pool.scope(
                            (0..4usize)
                                .map(|j| Box::new(move || i * 10 + j) as Job<'_, usize>)
                                .collect(),
                        );
                        inner.into_iter().sum::<usize>()
                    }) as Job<'_, usize>
                })
                .collect(),
        );
        let expected: Vec<usize> = (0..8usize)
            .map(|i| (0..4usize).map(|j| i * 10 + j).sum())
            .collect();
        assert_eq!(results, expected);
    }

    /// The shared registry hands out one pool per thread count and the same
    /// pool on repeated asks.
    #[test]
    fn shared_pools_are_cached_per_thread_count() {
        let a = WorkerPool::shared(Parallelism::new(3));
        let b = WorkerPool::shared(Parallelism::new(3));
        assert!(Arc::ptr_eq(&a, &b));
        let c = WorkerPool::shared(Parallelism::new(2));
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(a.threads(), 3);
        assert_eq!(c.threads(), 2);
    }

    /// More jobs than workers queue and complete; fewer jobs than workers
    /// leave the idle workers blocked without disturbing the batch.
    #[test]
    fn job_counts_above_and_below_the_worker_count() {
        let pool = WorkerPool::new(Parallelism::new(3));
        let many: Vec<usize> = pool.scope(
            (0..64usize)
                .map(|i| Box::new(move || i) as Job<'_, usize>)
                .collect(),
        );
        assert_eq!(many, (0..64).collect::<Vec<_>>());
        let few: Vec<usize> = pool.scope(vec![Box::new(|| 42usize) as Job<'_, usize>]);
        assert_eq!(few, vec![42]);
        assert!(pool.scope(Vec::<Job<'_, usize>>::new()).is_empty());
    }

    /// A batch wider than the worker count is genuinely shared: tickets
    /// drain the queue (they are not one-shot), so with jobs long enough for
    /// the workers to wake up, more than one thread ends up executing them —
    /// the caller alone cannot have run the whole batch.
    #[test]
    fn wide_batches_are_drained_by_multiple_threads() {
        let pool = WorkerPool::new(Parallelism::new(4));
        let threads: Vec<std::thread::ThreadId> = pool.scope(
            (0..32usize)
                .map(|_| {
                    Box::new(|| {
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        std::thread::current().id()
                    }) as Job<'_, std::thread::ThreadId>
                })
                .collect(),
        );
        let distinct: std::collections::HashSet<_> = threads.iter().collect();
        assert!(
            distinct.len() > 1,
            "a 32-job batch on a 4-thread pool ran entirely on one thread"
        );
    }
}
