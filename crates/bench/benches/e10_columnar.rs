//! Experiment E10 — columnar (batch-at-a-time) scan→filter→project.
//!
//! PR 7 stores derived per-(class, attribute) column chunks — typed vectors
//! with missing-value bitmaps and a dictionary-encoded string column — and
//! teaches the executor to answer qualifying scan→filter→project towers over
//! them with vectorized predicate kernels, selection vectors and late
//! materialization. This bench measures that path against the row-at-a-time
//! executor on a 100× scaled E6 genome extent (30k markers), across the
//! {1, 2, 4, 8} thread matrix, and — via the [`bench::CountingAlloc`]
//! installed as the global allocator — compares the peak memory each mode
//! touches while scanning. Both modes must produce the identical row stream
//! and bit-identical target instance at every point; the wall-clock and
//! peak-byte sides land in `BENCH_e10.json`. The ≥3× release throughput
//! guard lives in `tests/perf_regression.rs`.

use std::time::{Duration, Instant};

use cpl::{Expr, Plan};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wol_model::{ClassName, Instance, Value};
use workloads::genome::{self, GenomeParams};

#[global_allocator]
static ALLOC: bench::CountingAlloc = bench::CountingAlloc;

/// The measured plan: a selective integer-range filter over the (optional,
/// hence bitmap-carrying) `position` column, then a projection that keeps
/// the marker identity and two attributes. Exactly the tower shape the
/// columnar executor extracts.
fn tower_plan() -> Plan {
    Plan::scan("MarkerS", "M")
        .filter(Expr::Leq(
            Box::new(Expr::var("M").proj("position")),
            Box::new(Expr::Const(Value::int(25_000_000))),
        ))
        .map(vec![
            ("NAME".to_string(), Expr::var("M").proj("name")),
            ("POS".to_string(), Expr::var("M").proj("position")),
        ])
}

/// The same tower wrapped in an insert action, so target construction (and
/// with it output row *order*) is part of what determinism is judged on.
fn tower_query() -> cpl::Query {
    cpl::Query {
        name: "e10_tower".to_string(),
        plan: tower_plan(),
        inserts: vec![cpl::InsertAction {
            class: ClassName::new("MarkerOut"),
            key: Expr::var("M"),
            attrs: vec![
                ("name".to_string(), Expr::var("NAME")),
                ("position".to_string(), Expr::var("POS")),
            ],
        }],
    }
}

fn run_tower(
    source: &Instance,
    threads: usize,
    columnar: bool,
) -> (Vec<cpl::Row>, Duration, cpl::ExecStats) {
    let refs = [source];
    let mut ctx =
        cpl::expr::EvalCtx::new(&refs[..]).with_parallelism(cpl::Parallelism::new(threads));
    ctx.set_columnar(columnar);
    let mut stats = cpl::ExecStats::default();
    let start = Instant::now();
    let rows = cpl::run_plan(&tower_plan(), &mut ctx, &mut stats).expect("plan runs");
    (rows, start.elapsed(), stats)
}

fn build_target(source: &Instance, threads: usize, columnar: bool) -> Instance {
    let refs = [source];
    let mut ctx =
        cpl::expr::EvalCtx::new(&refs[..]).with_parallelism(cpl::Parallelism::new(threads));
    ctx.set_columnar(columnar);
    let mut stats = cpl::ExecStats::default();
    let mut target = Instance::new("e10_target");
    cpl::execute_query(&tower_query(), &mut ctx, &mut target, &mut stats).expect("query executes");
    target
}

fn bench_columnar(c: &mut Criterion) {
    let mut group = c.benchmark_group("e10_columnar");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    // 100× the E6 genome shape: 10k clones, 30k markers.
    let source = genome::generate_source(&GenomeParams::scaled(100));
    // Warm the derived column cache once, so every measured run sees the
    // steady state (the build cost is itself reported below).
    let column_build_start = Instant::now();
    let (warm_rows, _, _) = run_tower(&source, 1, true);
    let column_build = column_build_start.elapsed();
    assert!(!warm_rows.is_empty(), "the tower must select something");

    for (mode, columnar) in [("row", false), ("columnar", true)] {
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(mode, threads), |b| {
                b.iter(|| run_tower(&source, threads, columnar))
            });
        }
    }
    group.finish();

    // Machine-readable summary: per mode and thread count the best-of-two
    // wall-clock and the peak bytes allocated during the scan, plus the
    // cross-mode throughput ratio at one thread (the vectorization win,
    // isolated from parallelism). Determinism is asserted along the way:
    // identical rows and bit-identical targets at every point.
    let (base_rows, _, base_stats) = run_tower(&source, 1, false);
    let base_target = build_target(&source, 1, false);
    let mut json = bench::BenchJson::new()
        .str("bench", "e10_columnar")
        .str("workload", "e6_genome_x100")
        .int("scan_rows", base_stats.rows_scanned as u64)
        .int("rows_selected", base_rows.len() as u64)
        .num("column_build_secs", column_build.as_secs_f64());
    let mut secs_at: [[f64; 2]; 4] = [[0.0; 2]; 4];
    for (mode_idx, (mode, columnar)) in [("row", false), ("columnar", true)].iter().enumerate() {
        let mut curve = bench::BenchJson::new();
        for (t_idx, threads) in [1usize, 2, 4, 8].iter().enumerate() {
            bench::CountingAlloc::reset_peak();
            let live_before = bench::CountingAlloc::current_bytes();
            let (rows, first, stats) = run_tower(&source, *threads, *columnar);
            let peak = bench::CountingAlloc::peak_bytes().saturating_sub(live_before);
            assert_eq!(rows, base_rows, "{mode} rows diverged at {threads} threads");
            assert_eq!(
                stats, base_stats,
                "{mode} ExecStats diverged at {threads} threads"
            );
            let target = build_target(&source, *threads, *columnar);
            assert_eq!(
                target, base_target,
                "{mode} target diverged at {threads} threads"
            );
            let (_, second, _) = run_tower(&source, *threads, *columnar);
            let best = first.min(second);
            secs_at[t_idx][mode_idx] = best.as_secs_f64();
            curve = curve.obj(
                &format!("threads_{threads}"),
                bench::BenchJson::new()
                    .num("scan_secs", best.as_secs_f64())
                    .int("peak_bytes", peak as u64),
            );
        }
        json = json.obj(mode, curve);
    }
    json.num(
        "columnar_speedup_1_thread",
        secs_at[0][0] / secs_at[0][1].max(1e-9),
    )
    .num(
        "columnar_speedup_8_threads",
        secs_at[3][0] / secs_at[3][1].max(1e-9),
    )
    .stamped()
    .write("BENCH_e10.json");
}

criterion_group!(benches, bench_columnar);
criterion_main!(benches);
