//! The complete-clause baseline for the variant family V(k).
//!
//! A complete-clause language must describe a target object in a single rule,
//! so a target with `k` independent two-way variant attributes needs one rule
//! per combination of alternatives: `2^k` rules (Section 3.2: "the number of
//! clauses required may be exponential in the number of variants involved").
//! This module generates those rules for the `workloads::variants` family and
//! converts its source instances to flat relations so the semi-naive engine
//! can run them.

use wol_model::{ClassName, Instance, Value};

use crate::ast::{DatalogAtom, DatalogProgram, DatalogRule, DatalogTerm};
use crate::engine::Database;

/// The complete-clause baseline program for V(k), together with its size
/// metrics (compared against the WOL program's in benchmark E3).
#[derive(Clone, Debug)]
pub struct VariantBaseline {
    /// The generated rules (`2^k` of them).
    pub program: DatalogProgram,
    /// Number of variant attributes.
    pub k: usize,
}

impl VariantBaseline {
    /// Number of rules (always `2^k`).
    pub fn rule_count(&self) -> usize {
        self.program.len()
    }
}

/// Build the complete-clause program for V(k): the source relation is
/// `src(name, flag0, ..., flag{k-1})` and the target relation is
/// `obj(oid, name, a0, ..., a{k-1})`, with one rule per combination of the
/// `k` boolean flags, each fixing every variant attribute.
pub fn variant_baseline_program(k: usize) -> VariantBaseline {
    let mut rules = Vec::new();
    for mask in 0..(1u64 << k) {
        let mut body_terms = vec![DatalogTerm::var("N")];
        let mut head_terms = vec![
            DatalogTerm::Skolem("Obj".to_string(), vec![DatalogTerm::var("N")]),
            DatalogTerm::var("N"),
        ];
        for i in 0..k {
            let set = mask & (1 << i) != 0;
            body_terms.push(DatalogTerm::constant(set));
            head_terms.push(DatalogTerm::constant(if set { "yes" } else { "no" }));
        }
        rules.push(DatalogRule::new(
            DatalogAtom::new("obj", head_terms),
            vec![DatalogAtom::new("src", body_terms)],
        ));
    }
    VariantBaseline {
        program: DatalogProgram::new(rules),
        k,
    }
}

/// Convert a V(k) source instance (class `Src` from `workloads::variants`)
/// into the flat `src` relation the baseline program reads.
pub fn variant_facts(instance: &Instance, k: usize) -> Database {
    let mut db = Database::new();
    let mut tuples = std::collections::BTreeSet::new();
    for (_, value) in instance.objects(&ClassName::new("Src")) {
        let mut tuple = vec![value.project("name").cloned().unwrap_or(Value::Absent)];
        for i in 0..k {
            tuple.push(
                value
                    .project(&format!("flag{i}"))
                    .cloned()
                    .unwrap_or(Value::Bool(false)),
            );
        }
        tuples.insert(tuple);
    }
    db.insert("src".to_string(), tuples);
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::evaluate;
    use workloads::variants;

    #[test]
    fn baseline_needs_exponentially_many_rules() {
        for k in 1..=8 {
            let baseline = variant_baseline_program(k);
            assert_eq!(baseline.rule_count(), 1 << k);
            assert_eq!(baseline.k, k);
            // Every rule is range-restricted and complete.
            for rule in &baseline.program.rules {
                assert!(rule.is_range_restricted());
                assert_eq!(rule.head.terms.len(), k + 2);
            }
        }
        // The WOL program for the same task is linear in k.
        let k = 6;
        assert!(variants::wol_program(k).clauses.len() < variant_baseline_program(k).rule_count());
    }

    #[test]
    fn baseline_and_wol_compute_the_same_objects() {
        let k = 3;
        let items = 12;
        let source = variants::generate_source(k, items, 5);

        // Baseline path.
        let baseline = variant_baseline_program(k);
        let edb = variant_facts(&source, k);
        let (db, _) = evaluate(&baseline.program, &edb);
        assert_eq!(db["obj"].len(), items);

        // WOL path.
        let program = variants::wol_program(k);
        let normal =
            wol_engine::normalize(&program, &wol_engine::NormalizeOptions::default()).unwrap();
        let target = wol_engine::execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("Obj")), items);

        // The flag-to-alternative mapping agrees: compare the multiset of
        // (name, a0..ak) descriptions.
        let mut wol_rows: Vec<Vec<Value>> = target
            .objects(&ClassName::new("Obj"))
            .map(|(_, v)| {
                let mut row = vec![v.project("name").cloned().unwrap()];
                for i in 0..k {
                    let variant = v.project(&variants::variant_attr(i)).unwrap();
                    let label = variant.as_variant().unwrap().0;
                    row.push(Value::str(label));
                }
                row
            })
            .collect();
        wol_rows.sort();
        let mut baseline_rows: Vec<Vec<Value>> =
            db["obj"].iter().map(|tuple| tuple[1..].to_vec()).collect();
        baseline_rows.sort();
        assert_eq!(wol_rows, baseline_rows);
    }

    #[test]
    fn facts_extraction_handles_missing_flags() {
        let source = variants::generate_source(2, 3, 1);
        let db = variant_facts(&source, 2);
        assert_eq!(db["src"].len(), 3);
        for tuple in &db["src"] {
            assert_eq!(tuple.len(), 3);
        }
    }
}
