//! Durability integration tests: the crash matrix over the write-ahead log,
//! bit-flip detection, snapshot round-trips across the thread matrix, and
//! durable pipeline crash/resume through the public API.
//!
//! The contract under test (storage crate docs, "Durability"): recovery
//! yields exactly the committed batch prefix of the log — bit-identical
//! extents, oids and Skolem counters — and a corrupted or torn record is
//! detected via its checksum and cleanly discarded, never silently applied.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use wol_repro::cpl;
use wol_repro::morphase::{DurableOptions, Morphase, MorphaseError, PipelineOptions};
use wol_repro::storage::persist::snapshot::{
    decode_snapshot, encode_snapshot, load_snapshot_file, save_snapshot_file,
};
use wol_repro::storage::persist::{replay_wal, FaultPolicy};
use wol_repro::storage::DurableInstance;
use wol_repro::wol_model::{ClassName, Instance, Oid, SkolemFactory, SkolemState, Value};
use wol_repro::workloads::cities::{generate_euro, CitiesWorkload};

/// A fresh scratch directory, unique across parallel tests and proptest
/// cases within this process.
fn temp_dir(label: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("wol-durability-{label}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// State captured after each committed batch: the instance, the Skolem
/// factory state, and the WAL end offset of the batch.
struct Checkpoint {
    instance: Instance,
    skolem: SkolemState,
    wal_end: u64,
}

/// Run a scripted session of `batches` commits against a [`DurableInstance`]
/// in `dir`, returning the final WAL image and the checkpoint after every
/// commit (index 0 is the empty store). The script is deterministic in
/// `seed` and mixes every record kind the WAL knows: Skolem-minted inserts
/// (`SkolemAssign` + `Insert`), updates, fresh-identity inserts
/// (`OidCounter`), and removes — including removing a class down to empty.
fn scripted_session(dir: &Path, batches: usize, seed: u64) -> (Vec<u8>, Vec<Checkpoint>) {
    let country = ClassName::new("CountryT");
    let marker = ClassName::new("MarkerT");
    let (mut store, report) = DurableInstance::open(dir, "euro").expect("fresh open");
    assert!(!report.snapshot_loaded);
    assert_eq!(report.batches_replayed, 0);

    let mut state = seed.wrapping_mul(2).wrapping_add(1);
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 33
    };
    let mut checkpoints = vec![Checkpoint {
        instance: store.instance().clone(),
        skolem: store.skolem().export_state(),
        wal_end: 0,
    }];
    let mut markers: Vec<Oid> = Vec::new();
    for round in 0..batches {
        // A couple of keyed objects; repeated keys exercise the memo (no new
        // record), fresh keys mint an assignment and insert a value.
        for _ in 0..2 {
            let key = Value::str(format!("C{}", next() % 7));
            let before = store.skolem().counter(&country);
            let oid = store.mk(&country, &key);
            let value = Value::record([("name", key.clone()), ("round", Value::int(round as i64))]);
            if store.skolem().counter(&country) > before {
                store.instance_mut().insert(oid, value).expect("insert");
            } else {
                store.instance_mut().update(&oid, value).expect("update");
            }
        }
        // A fresh-identity object in a class the factory never touches (the
        // two counters are independent and must not share a class).
        let fresh = store
            .instance_mut()
            .insert_fresh(&marker, Value::int(next() as i64));
        markers.push(fresh);
        // Occasionally remove a marker — on the last round remove them all,
        // so the matrix covers recovery of an emptied-but-present class.
        if round + 1 == batches {
            for oid in markers.drain(..) {
                store.instance_mut().remove(&oid);
            }
        } else if next() % 2 == 0 && markers.len() > 1 {
            let victim = markers.remove((next() as usize) % markers.len());
            store.instance_mut().remove(&victim);
        }
        let wal_end = store.commit().expect("commit");
        checkpoints.push(Checkpoint {
            instance: store.instance().clone(),
            skolem: store.skolem().export_state(),
            wal_end,
        });
    }
    let bytes = std::fs::read(store.wal_path()).expect("read wal");
    assert_eq!(
        bytes.len() as u64,
        checkpoints.last().expect("checkpoint").wal_end,
        "the WAL must end exactly at the last committed batch"
    );
    (bytes, checkpoints)
}

/// Kill the log at byte `cut` and recover: assert the recovered store holds
/// exactly the longest committed prefix — batch count, extents, values, oid
/// counters and Skolem state all bit-identical to the checkpoint taken at
/// that commit — and that the next `mk` matches an uncrashed factory's.
fn assert_prefix_recovery(scratch: &Path, bytes: &[u8], checkpoints: &[Checkpoint], cut: usize) {
    let expected = checkpoints
        .iter()
        .filter(|c| c.wal_end as usize <= cut)
        .count()
        - 1; // checkpoint 0 is the empty store at offset 0
    let reference = &checkpoints[expected];

    // Byte level: replay finds exactly the committed prefix.
    let replay = replay_wal(&bytes[..cut], "matrix", 0);
    assert_eq!(replay.batches.len(), expected, "cut {cut}");
    assert_eq!(replay.committed_len, reference.wal_end, "cut {cut}");
    assert_eq!(
        replay.tail.is_some(),
        cut as u64 != reference.wal_end,
        "cut {cut}: a tail is discarded iff the cut is not a batch boundary"
    );

    // End to end: a store opened over the truncated image recovers the
    // checkpoint state bit-identically.
    std::fs::create_dir_all(scratch).expect("scratch dir");
    std::fs::write(scratch.join(DurableInstance::WAL_FILE), &bytes[..cut]).expect("write cut");
    let (mut store, report) = DurableInstance::open(scratch, "euro").expect("recovery");
    assert_eq!(report.batches_replayed, expected, "cut {cut}");
    assert_eq!(report.committed_len, reference.wal_end, "cut {cut}");
    assert_eq!(
        store.instance().deep_eq_report(&reference.instance),
        None,
        "cut {cut}: recovered instance diverged"
    );
    assert_eq!(
        store.skolem().export_state(),
        reference.skolem,
        "cut {cut}: recovered Skolem state diverged"
    );

    // Post-recovery minting is bit-identical to an uncrashed run that
    // reached the same commit: same fresh identity for a never-seen key.
    let country = ClassName::new("CountryT");
    let probe = Value::str("post-recovery-probe");
    let mut uncrashed = SkolemFactory::from_state(reference.skolem.clone());
    assert_eq!(
        store.mk(&country, &probe),
        uncrashed.mk(&country, &probe),
        "cut {cut}: post-recovery mk diverged"
    );
}

/// The exhaustive crash matrix: one scripted multi-batch session, then kill
/// the log at *every* byte offset — every record boundary and every
/// mid-record offset — and demand prefix-consistent, bit-identical recovery
/// at each one.
#[test]
fn crash_matrix_every_cut_recovers_the_committed_prefix() {
    let base = temp_dir("matrix-base");
    let (bytes, checkpoints) = scripted_session(&base, 4, 7);
    assert!(checkpoints.len() == 5 && bytes.len() > 100);
    let scratch = temp_dir("matrix-cut");
    for cut in 0..=bytes.len() {
        assert_prefix_recovery(&scratch, &bytes, &checkpoints, cut);
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

/// Bit flips anywhere in the log are caught by the record checksum (or the
/// framing it protects): recovery returns exactly the batches before the
/// flipped record — byte-identical to an intact replay of that prefix — and
/// never applies corrupted data.
#[test]
fn bit_flips_are_detected_and_never_silently_applied() {
    let base = temp_dir("flip-base");
    let (bytes, checkpoints) = scripted_session(&base, 3, 21);
    let scratch = temp_dir("flip-cut");
    for i in 0..bytes.len() {
        for mask in [0x01u8, 0x80] {
            let mut image = bytes.clone();
            image[i] ^= mask;
            // The flip lands inside batch b+1 (checkpoints are 1-indexed by
            // batch); every batch up to b replays, b+1 onward is discarded.
            let intact = checkpoints
                .iter()
                .filter(|c| c.wal_end as usize <= i)
                .count()
                - 1;
            let replay = replay_wal(&image, "flip", 0);
            assert_eq!(replay.batches.len(), intact, "flip at {i} mask {mask:#x}");
            assert!(
                replay.tail.is_some(),
                "flip at {i} mask {mask:#x}: the corrupted tail must be reported"
            );
            let reference = replay_wal(
                &bytes[..checkpoints[intact].wal_end as usize],
                "reference",
                0,
            );
            assert_eq!(
                replay.batches, reference.batches,
                "flip at {i} mask {mask:#x}: surviving batches must be the intact prefix"
            );
        }
        // End to end (sampled — the byte-level check above runs at every
        // offset): the recovered store equals the checkpoint before the flip.
        if i % 5 == 0 {
            let mut image = bytes.clone();
            image[i] ^= 0x10;
            let intact = checkpoints
                .iter()
                .filter(|c| c.wal_end as usize <= i)
                .count()
                - 1;
            std::fs::create_dir_all(&scratch).expect("scratch dir");
            std::fs::write(scratch.join(DurableInstance::WAL_FILE), &image).expect("write");
            let (store, report) = DurableInstance::open(&scratch, "euro").expect("recovery");
            assert_eq!(report.batches_replayed, intact, "flip at {i}");
            assert!(report.torn_tail.is_some(), "flip at {i}");
            assert_eq!(
                store
                    .instance()
                    .deep_eq_report(&checkpoints[intact].instance),
                None,
                "flip at {i}: recovered instance diverged"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
    std::fs::remove_dir_all(&scratch).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized crash matrix: arbitrary session shapes (batch count and
    /// content seed) and arbitrary cut offsets all recover the committed
    /// prefix bit-identically. The exhaustive test pins one session at every
    /// offset; this one varies the session itself.
    #[test]
    fn randomized_sessions_recover_prefix_consistently(
        batches in 1usize..5,
        seed in 0u64..1000,
        cut_salt in 0u64..100_000,
    ) {
        let base = temp_dir("prop-base");
        let (bytes, checkpoints) = scripted_session(&base, batches, seed);
        let scratch = temp_dir("prop-cut");
        // One salted mid-log cut plus the exact end (the no-tail case).
        let cuts = [(cut_salt as usize) % (bytes.len() + 1), bytes.len()];
        for cut in cuts {
            assert_prefix_recovery(&scratch, &bytes, &checkpoints, cut);
        }
        std::fs::remove_dir_all(&base).ok();
        std::fs::remove_dir_all(&scratch).ok();
    }
}

/// Snapshot → restore is bit-identical for pipeline targets at every thread
/// count: run the cities program at 1/2/4/8 threads, snapshot the target
/// (in memory and through the file round trip), and demand the decoded
/// instance equals the target with no first divergence — and that
/// re-encoding the decoded state reproduces the snapshot byte for byte.
#[test]
fn snapshot_restore_is_bit_identical_at_every_thread_count() {
    let w = CitiesWorkload::new();
    let program = w.euro_program();
    let source = generate_euro(6, 4, 11);
    let sequential = Morphase::with_options(PipelineOptions {
        parallelism: cpl::Parallelism::sequential(),
        ..PipelineOptions::default()
    })
    .transform(&program, &[&source][..])
    .expect("sequential run");
    let dir = temp_dir("snap-matrix");
    std::fs::create_dir_all(&dir).expect("snap dir");
    for threads in [1usize, 2, 4, 8] {
        let run = Morphase::with_options(PipelineOptions {
            parallelism: cpl::Parallelism::new(threads),
            ..PipelineOptions::default()
        })
        .transform(&program, &[&source][..])
        .expect("parallel run");
        assert_eq!(
            run.target.deep_eq_report(&sequential.target),
            None,
            "target diverged at {threads} threads before any snapshot"
        );
        let skolem = SkolemState::default();
        let bytes = encode_snapshot(&run.target, &skolem, 0, None);
        let decoded = decode_snapshot(&bytes, "mem").expect("decode");
        assert_eq!(
            decoded.instance.deep_eq_report(&run.target),
            None,
            "snapshot round trip diverged at {threads} threads"
        );
        assert_eq!(decoded.instance, run.target);
        assert_eq!(
            encode_snapshot(&decoded.instance, &decoded.skolem, 0, None),
            bytes,
            "re-encode not byte-identical at {threads} threads"
        );
        // And through the file layer (atomic write + checksum verify).
        let path = dir.join(format!("target-{threads}.snap"));
        save_snapshot_file(&path, &bytes, None).expect("save");
        let loaded = load_snapshot_file(&path)
            .expect("load")
            .expect("snapshot present");
        assert_eq!(
            loaded.instance.deep_eq_report(&sequential.target),
            None,
            "file round trip diverged at {threads} threads"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Durable pipeline crash/resume through the public API at every thread
/// count: inject a torn write into the journal's WAL, watch the run die,
/// resume without the fault, and demand the resumed target is bit-identical
/// to a plain (never-crashed) run — with every query either recovered from
/// the journal or re-run, never both, never neither.
#[test]
fn durable_pipeline_crash_resume_is_bit_identical_across_thread_counts() {
    let w = CitiesWorkload::new();
    let program = w.euro_program();
    let source = generate_euro(5, 3, 17);
    let plain = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("plain run");
    for threads in [1usize, 2, 4, 8] {
        let options = PipelineOptions {
            parallelism: cpl::Parallelism::new(threads),
            ..PipelineOptions::default()
        };
        let dir = temp_dir(&format!("pipe-{threads}"));
        let crashing = DurableOptions::new(&dir).with_fault(FaultPolicy::torn_at(64));
        let err = Morphase::with_options(options)
            .transform_durable(&program, &[&source][..], &crashing)
            .expect_err("the injected fault must kill the run");
        assert!(
            matches!(err, MorphaseError::Durability(_)),
            "unexpected error at {threads} threads: {err}"
        );
        let resumed = Morphase::with_options(options)
            .transform_durable(&program, &[&source][..], &DurableOptions::new(&dir))
            .expect("resumed run");
        assert_eq!(
            resumed.target.deep_eq_report(&plain.target),
            None,
            "resumed target diverged at {threads} threads"
        );
        let d = resumed.durability.expect("durable run reports stats");
        assert!(
            d.recovered_torn_tail,
            "the torn batch must be discarded at {threads} threads"
        );
        assert_eq!(
            d.skipped + d.journaled,
            plain.query_stats.len() as u64,
            "every query is either recovered or re-run at {threads} threads"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
