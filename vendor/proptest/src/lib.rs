//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of proptest the workspace's property tests use:
//!
//! * the [`proptest!`] macro over `fn name(arg in strategy, ...) { body }`
//!   items, with an optional `#![proptest_config(...)]` header;
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * strategies: string patterns (a small `[class]{m,n}` regex subset),
//!   integer ranges, and [`collection::vec`].
//!
//! Generation is deterministic: case `i` of every test always draws the same
//! values, so failures are reproducible without shrinking (there is no
//! shrinking). This is a test-support shim, not a full property-testing
//! framework.

use std::ops::Range;

/// Deterministic value source handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// A generator for one test case.
    pub fn new(case: u64) -> Self {
        Gen {
            state: case
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(0xD1B5_4A32_D192_ED03),
        }
    }

    /// Next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() % (hi - lo) as u64) as usize
    }
}

/// Run-time configuration of a `proptest!` block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of cases generated per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, gen: &mut Gen) -> Self::Value;
}

/// String strategies are written as a small regex subset: a sequence of
/// elements, each a character class `[a-zA-Z...]` (or a literal character)
/// with an optional `{m}` / `{m,n}` repetition.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, gen: &mut Gen) -> String {
        let elements = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in &elements {
            let reps = if min == max {
                *min
            } else {
                gen.usize_in(*min, *max + 1)
            };
            for _ in 0..reps {
                out.push(chars[gen.usize_in(0, chars.len())]);
            }
        }
        out
    }
}

/// Parse the `[class]{m,n}` pattern subset into (alphabet, min, max) elements.
fn parse_pattern(pattern: &str) -> Vec<(Vec<char>, usize, usize)> {
    let mut elements = Vec::new();
    let mut chars = pattern.chars().peekable();
    while let Some(c) = chars.next() {
        let alphabet: Vec<char> = if c == '[' {
            let mut inner = Vec::new();
            let mut class = Vec::new();
            for c in chars.by_ref() {
                if c == ']' {
                    break;
                }
                inner.push(c);
            }
            let mut i = 0;
            while i < inner.len() {
                if i + 2 < inner.len() && inner[i + 1] == '-' {
                    let (lo, hi) = (inner[i], inner[i + 2]);
                    assert!(lo <= hi, "bad character range in pattern `{pattern}`");
                    class.extend((lo..=hi).collect::<Vec<char>>());
                    i += 3;
                } else {
                    class.push(inner[i]);
                    i += 1;
                }
            }
            class
        } else {
            vec![c]
        };
        let (mut min, mut max) = (1usize, 1usize);
        if chars.peek() == Some(&'{') {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            match spec.split_once(',') {
                Some((lo, hi)) => {
                    min = lo.trim().parse().expect("bad repetition bound");
                    max = hi.trim().parse().expect("bad repetition bound");
                }
                None => {
                    min = spec.trim().parse().expect("bad repetition bound");
                    max = min;
                }
            }
        }
        assert!(
            !alphabet.is_empty() && min <= max,
            "unsupported pattern `{pattern}`"
        );
        elements.push((alphabet, min, max));
    }
    elements
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, gen: &mut Gen) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + (gen.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8);

impl Strategy for Range<i64> {
    type Value = i64;
    fn generate(&self, gen: &mut Gen) -> i64 {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end as i128 - self.start as i128) as u64;
        self.start.wrapping_add((gen.next_u64() % span) as i64)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Gen, Strategy};
    use std::ops::Range;

    /// Strategy producing `Vec`s of an element strategy's values.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A vector of between `size.start` and `size.end - 1` elements.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, gen: &mut Gen) -> Vec<S::Value> {
            let len = gen.usize_in(self.size.start, self.size.end);
            (0..len).map(|_| self.element.generate(gen)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "property assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        if left != right {
            return ::std::result::Result::Err(format!(
                "property assertion failed: `{}` != `{}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            ));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` item
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases {
                    let mut generator = $crate::Gen::new(case as u64);
                    $(
                        let $arg = $crate::Strategy::generate(&$strategy, &mut generator);
                    )+
                    let outcome: ::std::result::Result<(), ::std::string::String> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(message) = outcome {
                        panic!("case {case} of {}: {message}", stringify!($name));
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn patterns_generate_within_spec() {
        let mut gen = crate::Gen::new(3);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut gen);
            assert!((1..=8).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
            let t = Strategy::generate(&"[A-Z][a-z]{2,3}", &mut gen);
            assert!(t.chars().next().unwrap().is_ascii_uppercase());
            assert!((3..=4).contains(&t.len()));
        }
    }

    #[test]
    fn vec_strategy_respects_bounds() {
        let mut gen = crate::Gen::new(9);
        for _ in 0..100 {
            let v = Strategy::generate(&crate::collection::vec(0usize..5, 1..20), &mut gen);
            assert!((1..20).contains(&v.len()));
            assert!(v.iter().all(|x| *x < 5));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_round_trips(x in 0usize..100, s in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count());
        }
    }
}
