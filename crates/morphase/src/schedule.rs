//! Query-level parallel scheduling.
//!
//! A compiled Morphase program is a list of [`cpl::Query`] values executed in
//! program order. Operator-level parallelism (inside one query) leaves a
//! second lever on the table: *independent queries* — the common case, since
//! normal-form clauses read only source extents — can be evaluated
//! concurrently on the same [`cpl::WorkerPool`].
//!
//! [`plan_schedule`] builds a dependency-aware schedule:
//!
//! * Each query's **read set** is the classes its plan scans
//!   ([`cpl::Plan::scanned_classes`]); its **write set** is the target
//!   classes its insert actions create or merge into.
//! * Query `j` *conflicts with* an earlier query `i` when `i` writes an
//!   extent `j` reads (a write→read chain must stay ordered) or `j` writes
//!   an extent `i` reads (an anti-dependency: the read must not observe the
//!   later write).
//! * The schedule groups queries into **stages**: contiguous program-order
//!   runs with no internal conflicts. Stages execute strictly one after
//!   another; the queries *within* a stage may be evaluated concurrently.
//!   Contiguity is what keeps the pipeline's *application* order — and with
//!   it Skolem numbering, merge-conflict detection and every statistic —
//!   exactly the program order, so the target instance is bit-identical to a
//!   fully sequential run.
//! * A **self-dependent** query (one that reads an extent it also writes —
//!   the fixpoint shape) conflicts with itself: it never overlaps anything,
//!   always occupying a stage of its own.
//! * A query is **overlap-safe** only if a flow-aware taint analysis shows
//!   every *provisional-valued* position stays in value position: evaluated
//!   off the main thread, Skolem identities become provisional claims, which
//!   must never be compared or projected through — including indirectly,
//!   through a `Map`-bound variable carrying one (the whole-query claim path
//!   has no per-operator resolution barrier, unlike `cpl`'s operator-level
//!   protocol). Unsafe queries get a singleton stage and run on the main
//!   context.
//!
//! Evaluation within a stage uses the two-phase claim protocol
//! ([`cpl::evaluate_query`] on claim contexts, then
//! [`cpl::apply_evaluated_query`] on the main context in program order); the
//! driver lives in [`crate::pipeline`].

use std::collections::BTreeSet;

use cpl::{Plan, Query};
use wol_model::ClassName;

/// One query's scheduling metadata.
#[derive(Clone, Debug)]
pub struct QueryNode {
    /// Source/target classes the query's plan scans.
    pub reads: BTreeSet<ClassName>,
    /// Target classes the query's insert actions write.
    pub writes: BTreeSet<ClassName>,
    /// Whether the query reads an extent it also writes (fixpoint shape):
    /// such a query conflicts with itself and never overlaps anything.
    pub self_dependent: bool,
    /// Whether every expression of the query may be evaluated on a claim
    /// context (see the module docs); `false` pins the query to the main
    /// context in its own stage.
    pub overlap_safe: bool,
}

/// A dependency-aware execution schedule over a compiled program.
#[derive(Clone, Debug)]
pub struct QuerySchedule {
    /// Per-query metadata, indexed like the input queries.
    pub nodes: Vec<QueryNode>,
    /// Stages in execution order: each stage is a contiguous run of query
    /// indices (ascending program order) that may evaluate concurrently.
    /// Concatenating the stages yields `0..queries.len()` exactly.
    pub stages: Vec<Vec<usize>>,
}

impl QuerySchedule {
    /// The largest number of queries any stage may overlap.
    pub fn max_overlap(&self) -> usize {
        self.stages.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// Walk the plan bottom-up, accumulating the tainted-variable set (row
/// variables whose bindings may hold a provisional identity on a claim
/// context) and checking every expression against it with the flow-aware
/// [`Expr::skolem_claim_safe`] / [`Expr::carries_provisional`]. The
/// per-expression predicate cannot see taint laundered through a variable
/// binding (`Map [T = Mk_C(...)]` followed by `Filter(T.x = ...)` contains
/// no Skolem node in the filter), which is exactly what this guards: on the
/// whole-query claim path there is no per-operator resolution barrier, so a
/// downstream inspection of `T` would observe the provisional identity and
/// could diverge from sequential. `Distinct` compares whole rows, so any
/// taint below it is unsafe (a provisional and the sequential run's real
/// identity can disagree on equality); join keys and predicates are
/// inspection positions outright — not even a bare tainted variable may
/// appear in them.
fn plan_claim_safe(plan: &Plan, tainted: &mut BTreeSet<String>) -> bool {
    match plan {
        Plan::Scan { .. } => true,
        Plan::Filter { input, predicate } => {
            plan_claim_safe(input, tainted) && !predicate.carries_provisional(tainted)
        }
        Plan::Map { input, bindings } => {
            plan_claim_safe(input, tainted) && cpl::expr::bindings_claim_safe(bindings, tainted)
        }
        Plan::Distinct { input } => {
            let mut inner = BTreeSet::new();
            let ok = plan_claim_safe(input, &mut inner);
            let clean = inner.is_empty();
            tainted.extend(inner);
            ok && clean
        }
        Plan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            plan_claim_safe(left, tainted)
                && plan_claim_safe(right, tainted)
                && predicate.iter().all(|p| !p.carries_provisional(tainted))
        }
        Plan::HashJoin { left, right, keys } => {
            plan_claim_safe(left, tainted)
                && plan_claim_safe(right, tainted)
                && keys.iter().all(|(l, r)| {
                    !l.carries_provisional(tainted) && !r.carries_provisional(tainted)
                })
        }
        Plan::CrossJoin { left, right } => {
            plan_claim_safe(left, tainted) && plan_claim_safe(right, tainted)
        }
    }
}

/// Analyse one query into its scheduling metadata.
fn analyse(query: &Query) -> QueryNode {
    let reads = query.plan.scanned_classes();
    let writes: BTreeSet<ClassName> = query.inserts.iter().map(|i| i.class.clone()).collect();
    let self_dependent = reads.intersection(&writes).next().is_some();
    // Taint flows out of the plan into the insert expressions: a tainted
    // variable may be *stored* by an insert (the apply phase rewrites keys
    // and records through the resolution map) but never inspected.
    let mut tainted = BTreeSet::new();
    let overlap_safe = plan_claim_safe(&query.plan, &mut tainted)
        && query.inserts.iter().all(|insert| {
            insert.key.skolem_claim_safe(&tainted)
                && insert
                    .attrs
                    .iter()
                    .all(|(_, e)| e.skolem_claim_safe(&tainted))
        });
    QueryNode {
        reads,
        writes,
        self_dependent,
        overlap_safe,
    }
}

/// Whether queries `a` and `b` must not evaluate concurrently: one writes an
/// extent the other reads (in either direction — the write→read chain and
/// the anti-dependency both force ordering).
fn conflicts(a: &QueryNode, b: &QueryNode) -> bool {
    a.writes.intersection(&b.reads).next().is_some()
        || b.writes.intersection(&a.reads).next().is_some()
}

/// Build the execution schedule for a compiled program (see module docs).
pub fn plan_schedule(queries: &[Query]) -> QuerySchedule {
    let nodes: Vec<QueryNode> = queries.iter().map(analyse).collect();
    let mut stages: Vec<Vec<usize>> = Vec::new();
    for (index, node) in nodes.iter().enumerate() {
        let exclusive = node.self_dependent || !node.overlap_safe;
        let joins_current = match stages.last() {
            Some(current) if !exclusive => {
                // The current stage is open unless it holds an exclusive
                // query (always alone by construction) or a conflicting one.
                current.iter().all(|&i| {
                    let member = &nodes[i];
                    !member.self_dependent && member.overlap_safe && !conflicts(member, node)
                })
            }
            _ => false,
        };
        if joins_current {
            stages.last_mut().expect("checked above").push(index);
        } else {
            stages.push(vec![index]);
        }
    }
    QuerySchedule { nodes, stages }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpl::{Expr, InsertAction};

    fn query(name: &str, scans: &[(&str, &str)], writes: &[&str]) -> Query {
        let mut plan: Option<Plan> = None;
        for (class, var) in scans {
            let scan = Plan::scan(*class, *var);
            plan = Some(match plan {
                None => scan,
                Some(p) => p.cross(scan),
            });
        }
        Query {
            name: name.to_string(),
            plan: plan.expect("at least one scan"),
            inserts: writes
                .iter()
                .map(|class| InsertAction {
                    class: ClassName::new(*class),
                    key: Expr::var(scans[0].1).proj("name"),
                    attrs: vec![("name".to_string(), Expr::var(scans[0].1).proj("name"))],
                })
                .collect(),
        }
    }

    /// Disjoint queries (distinct reads, distinct writes) share one stage
    /// and may overlap.
    #[test]
    fn disjoint_queries_overlap_in_one_stage() {
        let queries = vec![
            query("q0", &[("A", "a")], &["X"]),
            query("q1", &[("B", "b")], &["Y"]),
            query("q2", &[("C", "c")], &["Z"]),
        ];
        let schedule = plan_schedule(&queries);
        assert_eq!(schedule.stages, vec![vec![0, 1, 2]]);
        assert_eq!(schedule.max_overlap(), 3);
        assert!(schedule.nodes.iter().all(|n| n.overlap_safe));
        assert!(schedule.nodes.iter().all(|n| !n.self_dependent));
    }

    /// A write→read chain stays ordered: the reader lands in a later stage
    /// than the writer, and an unrelated query can still share the reader's
    /// stage.
    #[test]
    fn write_read_chains_stay_ordered() {
        let queries = vec![
            query("writer", &[("A", "a")], &["X"]),
            query("reader", &[("X", "x")], &["Y"]),
            query("bystander", &[("B", "b")], &["Z"]),
        ];
        let schedule = plan_schedule(&queries);
        assert_eq!(schedule.stages, vec![vec![0], vec![1, 2]]);
        // And the anti-dependency direction (read before write) also splits.
        let queries = vec![
            query("reader", &[("X", "x")], &["Y"]),
            query("writer", &[("A", "a")], &["X"]),
        ];
        let schedule = plan_schedule(&queries);
        assert_eq!(schedule.stages, vec![vec![0], vec![1]]);
    }

    /// Queries writing the *same* class may overlap: application is strictly
    /// program-ordered on the main thread, so write–write merges (partial
    /// clauses keyed alike) stay deterministic.
    #[test]
    fn write_write_queries_may_overlap() {
        let queries = vec![
            query("q0", &[("A", "a")], &["X"]),
            query("q1", &[("B", "b")], &["X"]),
        ];
        let schedule = plan_schedule(&queries);
        assert_eq!(schedule.stages, vec![vec![0, 1]]);
    }

    /// A self-dependent (fixpoint-shaped) query never overlaps itself or
    /// anything else: it always occupies a singleton stage, wherever it
    /// falls in the program.
    #[test]
    fn self_dependent_queries_never_overlap() {
        let queries = vec![
            query("q0", &[("A", "a")], &["X"]),
            query("fixpoint", &[("Y", "y")], &["Y"]),
            query("q2", &[("B", "b")], &["Z"]),
            query("q3", &[("C", "c")], &["W"]),
        ];
        let schedule = plan_schedule(&queries);
        assert!(schedule.nodes[1].self_dependent);
        assert_eq!(schedule.stages, vec![vec![0], vec![1], vec![2, 3]]);
        // Even as the first query, the fixpoint stays alone.
        let queries = vec![
            query("fixpoint", &[("Y", "y")], &["Y"]),
            query("q1", &[("A", "a")], &["X"]),
        ];
        let schedule = plan_schedule(&queries);
        assert_eq!(schedule.stages, vec![vec![0], vec![1]]);
    }

    /// Stages are contiguous program-order runs (application order is the
    /// program order), so a conflict splits the stage even if a later query
    /// would have been conflict-free with the earlier stage.
    #[test]
    fn stages_are_contiguous_program_order_runs() {
        let queries = vec![
            query("q0", &[("A", "a")], &["X"]),
            query("q1", &[("X", "x")], &["Y"]), // conflicts with q0
            query("q2", &[("A", "a2")], &["W"]), // no conflict with q1, joins its stage
        ];
        let schedule = plan_schedule(&queries);
        assert_eq!(schedule.stages, vec![vec![0], vec![1, 2]]);
        let flat: Vec<usize> = schedule.stages.iter().flatten().copied().collect();
        assert_eq!(flat, vec![0, 1, 2]);
    }

    /// A query whose expressions put a Skolem in inspection position is not
    /// overlap-safe: it pins to a singleton stage (and the main context).
    #[test]
    fn skolem_unsafe_queries_get_singleton_stages() {
        let unsafe_query = Query {
            name: "compares_skolem".to_string(),
            plan: Plan::scan("A", "a").filter(
                Expr::Skolem(ClassName::new("T"), Box::new(Expr::var("a").proj("k")))
                    .eq(Expr::var("a")),
            ),
            inserts: vec![InsertAction {
                class: ClassName::new("X"),
                key: Expr::var("a").proj("k"),
                attrs: vec![],
            }],
        };
        let queries = vec![
            query("q0", &[("B", "b")], &["Y"]),
            unsafe_query,
            query("q2", &[("C", "c")], &["Z"]),
        ];
        let schedule = plan_schedule(&queries);
        assert!(!schedule.nodes[1].overlap_safe);
        assert_eq!(schedule.stages, vec![vec![0], vec![1], vec![2]]);
        // Value-position Skolems (the compiled-program shape) stay safe.
        let value_position = Query {
            name: "mints_skolem".to_string(),
            plan: Plan::scan("A", "a").map(vec![(
                "t".to_string(),
                Expr::Skolem(ClassName::new("T"), Box::new(Expr::var("a").proj("k"))),
            )]),
            inserts: vec![InsertAction {
                class: ClassName::new("X"),
                key: Expr::var("a").proj("k"),
                attrs: vec![("t".to_string(), Expr::var("t"))],
            }],
        };
        assert!(analyse(&value_position).overlap_safe);
    }

    /// Taint flows through `Map`-bound variables: a downstream expression
    /// that projects through, compares, or dedups a variable holding a
    /// Skolem-minted value is unsafe even though it contains no Skolem node
    /// itself — the laundering case the per-expression predicate misses.
    #[test]
    fn skolem_taint_through_map_bindings_blocks_overlap() {
        let skolem_map = |next: fn(Plan) -> Plan| Query {
            name: "laundered".to_string(),
            plan: next(Plan::scan("A", "a").map(vec![(
                "t".to_string(),
                Expr::Skolem(ClassName::new("T"), Box::new(Expr::var("a").proj("k"))),
            )])),
            inserts: vec![InsertAction {
                class: ClassName::new("X"),
                key: Expr::var("a").proj("k"),
                attrs: vec![],
            }],
        };
        // Projection through the tainted variable.
        let projected = skolem_map(|p| p.filter(Expr::var("t").proj("x")));
        assert!(!analyse(&projected).overlap_safe);
        // Comparison against the tainted variable.
        let compared = skolem_map(|p| p.filter(Expr::var("t").eq(Expr::var("a"))));
        assert!(!analyse(&compared).overlap_safe);
        // Second-order taint: a binding defined *from* a tainted variable
        // taints its own variable too.
        let relayed = skolem_map(|p| {
            p.map(vec![("u".to_string(), Expr::var("t"))])
                .filter(Expr::var("u").eq(Expr::var("a")))
        });
        assert!(!analyse(&relayed).overlap_safe);
        // Row-level equality (Distinct) over tainted rows is unsafe.
        let deduped = skolem_map(|p| p.distinct());
        assert!(!analyse(&deduped).overlap_safe);
        // A tainted variable used as a hash-join key is unsafe.
        let joined = skolem_map(|p| {
            p.hash_join(
                Plan::scan("B", "b"),
                Expr::var("t"),
                Expr::var("b").proj("r"),
            )
        });
        assert!(!analyse(&joined).overlap_safe);
        // Merely *storing* the tainted variable (insert attrs, records,
        // variants, another Skolem's key) keeps the query safe: the apply
        // phase rewrites stored values through the resolution map.
        let stored = skolem_map(|p| {
            p.map(vec![(
                "wrapped".to_string(),
                Expr::Variant("tag".to_string(), Box::new(Expr::var("t"))),
            )])
        });
        assert!(analyse(&stored).overlap_safe);
        // And a tainted Distinct deep in the tree still poisons the query.
        let nested_distinct = skolem_map(|p| p.distinct().filter(Expr::var("a").proj("live")));
        assert!(!analyse(&nested_distinct).overlap_safe);
    }
}
