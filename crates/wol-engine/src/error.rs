//! Errors raised by the WOL engine.

use std::fmt;

/// Errors from clause evaluation, constraint checking or normalisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A term could not be evaluated (unbound variable, bad projection, ...).
    Eval(String),
    /// A constraint is violated by the instance(s) being checked.
    ConstraintViolated {
        /// Label or index of the violated clause.
        clause: String,
        /// Description of the violating binding.
        detail: String,
    },
    /// The transformation program is recursive and cannot be normalised under
    /// Morphase's syntactic restrictions (Section 5).
    RecursiveProgram(String),
    /// A target object cannot be completely determined: the program is
    /// incomplete for the given class/attribute.
    Incomplete {
        /// The target class concerned.
        class: String,
        /// Explanation (e.g. which attribute or key part is missing).
        detail: String,
    },
    /// Normalisation produced no usable definition for a clause.
    Normalisation(String),
    /// An error bubbled up from the data model.
    Model(String),
    /// An error bubbled up from the language front end.
    Lang(String),
    /// Any other invariant violation.
    Invalid(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Eval(m) => write!(f, "evaluation error: {m}"),
            EngineError::ConstraintViolated { clause, detail } => {
                write!(f, "constraint {clause} violated: {detail}")
            }
            EngineError::RecursiveProgram(m) => write!(f, "recursive transformation program: {m}"),
            EngineError::Incomplete { class, detail } => {
                write!(f, "incomplete description of class `{class}`: {detail}")
            }
            EngineError::Normalisation(m) => write!(f, "normalisation error: {m}"),
            EngineError::Model(m) => write!(f, "data model error: {m}"),
            EngineError::Lang(m) => write!(f, "language error: {m}"),
            EngineError::Invalid(m) => write!(f, "invalid: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<wol_model::ModelError> for EngineError {
    fn from(e: wol_model::ModelError) -> Self {
        EngineError::Model(e.to_string())
    }
}

impl From<wol_lang::LangError> for EngineError {
    fn from(e: wol_lang::LangError) -> Self {
        EngineError::Lang(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(EngineError::Eval("x".into())
            .to_string()
            .contains("evaluation"));
        assert!(EngineError::ConstraintViolated {
            clause: "C4".into(),
            detail: "d".into()
        }
        .to_string()
        .contains("C4"));
        assert!(EngineError::RecursiveProgram("loop".into())
            .to_string()
            .contains("recursive"));
        assert!(EngineError::Incomplete {
            class: "CityT".into(),
            detail: "capital".into()
        }
        .to_string()
        .contains("CityT"));
    }

    #[test]
    fn conversions() {
        let m: EngineError = wol_model::ModelError::Invalid("m".into()).into();
        assert!(matches!(m, EngineError::Model(_)));
        let l: EngineError = wol_lang::LangError::Invalid("l".into()).into();
        assert!(matches!(l, EngineError::Lang(_)));
    }
}
