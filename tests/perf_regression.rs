//! Performance regression tests for the CPL join-graph planner (ISSUE 2).
//!
//! The E6 genome pipeline used to materialise ~23M-row cross products (the
//! translator emitted scans as raw products, and the rule-based rewriter
//! could not see join equalities through `Map`-defined variables). The
//! planner must keep that workload index-probed and product-free; these tests
//! guard the speed-up and are also run in release mode by CI.

use std::time::Duration;

use wol_repro::cpl::{CostModel, Parallelism};
use wol_repro::morphase::{Morphase, MorphaseRun, PipelineOptions};
use wol_repro::wol_engine::instances_equivalent;
use wol_repro::wol_model::{ClassName, Instance};
use wol_repro::workloads::genome::{self, GenomeParams};
use wol_repro::workloads::skewed::{self, SkewedParams};

/// The planner-vs-raw wall-clock regression: on a moderate genome workload
/// the planned execute phase must be at least 5x faster than the raw
/// (unoptimised) plans, while producing an equivalent target.
#[test]
fn e6_planned_execution_is_at_least_5x_faster_than_raw_plans() {
    let params = GenomeParams {
        clones: 30,
        markers: 90,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let program = genome::program();

    let planned = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("planned run succeeds");
    let raw = Morphase::with_options(PipelineOptions {
        optimize_plans: false,
        ..PipelineOptions::default()
    })
    .transform(&program, &[&source][..])
    .expect("raw run succeeds");

    assert!(
        instances_equivalent(&planned.target, &raw.target, 2),
        "planned and raw targets diverge"
    );
    // The raw plans materialise the marker x marker (x clone) products; the
    // planner must stay well below them.
    assert!(
        raw.exec.max_intermediate_rows >= 10 * planned.exec.max_intermediate_rows.max(1),
        "expected >=10x fewer peak rows, got raw={} planned={}",
        raw.exec.max_intermediate_rows,
        planned.exec.max_intermediate_rows
    );
    assert!(
        planned.exec.index_probes > 0,
        "planner lost the index probes"
    );
    let speedup =
        raw.timings.execute.as_secs_f64() / planned.timings.execute.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "expected a >=5x execute speed-up, got {speedup:.1}x (raw {:?}, planned {:?})",
        raw.timings.execute,
        planned.timings.execute
    );
}

/// Run the E7 skewed pipeline with the given cost model.
fn run_skewed(params: &SkewedParams, cost_model: CostModel) -> MorphaseRun {
    let source = skewed::generate_source(params);
    let options = PipelineOptions {
        cost_model,
        ..PipelineOptions::default()
    };
    Morphase::with_options(options)
        .transform(&skewed::program(), &[&source][..])
        .expect("skewed pipeline runs")
}

/// The E7 guard at reduced size: on the zipfian workload the histogram-fed
/// planner must beat the flat-`1/ndv` planner by >=3x in execute wall-clock
/// (and well beyond that in peak intermediate rows), while producing an
/// equivalent target — the flat model provably misorders the triangle join.
#[test]
fn e7_histogram_planning_beats_flat_ndv_by_3x_on_skew() {
    let params = SkewedParams::reduced();
    let hist = run_skewed(&params, CostModel::Histogram);
    let flat = run_skewed(&params, CostModel::FlatNdv);

    assert!(
        instances_equivalent(&hist.target, &flat.target, 2),
        "histogram and flat targets diverge"
    );
    assert!(
        flat.exec.max_intermediate_rows >= 3 * hist.exec.max_intermediate_rows.max(1),
        "expected >=3x fewer peak rows, got flat={} histogram={}",
        flat.exec.max_intermediate_rows,
        hist.exec.max_intermediate_rows
    );
    let speedup = flat.timings.execute.as_secs_f64() / hist.timings.execute.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 3.0,
        "expected a >=3x execute speed-up, got {speedup:.1}x (flat {:?}, histogram {:?})",
        flat.timings.execute,
        hist.timings.execute
    );
}

/// The full-size E7 acceptance check: the histogram-fed plan keeps the peak
/// operator output at the final-result scale (the flat plan materialises the
/// `Σ m_c · p_c` marker-probe blow-up, >=3x more), runs on index probes, and
/// the probe-side cache absorbs the repeated hot keys.
#[test]
fn e7_full_size_skew_peak_rows_are_3x_below_flat_ndv() {
    let params = SkewedParams::full();
    let hist = run_skewed(&params, CostModel::Histogram);
    let flat = run_skewed(&params, CostModel::FlatNdv);

    assert!(
        instances_equivalent(&hist.target, &flat.target, 2),
        "histogram and flat targets diverge"
    );
    assert!(
        hist.exec.max_intermediate_rows < 50_000,
        "histogram plan peak operator output blew up: {} rows",
        hist.exec.max_intermediate_rows
    );
    assert!(
        flat.exec.max_intermediate_rows >= 3 * hist.exec.max_intermediate_rows.max(1),
        "expected >=3x fewer peak rows, got flat={} histogram={}",
        flat.exec.max_intermediate_rows,
        hist.exec.max_intermediate_rows
    );
    assert!(
        hist.exec.index_probes > 0,
        "the skewed join no longer uses index probes"
    );
    assert!(
        hist.exec.probe_cache_hits > 0,
        "the probe-side cache never fired on repeated hot keys"
    );
    // The histogram estimates stay honest: every join's estimate-vs-actual
    // error is within 2x, while the flat model is off by an order of
    // magnitude on the skewed join.
    assert!(!hist.join_stats.is_empty());
    for join in &hist.join_stats {
        assert!(
            join.error_ratio() < 2.0,
            "histogram estimate drifted: {join:?}"
        );
    }
    assert!(
        flat.join_stats.iter().any(|j| j.error_ratio() > 10.0),
        "the flat model unexpectedly estimated the skewed join well: {:?}",
        flat.join_stats
    );
}

/// Run a pipeline with an explicit worker-thread budget.
fn transform_with_threads(
    program: &wol_repro::wol_lang::program::Program,
    source: &Instance,
    cost_model: CostModel,
    threads: usize,
) -> MorphaseRun {
    let options = PipelineOptions {
        cost_model,
        parallelism: Parallelism::new(threads),
        ..PipelineOptions::default()
    };
    Morphase::with_options(options)
        .transform(program, &[source][..])
        .expect("pipeline runs")
}

/// The E8 determinism guard: the plan- and target-instance assertions from
/// PRs 2–3 hold *at every thread count*, and — stronger — the target
/// instance and the merged `ExecStats` are bit-identical to the
/// single-thread run's. Identity numbering in the target depends on output
/// row order, so target equality proves parallel row order is exactly
/// sequential.
#[test]
fn e8_plan_and_target_assertions_hold_at_every_thread_count() {
    // E6 genome shape across the full matrix.
    let genome_params = GenomeParams {
        clones: 30,
        markers: 90,
        density: 0.6,
        seed: 22,
    };
    let genome_source = genome::generate_source(&genome_params);
    let genome_program = genome::program();
    let base = transform_with_threads(&genome_program, &genome_source, CostModel::Histogram, 1);
    for plan in &base.plans {
        assert!(
            !plan.contains("CrossJoin") && !plan.contains("NestedLoopJoin"),
            "a product survived planning:\n{plan}"
        );
    }
    for threads in [2usize, 4, 8] {
        let run = transform_with_threads(
            &genome_program,
            &genome_source,
            CostModel::Histogram,
            threads,
        );
        assert_eq!(
            run.target, base.target,
            "E6 target diverged at {threads} threads"
        );
        assert_eq!(
            run.exec, base.exec,
            "E6 merged ExecStats diverged at {threads} threads"
        );
        assert_eq!(run.plans, base.plans, "plans must not depend on threads");
        assert!(run.exec.index_probes > 0);
    }

    // E7 skew shape across the matrix, under *both* cost models.
    let skew_params = SkewedParams {
        clones: 200,
        markers: 500,
        probes: 175,
        lanes: 600,
        bins: 100,
        zipf_exponent: 1.1,
        seed: 22,
    };
    let skew_source = skewed::generate_source(&skew_params);
    let skew_program = skewed::program();
    for cost_model in [CostModel::Histogram, CostModel::FlatNdv] {
        let base = transform_with_threads(&skew_program, &skew_source, cost_model, 1);
        for threads in [2usize, 4, 8] {
            let run = transform_with_threads(&skew_program, &skew_source, cost_model, threads);
            assert_eq!(
                run.target, base.target,
                "E7 target diverged at {threads} threads under {cost_model:?}"
            );
            assert_eq!(
                run.exec, base.exec,
                "E7 merged ExecStats diverged at {threads} threads under {cost_model:?}"
            );
        }
    }
}

/// The E8 scaling guard (release mode, run by CI): on scaled-up E6 and E7
/// workloads — sized so the execute phase is long enough that thread-spawn
/// overhead is noise — the 4-thread execute phase must be at least 2× faster
/// than the single-thread one. The measurement needs ≥4 physical cores; on
/// smaller machines (and in debug builds, where the ratio would measure the
/// allocator rather than the executor) only the determinism assertions run.
#[test]
fn e8_four_thread_execute_is_at_least_2x_single_thread_on_e6_and_e7() {
    if cfg!(debug_assertions) {
        eprintln!("[e8] debug build: the scaling ratio is measured by the release CI run only");
        return;
    }
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let genome_params = GenomeParams {
        clones: 1200,
        markers: 3600,
        density: 0.6,
        seed: 22,
    };
    let genome_source = genome::generate_source(&genome_params);
    let skew_params = SkewedParams {
        clones: 2400,
        markers: 6000,
        probes: 2000,
        lanes: 4200,
        bins: 600,
        zipf_exponent: 1.1,
        seed: 22,
    };
    let skew_source = skewed::generate_source(&skew_params);
    let genome_program = genome::program();
    let skew_program = skewed::program();
    for (label, program, source) in [
        ("E6", &genome_program, &genome_source),
        ("E7", &skew_program, &skew_source),
    ] {
        // Best-of-two per configuration to damp scheduler noise.
        let measure = |threads: usize| -> (Duration, MorphaseRun) {
            let first = transform_with_threads(program, source, CostModel::Histogram, threads);
            let second = transform_with_threads(program, source, CostModel::Histogram, threads);
            let best = first.timings.execute.min(second.timings.execute);
            (best, second)
        };
        let (t1, run1) = measure(1);
        let (t4, run4) = measure(4);
        assert_eq!(
            run4.target, run1.target,
            "{label} target diverged between 1 and 4 threads"
        );
        let speedup = t1.as_secs_f64() / t4.as_secs_f64().max(1e-9);
        eprintln!("[e8] {label}: single-thread {t1:?}, 4-thread {t4:?} ({speedup:.2}x)");
        if cores >= 4 {
            assert!(
                speedup >= 2.0,
                "{label}: expected a >=2x 4-thread execute speed-up, got {speedup:.2}x \
                 (single-thread {t1:?}, 4-thread {t4:?})"
            );
        } else {
            eprintln!(
                "[e8] {label}: only {cores} core(s) available; the >=2x assertion is \
                 enforced by the multi-core CI runners"
            );
        }
    }
}

/// The E10 columnar guard (release mode, run by CI): on a 100× scaled E6
/// genome extent, the batch-at-a-time columnar executor must answer a
/// scan→filter→project tower at least 3× faster than the row-at-a-time
/// executor — measured single-threaded, so the ratio is the vectorization
/// win, not parallelism — while producing the identical row stream. Debug
/// builds only assert the differential (the ratio there measures the
/// allocator, not the kernels).
#[test]
fn e10_columnar_scan_filter_is_at_least_3x_row_at_a_time() {
    use wol_repro::cpl::{self, Expr, Plan};
    use wol_repro::wol_model::Value;

    let source = genome::generate_source(&GenomeParams::scaled(100));
    let refs = [&source];
    let plan = Plan::scan("MarkerS", "M")
        .filter(Expr::Leq(
            Box::new(Expr::var("M").proj("position")),
            Box::new(Expr::Const(Value::int(25_000_000))),
        ))
        .map(vec![
            ("NAME".to_string(), Expr::var("M").proj("name")),
            ("POS".to_string(), Expr::var("M").proj("position")),
        ]);
    let run = |columnar: bool| -> (Vec<cpl::Row>, Duration) {
        let mut ctx =
            cpl::expr::EvalCtx::new(&refs[..]).with_parallelism(Parallelism::sequential());
        ctx.set_columnar(columnar);
        let mut stats = cpl::ExecStats::default();
        let start = std::time::Instant::now();
        let rows = cpl::run_plan(&plan, &mut ctx, &mut stats).expect("plan runs");
        (rows, start.elapsed())
    };
    // Warm the derived column cache so the ratio measures steady-state scan
    // throughput, not the one-time column build.
    let (warm_rows, _) = run(true);
    assert!(!warm_rows.is_empty(), "the tower must select something");
    // Best-of-two per mode to damp scheduler noise.
    let measure = |columnar: bool| -> (Vec<cpl::Row>, Duration) {
        let (rows, first) = run(columnar);
        let (_, second) = run(columnar);
        (rows, first.min(second))
    };
    let (row_rows, row_secs) = measure(false);
    let (col_rows, col_secs) = measure(true);
    assert_eq!(col_rows, row_rows, "columnar and row executors diverged");
    if cfg!(debug_assertions) {
        eprintln!("[e10] debug build: the 3x ratio is measured by the release CI run only");
        return;
    }
    let speedup = row_secs.as_secs_f64() / col_secs.as_secs_f64().max(1e-9);
    eprintln!("[e10] row {row_secs:?}, columnar {col_secs:?} ({speedup:.2}x)");
    assert!(
        speedup >= 3.0,
        "expected a >=3x columnar scan+filter speed-up, got {speedup:.2}x \
         (row {row_secs:?}, columnar {col_secs:?})"
    );
}

/// The E11 maintenance guard (release mode, run by CI): on the scaled E6
/// genome warehouse, absorbing an in-place mutation batch through the
/// standing [`MaterializedPipeline`] must be at least 10× faster than a
/// from-scratch re-run of the whole transformation, while the maintained
/// target stays bit-identical to the re-run oracle. Debug builds only
/// assert the differential (the ratio there measures the allocator, not
/// the delta pipeline).
#[test]
fn e11_incremental_repair_is_at_least_10x_full_rerun() {
    use wol_repro::morphase::MaterializedPipeline;
    use wol_repro::workloads::traffic::{TrafficGen, TrafficWeights};

    let params = GenomeParams::scaled(4); // 400 clones, 1200 markers
    let mut pipeline = MaterializedPipeline::new(
        &genome::program(),
        vec![genome::generate_source(&params)],
        PipelineOptions::default(),
    )
    .expect("genome pipeline builds");
    let mut gen = TrafficGen::new(pipeline.source(0).unwrap(), 47, TrafficWeights::in_place());

    // Full re-run cost, best-of-two to damp scheduler noise.
    let rerun = |p: &MaterializedPipeline| {
        let start = std::time::Instant::now();
        p.rerun_oracle().expect("oracle runs");
        start.elapsed()
    };
    let rerun_cost = rerun(&pipeline).min(rerun(&pipeline));

    // Incremental cost: the median over a short in-place stream (per-batch
    // best-of is meaningless — every batch advances state — so the median
    // damps the noise instead).
    const BATCHES: usize = 20;
    let mut costs = Vec::with_capacity(BATCHES);
    for _ in 0..BATCHES {
        let batch = gen.next_batch(4);
        let start = std::time::Instant::now();
        let report = pipeline.apply_batch(&batch).expect("batch applies");
        costs.push(start.elapsed());
        assert_eq!(
            report.outcome,
            wol_repro::morphase::BatchOutcome::InPlace,
            "the in-place preset must never rebuild"
        );
    }
    costs.sort();
    let incremental_cost = costs[BATCHES / 2];

    // Bit-identity against the from-scratch oracle at the end of the stream.
    let oracle = pipeline.rerun_oracle().expect("oracle runs");
    if let Some(diff) = pipeline.target().deep_eq_report(&oracle.target) {
        panic!("maintained target diverged from the oracle: {diff}");
    }
    if cfg!(debug_assertions) {
        eprintln!("[e11] debug build: the 10x ratio is measured by the release CI run only");
        return;
    }
    let speedup = rerun_cost.as_secs_f64() / incremental_cost.as_secs_f64().max(1e-9);
    eprintln!("[e11] rerun {rerun_cost:?}, incremental {incremental_cost:?} ({speedup:.1}x)");
    assert!(
        speedup >= 10.0,
        "expected a >=10x incremental-repair speed-up over a full re-run, got {speedup:.1}x \
         (rerun {rerun_cost:?}, incremental {incremental_cost:?})"
    );
}

/// The E13 pushdown guard (release mode, run by CI): on the federated genome
/// workload — clones in a relational table, markers in an ACeDB-style store,
/// assays in a 20 000-row CSV — running the pipeline with planner pushdown
/// must be at least 3× faster end-to-end than the same pipeline with
/// pushdown off, while the produced target stays bit-identical. The saving
/// is upstream of the executor: the pushed `length`/`position`/`level`
/// guards trim the provider streams before ingest and indexing. Debug
/// builds assert only the differential (the ratio there measures the
/// allocator, not the ingest path).
#[test]
fn e13_federated_pushdown_is_at_least_3x_full_ingest() {
    use wol_repro::storage::ScanProvider;
    use wol_repro::workloads::federated::{self, FederatedParams};

    let params = FederatedParams::scaled(1); // 100 clones, 300 markers, 20 000 assays
    let (csv, ace, rel) = federated::providers(&params);
    let providers: [&dyn ScanProvider; 3] = [&csv, &ace, &rel];
    let program = federated::program();
    let run = |pushdown: bool| -> MorphaseRun {
        Morphase::with_options(PipelineOptions {
            pushdown,
            ..PipelineOptions::default()
        })
        .transform_federated(&program, &providers)
        .expect("federated pipeline runs")
    };

    let on = run(true);
    let off = run(false);
    assert_eq!(on.exec.pushed_filters, 3, "all three guards must push");
    assert!(
        on.exec.provider_rows_out < on.exec.provider_rows_in,
        "pushed filters must trim the provider streams: {} -> {}",
        on.exec.provider_rows_in,
        on.exec.provider_rows_out
    );
    assert_eq!(off.exec.pushed_filters, 0);
    assert_eq!(
        off.exec.provider_rows_in, off.exec.provider_rows_out,
        "pushdown-off must ingest the full streams"
    );
    if let Some(diff) = on.target.deep_eq_report(&off.target) {
        panic!("pushdown changed the produced target: {diff}");
    }
    if cfg!(debug_assertions) {
        eprintln!("[e13] debug build: the 3x ratio is measured by the release CI run only");
        return;
    }
    // Best-of-two per mode to damp scheduler noise; total() covers ingest,
    // which is exactly where the pushdown saving lives.
    let measure = |pushdown: bool| -> Duration {
        let first = run(pushdown).timings.total();
        let second = run(pushdown).timings.total();
        first.min(second)
    };
    let on_cost = measure(true);
    let off_cost = measure(false);
    let speedup = off_cost.as_secs_f64() / on_cost.as_secs_f64().max(1e-9);
    eprintln!("[e13] pushdown-on {on_cost:?}, pushdown-off {off_cost:?} ({speedup:.1}x)");
    assert!(
        speedup >= 3.0,
        "expected a >=3x federated pushdown speed-up, got {speedup:.1}x \
         (pushdown-on {on_cost:?}, pushdown-off {off_cost:?})"
    );
}

/// The full-size E6 acceptance check (100 clones x 300 markers): the genome
/// join runs on index probes, the ~23M-row cross product is gone (peak
/// operator output far below 1M rows), and the execute phase — ~20-60s
/// before the planner — finishes promptly even in debug builds.
#[test]
fn e6_full_size_genome_pipeline_has_no_cross_products() {
    let params = GenomeParams {
        clones: 100,
        markers: 300,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let run = Morphase::new()
        .transform(&genome::program(), &[&source][..])
        .expect("genome pipeline runs");

    assert_eq!(run.target.extent_size(&ClassName::new("CloneD")), 100);
    assert_eq!(run.target.extent_size(&ClassName::new("MarkerD")), 300);
    assert!(
        run.exec.max_intermediate_rows < 1_000_000,
        "cross product is back: peak operator output {} rows",
        run.exec.max_intermediate_rows
    );
    assert!(
        run.exec.index_probes > 0,
        "the genome join no longer uses index probes"
    );
    // No plan in the compiled program contains a product operator.
    for plan in &run.plans {
        assert!(
            !plan.contains("CrossJoin") && !plan.contains("NestedLoopJoin"),
            "a product survived planning:\n{plan}"
        );
    }
    // Generous absolute bound (debug builds included): the pre-planner
    // execute phase took tens of seconds in release.
    assert!(
        run.timings.execute < Duration::from_secs(10),
        "execute took {:?}",
        run.timings.execute
    );
}

/// The E12 constraint guard (release mode, run by CI): on the scaled
/// constrained workload, validating a mutation batch with the incremental
/// `check_batch` (read-set analysis + index probes over the delta) must be
/// at least 5× faster than a full `check_constraints` rescan of the same
/// post-batch state, summed over a constraint-dominated stream — while
/// reporting exactly what the rescan reports (clean, here). Debug builds
/// assert only the differential.
#[test]
fn e12_incremental_constraint_checks_are_at_least_5x_faster_than_full_rescans() {
    use std::collections::BTreeSet;
    use std::time::Instant;
    use wol_repro::morphase::MaterializedPipeline;
    use wol_repro::wol_engine::{check_batch, check_constraints, Databases};
    use wol_repro::wol_lang::Clause;
    use wol_repro::workloads::constrained::{self, ConstrainedParams};

    let params = ConstrainedParams::scaled(4); // 1600 users, 2400 profiles, 1600 accounts
    let source = constrained::generate_source(&params);
    // The clause list under test is exactly what the standing pipeline
    // enforces: the augmented program's source constraints, in order.
    let pipeline = MaterializedPipeline::new(
        &constrained::program(),
        vec![source.clone()],
        PipelineOptions::default(),
    )
    .expect("constrained pipeline builds");
    let clauses: Vec<Clause> = pipeline.constraints().to_vec();
    let clause_refs: Vec<&Clause> = clauses.iter().collect();
    drop(pipeline);

    let mut inst = source.clone();
    let mut gen = constrained::ConstrainedGen::new(&source, 51);
    let no_suspects = BTreeSet::new();
    const BATCHES: usize = 30;
    let mut incremental = Duration::ZERO;
    let mut full = Duration::ZERO;
    let mut probes = 0u64;
    for _ in 0..BATCHES {
        let batch = gen.next_batch(6);
        let delta = inst.apply_batch(&batch).expect("batch applies");
        let insts = [&inst];
        let dbs = Databases::new(&insts);
        let start = Instant::now();
        let check = check_batch(
            &clause_refs,
            &dbs,
            &delta,
            cpl::Parallelism::new(1),
            &no_suspects,
        )
        .expect("incremental check runs");
        incremental += start.elapsed();
        let start = Instant::now();
        let oracle = check_constraints(&clause_refs, &dbs).expect("full rescan runs");
        full += start.elapsed();
        assert_eq!(
            check.violations, oracle,
            "incremental and full checks must agree"
        );
        assert!(oracle.is_empty(), "clean traffic must stay clean");
        probes += check.certificate.probes();
    }
    assert!(probes > 0, "the key probes never fired");
    if cfg!(debug_assertions) {
        eprintln!("[e12] debug build: the 5x ratio is measured by the release CI run only");
        return;
    }
    let speedup = full.as_secs_f64() / incremental.as_secs_f64().max(1e-9);
    eprintln!("[e12] full {full:?}, incremental {incremental:?} ({speedup:.1}x)");
    assert!(
        speedup >= 5.0,
        "expected a >=5x incremental constraint-check speed-up over full rescans, \
         got {speedup:.1}x (full {full:?}, incremental {incremental:?})"
    );
}
