//! # storage
//!
//! Heterogeneous storage substrates for the WOL reproduction.
//!
//! The paper's trials move data between a **Sybase relational database**
//! (Chr22DB) and an **ACeDB tree database** (ACe22DB) at the Sanger Centre,
//! "which use incompatible data-models as well as different interpretations of
//! the underlying data" (Section 6). Neither system is available here, so this
//! crate provides the closest synthetic equivalents that exercise the same
//! code paths:
//!
//! * [`relational`] — a flat table store (named columns, rows of base values)
//!   with an adapter that loads tables into model [`Instance`]s and dumps
//!   class extents back out to tables;
//! * [`acedb`] — an ACeDB-like store of *tagged trees* ("tree-like structures
//!   with object identities ... well suited for representing sparsely
//!   populated data") with an importer that maps trees onto model instances
//!   with optional attributes, plus a parser for a simplified `.ace` dump
//!   format;
//! * [`csv`] — a minimal line-oriented import/export format for flat classes,
//!   standing in for the "uploading certain file formats" use case of the
//!   introduction;
//! * [`persist`] — crash-consistent durability for instances: a write-ahead
//!   log, checksummed snapshots, recovery, and fault injection;
//! * [`provider`] — the [`provider::ScanProvider`] trait turning each of the
//!   above into a planner-visible *source* with pushdown (see below).
//!
//! Every loader reports malformed input as a structured
//! [`StorageError::Corrupt`] carrying the source path, the line or byte
//! offset, and expected-vs-found context — short or truncated reads are
//! errors, never panics.
//!
//! # Durability
//!
//! The [`persist`] module stores an instance as a **snapshot** plus a
//! **write-ahead log**; recovery loads the snapshot, replays every intact
//! committed WAL batch, and discards the torn tail. This realises the
//! paper's consistent-update-set semantics on disk: a recovered instance is
//! always the result of a *prefix of whole update batches*, never a torn
//! one.
//!
//! ## WAL layout (`store.wal` / `pipeline.wal`)
//!
//! A WAL is a flat sequence of records; every integer is little-endian and
//! `varint` is LEB128 (zigzag for signed):
//!
//! ```text
//! record  := len:u32  crc:u32  payload         crc = CRC-32 (IEEE) of payload
//! payload := tag:u8   body
//!
//! tag 0x01 Insert        oid value             object inserted
//! tag 0x02 Update        oid value             object's value replaced
//! tag 0x03 Remove        oid                   object removed
//! tag 0x04 SkolemAssign  class:str key:value oid   Mk_class(key) = oid
//! tag 0x05 OidCounter    class:str n:varint    fresh-id counter advanced
//! tag 0x06 QueryDone     index:varint          pipeline query applied
//! tag 0x07 Fingerprint   fp:u64                journal's program fingerprint
//! tag 0x08 Commit        seq:varint            closes a batch
//!
//! oid     := class:str  id:varint
//! str     := len:varint  utf8-bytes
//! value   := one tag byte (0x00..=0x0B) + body, see `persist::codec`
//! ```
//!
//! Records between commit markers form a **batch**; `seq` numbers batches
//! consecutively starting from the snapshot's `wal_seq`. Replay stops at the
//! first truncated header or body, checksum mismatch, undecodable payload,
//! out-of-order commit, or uncommitted tail — everything before that point
//! is applied, everything after is truncated away.
//!
//! ## Snapshot layout (`store.snap` / `pipeline.snap`)
//!
//! ```text
//! snapshot := magic:"WOLSNAP\0"  version:u32  body  crc:u32
//! body     := schema_name:str
//!             class_count:varint ( class:str n:varint (id:varint value)* )*
//!             oid_counter_count:varint   ( class:str count:varint )*
//!             skolem_class_count:varint  ( class:str k:varint (key:value oid)* )*
//!             skolem_counter_count:varint ( class:str count:varint )*
//!             wal_seq:varint
//!             has_meta:u8  [ fingerprint:u64  completed:varint ]
//! ```
//!
//! The trailing CRC-32 covers every preceding byte (magic and version
//! included). Saves are atomic (write `.tmp`, sync, rename), so a crash
//! mid-save leaves the previous snapshot intact.
//!
//! ## Version-bump rules
//!
//! * Value tags (0x00..=0x0B), WAL record tags (0x01..=0x08), and every
//!   field layout above are **frozen** for format version 1.
//! * Adding a new WAL record tag or value tag, reordering fields, or
//!   changing any width requires bumping [`persist::SNAPSHOT_VERSION`] (the
//!   WAL shares the snapshot's version: a snapshot at version *v* is only
//!   ever paired with a WAL written by the same code).
//! * Loaders must reject versions they do not know rather than guess.
//!
//! # Backends as sources
//!
//! The [`provider`] module exposes each substrate as a [`provider::ScanProvider`]
//! the CPL planner can push filters and projections into, instead of a blob the
//! pipeline must fully materialize before planning. The contract every
//! implementation (and every future backend) must honour:
//!
//! * **Determinism** — for a fixed backend state and pushdown, a scan yields
//!   the same rows in the same backend-native order on every call (file order,
//!   store order, row order — never hash order), and chunk boundaries fall
//!   every `chunk_rows` surviving rows without reordering. Streaming ingest
//!   therefore produces extents, attribute indexes and histograms
//!   bit-identical to a bulk load of the same filtered row set.
//! * **Chunk ordering** — the sink sees chunks in stream order; concatenating
//!   them reproduces the unchunked stream exactly. Chunking is a memory
//!   knob, never a semantic one.
//! * **Stats freshness** — [`provider::ScanProvider::stats`] describes the
//!   *unfiltered* stream the next scan call would produce. A provider over a
//!   mutable backend must recompute or invalidate its statistics on mutation;
//!   stale statistics may only mis-cost a plan, never change its result.
//! * **Residual predicates** — a backend evaluates exactly the conjuncts it
//!   was handed, with the executor's comparison semantics
//!   ([`provider::PushedFilter::matches`]); every conjunct the planner did
//!   *not* push (multi-variable joins, computed expressions) remains a
//!   residual obligation of the executor. Projection, when requested, must be
//!   applied identically whether or not filters are pushed — the
//!   `WOL_PUSHDOWN` differential relies on it.
//!
//! [`Instance`]: wol_model::Instance

pub mod acedb;
pub mod csv;
pub mod error;
pub mod persist;
pub mod provider;
pub mod relational;

pub use acedb::{AceObject, AceStore, AceValue};
pub use error::StorageError;
pub use persist::{DurableInstance, FaultKind, FaultPolicy, PipelineJournal, RecoveryReport};
pub use provider::{
    ingest_class, AceProvider, ClassStats, CsvDirProvider, IngestStats, PushOp, Pushdown,
    PushedFilter, RelationalProvider, ScanProvider, ScanSummary, DEFAULT_CHUNK_ROWS,
};
pub use relational::{Column, ColumnType, Table, TableSchema};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
