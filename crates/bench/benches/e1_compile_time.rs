//! Experiment E1 — compile time of normalised vs non-normalised programs.
//!
//! Paper claim (Section 6): "a non-normalized transformation program with
//! constraints taking approximately six times longer to compile than a
//! normalized program". The workload is the wide-record family W(n, k): the
//! same transformation written as one already-normal-form clause versus k
//! partial clauses plus the key constraint, compiled through the full Morphase
//! pipeline (metadata → snf → normalise → CPL).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::Morphase;
use workloads::wide;

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_compile_time");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    for &(attrs, partials) in &[(16usize, 4usize), (32, 8), (48, 12)] {
        let normal_program = wide::normal_form_program(attrs);
        let partial_program = wide::partial_program(attrs, partials, true);
        group.bench_with_input(
            BenchmarkId::new("already_normal_form", format!("n{attrs}")),
            &normal_program,
            |b, program| b.iter(|| Morphase::new().compile(program).expect("compiles")),
        );
        group.bench_with_input(
            BenchmarkId::new("partial_with_constraints", format!("n{attrs}_k{partials}")),
            &partial_program,
            |b, program| b.iter(|| Morphase::new().compile(program).expect("compiles")),
        );
    }
    group.finish();

    // Print the paper-style summary row (ratio of compile times).
    for &(attrs, partials) in &[(32usize, 8usize)] {
        let normal_program = wide::normal_form_program(attrs);
        let partial_program = wide::partial_program(attrs, partials, true);
        let t0 = std::time::Instant::now();
        for _ in 0..20 {
            Morphase::new().compile(&normal_program).unwrap();
        }
        let normal_time = t0.elapsed();
        let t1 = std::time::Instant::now();
        for _ in 0..20 {
            Morphase::new().compile(&partial_program).unwrap();
        }
        let partial_time = t1.elapsed();
        eprintln!(
            "[E1] n={attrs} k={partials}: normal-form compile {normal_time:?}, \
             partial+constraints compile {partial_time:?}, ratio {:.2}x (paper reports ~6x)",
            partial_time.as_secs_f64() / normal_time.as_secs_f64().max(1e-9)
        );
    }
}

criterion_group!(benches, bench_compile_time);
criterion_main!(benches);
