//! Fault injection for the persistence layer.
//!
//! [`FaultyFile`] wraps any writer and simulates a crash or media fault at a
//! configured byte offset: the write fails outright, tears mid-buffer, or
//! silently flips a bit. It is threaded through the WAL and snapshot writers
//! (which are generic over their sink), so the crash-matrix tests exercise the
//! *real* encode-and-append paths rather than a mock. Read-side corruption is
//! simpler — recovery reads whole files into memory — so it is modelled by
//! the [`flip_byte`] / [`short_read`] helpers applied to the raw bytes.

use std::io::{self, Write};

/// What goes wrong when the configured offset is reached.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The write call that would reach the offset fails without writing any
    /// of its buffer — a crash at a write boundary.
    FailWrite,
    /// The write call lands the prefix of its buffer up to the offset, then
    /// fails — a torn write (crash mid-`write`, partial sector).
    TornWrite,
    /// The byte at the offset is written with `mask` XORed in and the write
    /// otherwise succeeds — silent media corruption the checksum must catch.
    BitFlip {
        /// Which bits to flip.
        mask: u8,
    },
}

/// A fault to inject: the kind and the absolute byte offset (counted over all
/// bytes written through the shim) at which it triggers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPolicy {
    /// The failure mode.
    pub kind: FaultKind,
    /// Absolute byte offset at which the fault triggers.
    pub at: u64,
}

impl FaultPolicy {
    /// Fail the write reaching byte `at` without writing anything.
    pub fn fail_at(at: u64) -> Self {
        FaultPolicy {
            kind: FaultKind::FailWrite,
            at,
        }
    }

    /// Tear the write reaching byte `at`: bytes before `at` land, the rest
    /// (and everything after) is lost.
    pub fn torn_at(at: u64) -> Self {
        FaultPolicy {
            kind: FaultKind::TornWrite,
            at,
        }
    }

    /// Flip `mask`'s bits in the byte written at offset `at`.
    pub fn flip_at(at: u64, mask: u8) -> Self {
        FaultPolicy {
            kind: FaultKind::BitFlip { mask },
            at,
        }
    }
}

/// A write shim injecting one configured fault (see [`FaultPolicy`]). After a
/// `FailWrite`/`TornWrite` fires, every subsequent write fails too — the
/// "process" that held the file has crashed.
#[derive(Debug)]
pub struct FaultyFile<W> {
    inner: W,
    written: u64,
    policy: Option<FaultPolicy>,
    dead: bool,
}

impl<W> FaultyFile<W> {
    /// Wrap `inner` with no fault configured (fully transparent).
    pub fn new(inner: W) -> Self {
        FaultyFile {
            inner,
            written: 0,
            policy: None,
            dead: false,
        }
    }

    /// Wrap `inner` with a fault policy installed.
    pub fn with_policy(inner: W, policy: FaultPolicy) -> Self {
        FaultyFile {
            inner,
            written: 0,
            policy: Some(policy),
            dead: false,
        }
    }

    /// Install or clear the fault policy.
    pub fn set_policy(&mut self, policy: Option<FaultPolicy>) {
        self.policy = policy;
    }

    /// Total bytes successfully written through the shim so far.
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Unwrap the inner writer.
    pub fn into_inner(self) -> W {
        self.inner
    }

    /// The inner writer.
    pub fn get_ref(&self) -> &W {
        &self.inner
    }

    fn crashed() -> io::Error {
        io::Error::other("injected fault: simulated crash")
    }
}

impl<W: Write> Write for FaultyFile<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::crashed());
        }
        let end = self.written + buf.len() as u64;
        match self.policy {
            Some(FaultPolicy { kind, at }) if self.written <= at && at < end => match kind {
                FaultKind::FailWrite => {
                    self.dead = true;
                    Err(Self::crashed())
                }
                FaultKind::TornWrite => {
                    let keep = (at - self.written) as usize;
                    self.inner.write_all(&buf[..keep])?;
                    self.written += keep as u64;
                    self.dead = true;
                    Err(Self::crashed())
                }
                FaultKind::BitFlip { mask } => {
                    let mut corrupted = buf.to_vec();
                    corrupted[(at - self.written) as usize] ^= mask;
                    self.inner.write_all(&corrupted)?;
                    self.written = end;
                    self.policy = None;
                    Ok(buf.len())
                }
            },
            _ => {
                self.inner.write_all(buf)?;
                self.written = end;
                Ok(buf.len())
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::crashed());
        }
        self.inner.flush()
    }
}

/// Flip `mask`'s bits in the byte at `at` of an in-memory image — read-side
/// silent corruption for recovery tests.
pub fn flip_byte(bytes: &mut [u8], at: usize, mask: u8) {
    bytes[at] ^= mask;
}

/// The prefix of `bytes` a short read of `len` bytes would return.
pub fn short_read(bytes: &[u8], len: usize) -> &[u8] {
    &bytes[..len.min(bytes.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transparent_without_policy() {
        let mut f = FaultyFile::new(Vec::new());
        f.write_all(b"hello ").unwrap();
        f.write_all(b"world").unwrap();
        f.flush().unwrap();
        assert_eq!(f.written(), 11);
        assert_eq!(f.into_inner(), b"hello world");
    }

    #[test]
    fn fail_write_drops_the_whole_call_and_kills_the_file() {
        let mut f = FaultyFile::with_policy(Vec::new(), FaultPolicy::fail_at(8));
        f.write_all(b"12345678").unwrap(); // bytes 0..8: before the fault
        assert!(f.write_all(b"abcd").is_err()); // would cover byte 8
        assert!(f.write_all(b"more").is_err()); // dead after the crash
        assert!(f.flush().is_err());
        assert_eq!(f.written(), 8);
        assert_eq!(f.into_inner(), b"12345678");
    }

    #[test]
    fn torn_write_lands_the_prefix() {
        let mut f = FaultyFile::with_policy(Vec::new(), FaultPolicy::torn_at(6));
        assert!(f.write_all(b"12345678").is_err());
        assert_eq!(f.written(), 6);
        assert_eq!(f.into_inner(), b"123456");
    }

    #[test]
    fn bit_flip_corrupts_silently_and_once() {
        let mut f = FaultyFile::with_policy(Vec::new(), FaultPolicy::flip_at(2, 0x01));
        f.write_all(b"aaaa").unwrap();
        f.write_all(b"aa").unwrap();
        assert_eq!(f.written(), 6);
        assert_eq!(f.into_inner(), b"aa\x60aaa");
    }

    #[test]
    fn read_side_helpers() {
        let mut bytes = vec![0u8, 0, 0];
        flip_byte(&mut bytes, 1, 0x80);
        assert_eq!(bytes, [0, 0x80, 0]);
        assert_eq!(short_read(&bytes, 2), &bytes[..2]);
        assert_eq!(short_read(&bytes, 99), &bytes[..]);
    }
}
