//! The Person/Marriage schema-evolution workload of Figures 4–5 (Example 4.2).
//!
//! The source schema has a single `Person` class with a `sex` variant and a
//! `spouse` attribute; the evolved schema splits it into `Male`, `Female` and
//! `Marriage`. The transformation (T6)–(T8) is information preserving only on
//! instances satisfying the spouse constraints (C9)–(C11).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_lang::program::{Program, SchemaBinding};
use wol_model::{ClassName, Instance, KeyExpr, KeySpec, Oid, Schema, Type, Value};

/// The schema-evolution workload.
#[derive(Clone, Debug)]
pub struct PeopleWorkload {
    /// The pre-evolution schema of Figure 4.
    pub source_schema: Schema,
    /// The post-evolution schema of Figure 5.
    pub target_schema: Schema,
    /// Keys for the target classes.
    pub target_keys: KeySpec,
}

impl Default for PeopleWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl PeopleWorkload {
    /// Build the workload.
    pub fn new() -> Self {
        let source_schema = Schema::new("people_v1").with_class(
            "Person",
            Type::record([
                ("name", Type::str()),
                (
                    "sex",
                    Type::variant([("male", Type::Unit), ("female", Type::Unit)]),
                ),
                ("spouse", Type::class("Person")),
            ]),
        );
        let target_schema = Schema::new("people_v2")
            .with_class("Male", Type::record([("name", Type::str())]))
            .with_class("Female", Type::record([("name", Type::str())]))
            .with_class(
                "Marriage",
                Type::record([
                    ("husband", Type::class("Male")),
                    ("wife", Type::class("Female")),
                ]),
            );
        let target_keys = KeySpec::new()
            .with_key("Male", KeyExpr::path("name"))
            .with_key("Female", KeyExpr::path("name"))
            .with_key(
                "Marriage",
                KeyExpr::record([
                    ("husband", KeyExpr::path("husband.name")),
                    ("wife", KeyExpr::path("wife.name")),
                ]),
            );
        PeopleWorkload {
            source_schema,
            target_schema,
            target_keys,
        }
    }

    /// The transformation clauses (T6)–(T8) and the key constraints needed to
    /// normalise them.
    pub fn program_text() -> &'static str {
        "T6: X in Male, X.name = N <= Y in Person, Y.name = N, Y.sex = ins_male();\n\
         T7: X in Female, X.name = N <= Y in Person, Y.name = N, Y.sex = ins_female();\n\
         T8: M in Marriage, M.husband = X, M.wife = Y \
             <= X in Male, Y in Female, Z in Person, W in Person, \
                X.name = Z.name, Y.name = W.name, W = Z.spouse, \
                Z.sex = ins_male(), W.sex = ins_female();\n\
         K1: X = Mk_Male(N) <= X in Male, N = X.name;\n\
         K2: X = Mk_Female(N) <= X in Female, N = X.name;\n\
         K3: M = Mk_Marriage(husband = H, wife = W) <= M in Marriage, H = M.husband, W = M.wife;"
    }

    /// The spouse constraints (C9)–(C11) of Example 4.2.
    pub fn constraints_text() -> &'static str {
        "C9: X.sex = ins_male() <= Y in Person, Y.sex = ins_female(), X = Y.spouse;\n\
         C10: Y.sex = ins_female() <= X in Person, X.sex = ins_male(), Y = X.spouse;\n\
         C11: Y = X.spouse <= Y in Person, X = Y.spouse;"
    }

    /// The transformation program from the old schema to the new one.
    pub fn program(&self) -> Program {
        Program::new(
            "people_evolution",
            vec![SchemaBinding::new(self.source_schema.clone())],
            SchemaBinding::keyed(self.target_schema.clone(), self.target_keys.clone()),
        )
        .with_text(Self::program_text())
    }

    /// The parsed constraint clauses.
    pub fn constraints(&self) -> Vec<wol_lang::Clause> {
        wol_lang::parse_program(Self::constraints_text()).expect("constraints parse")
    }
}

/// Generate a constraint-satisfying instance with `couples` married couples
/// (spouse attributes symmetric, husband male, wife female).
pub fn generate_couples(couples: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new("people_v1");
    let class = ClassName::new("Person");
    for i in 0..couples {
        let suffix: u32 = rng.gen_range(0..10_000);
        let h = Oid::new(class.clone(), (i * 2) as u64);
        let w = Oid::new(class.clone(), (i * 2 + 1) as u64);
        inst.insert(
            h.clone(),
            Value::record([
                ("name", Value::str(format!("Husband{i}_{suffix}"))),
                ("sex", Value::tag("male")),
                ("spouse", Value::oid(w.clone())),
            ]),
        )
        .expect("fresh identity");
        inst.insert(
            w,
            Value::record([
                ("name", Value::str(format!("Wife{i}_{suffix}"))),
                ("sex", Value::tag("female")),
                ("spouse", Value::oid(h)),
            ]),
        )
        .expect("fresh identity");
    }
    inst
}

/// Generate an instance that *violates* the spouse constraints: everyone's
/// spouse points at the first person, regardless of sex or symmetry.
pub fn generate_broken(people: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new("people_v1");
    let class = ClassName::new("Person");
    let first = Oid::new(class.clone(), 0);
    for i in 0..people.max(1) {
        let id = Oid::new(class.clone(), i as u64);
        let sex = if rng.gen_bool(0.5) { "male" } else { "female" };
        inst.insert(
            id,
            Value::record([
                ("name", Value::str(format!("Person{i}"))),
                ("sex", Value::tag(sex)),
                ("spouse", Value::oid(first.clone())),
            ]),
        )
        .expect("fresh identity");
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{check_constraints, execute, normalize, Databases, NormalizeOptions};

    #[test]
    fn schemas_and_program_validate() {
        let w = PeopleWorkload::new();
        assert!(w.source_schema.validate().is_ok());
        assert!(w.target_schema.validate().is_ok());
        w.program().validate().unwrap();
    }

    #[test]
    fn generated_couples_satisfy_the_spouse_constraints() {
        let w = PeopleWorkload::new();
        let inst = generate_couples(5, 1);
        wol_model::validate::check_instance(&inst, &w.source_schema).unwrap();
        let constraints = w.constraints();
        let refs = [&inst];
        let dbs = Databases::new(&refs);
        let clause_refs: Vec<&wol_lang::Clause> = constraints.iter().collect();
        assert!(check_constraints(&clause_refs, &dbs).unwrap().is_empty());
    }

    #[test]
    fn broken_instances_violate_the_constraints() {
        let w = PeopleWorkload::new();
        let inst = generate_broken(6, 2);
        let constraints = w.constraints();
        let refs = [&inst];
        let dbs = Databases::new(&refs);
        let clause_refs: Vec<&wol_lang::Clause> = constraints.iter().collect();
        assert!(!check_constraints(&clause_refs, &dbs).unwrap().is_empty());
    }

    #[test]
    fn evolution_transformation_produces_marriages() {
        let w = PeopleWorkload::new();
        let program = w.program();
        let source = generate_couples(4, 3);
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "people_v2").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("Male")), 4);
        assert_eq!(target.extent_size(&ClassName::new("Female")), 4);
        assert_eq!(target.extent_size(&ClassName::new("Marriage")), 4);
        // Every marriage links a Male to a Female.
        for (_, value) in target.objects(&ClassName::new("Marriage")) {
            let husband = value.project("husband").and_then(|v| v.as_oid()).unwrap();
            let wife = value.project("wife").and_then(|v| v.as_oid()).unwrap();
            assert_eq!(husband.class(), &ClassName::new("Male"));
            assert_eq!(wife.class(), &ClassName::new("Female"));
        }
    }

    #[test]
    fn transformation_is_injective_on_valid_instances_only() {
        // Two valid instances with different pairings stay distinguishable;
        // two invalid instances that differ only in spouse direction collapse.
        let w = PeopleWorkload::new();
        let program = w.program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let transform = |source: &Instance| execute(&normal, &[source][..], "people_v2");

        let valid_a = generate_couples(2, 10);
        let valid_b = generate_couples(2, 11);
        let report = wol_engine::check_injective(&[valid_a, valid_b], transform, 3).unwrap();
        assert!(report.is_injective());

        // A symmetric couple and the same couple with an asymmetric spouse
        // attribute (the wife's spouse points at herself — representable in
        // the old schema, not expressible in the evolved one) map to the same
        // Male/Female/Marriage target: the transformation loses information on
        // instances violating (C9)-(C11).
        let symmetric = generate_couples(1, 12);
        let mut asymmetric = symmetric.clone();
        let class = ClassName::new("Person");
        let wife = Oid::new(class.clone(), 1);
        let mut v = asymmetric.value(&wife).unwrap().clone();
        if let Value::Record(ref mut fields) = v {
            fields.insert("spouse".into(), Value::oid(wife.clone()));
        }
        asymmetric.update(&wife, v).unwrap();
        assert!(!wol_engine::instances_equivalent(
            &symmetric,
            &asymmetric,
            3
        ));

        let family = vec![symmetric, asymmetric];
        let report = wol_engine::check_injective(&family, transform, 3).unwrap();
        assert!(
            !report.is_injective(),
            "information loss should be detected"
        );

        // Filtering by the constraints removes the offending instance, and on
        // the remaining (valid) family the transformation is injective.
        let constraints = w.constraints();
        let clause_refs: Vec<&wol_lang::Clause> = constraints.iter().collect();
        let satisfying =
            wol_engine::info_preserve::satisfying_instances(&family, &clause_refs).unwrap();
        assert_eq!(satisfying.len(), 1);
    }
}
