//! Experiment E8 — morsel-style partitioned parallel execution.
//!
//! PRs 1–3 made the pipeline algorithmically fast; E8 measures how the
//! execute phase scales *across cores*: the same E6 (genome warehouse) and
//! E7 (zipf-skewed triangle) pipelines run at 1/2/4/8 worker threads, sized
//! up so the execute phase is long enough that per-operator thread spawns
//! are noise. Parallel execution is deterministic — the targets are
//! bit-identical at every thread count (guarded by the thread-matrix tests);
//! this bench records the wall-clock side of that bargain in
//! `BENCH_e8.json`, stamped with the git sha and thread configuration.
//!
//! On a single-core container the curve is flat (it measures the overhead
//! bound, not scaling); the ≥2× four-thread guard runs on multi-core CI.
//! Since PR 5, operators dispatch to a persistent worker pool instead of
//! spawning a `thread::scope` round each (threshold down 1024 → 128 rows),
//! Skolem-bearing maps and insert actions run parallel under the two-phase
//! key-claim protocol (the E6 load's insert phase was main-thread-only
//! before), and independent queries of one program overlap on the pool —
//! the per-point `pool_size` field records the worker pool each
//! configuration dispatched to.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::{Morphase, MorphaseRun, PipelineOptions};
use workloads::genome::{self, GenomeParams};
use workloads::skewed::{self, SkewedParams};

fn run(
    program: &wol_lang::program::Program,
    source: &wol_model::Instance,
    threads: usize,
) -> MorphaseRun {
    let options = PipelineOptions {
        parallelism: cpl::Parallelism::new(threads),
        ..PipelineOptions::default()
    };
    Morphase::with_options(options)
        .transform(program, &[source][..])
        .expect("pipeline runs")
}

fn bench_parallel(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_parallel");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    // The same scaled shapes as the release perf guard.
    let genome_params = GenomeParams {
        clones: 1200,
        markers: 3600,
        density: 0.6,
        seed: 22,
    };
    let genome_source = genome::generate_source(&genome_params);
    let genome_program = genome::program();
    let skew_params = SkewedParams {
        clones: 2400,
        markers: 6000,
        probes: 2000,
        lanes: 4200,
        bins: 600,
        zipf_exponent: 1.1,
        seed: 22,
    };
    let skew_source = skewed::generate_source(&skew_params);
    let skew_program = skewed::program();

    let workloads: [(&str, &wol_lang::program::Program, &wol_model::Instance); 2] = [
        ("e6_genome", &genome_program, &genome_source),
        ("e7_skew", &skew_program, &skew_source),
    ];
    for (label, program, source) in workloads {
        for threads in [1usize, 2, 4, 8] {
            group.bench_function(BenchmarkId::new(label, threads), |b| {
                b.iter(|| run(program, source, threads))
            });
        }
    }
    group.finish();

    // Machine-readable scaling curve: per workload, per thread count, the
    // best-of-two execute time and its speed-up over the single-thread run.
    let mut json = bench::BenchJson::new().str("bench", "e8_parallel").int(
        "cores_available",
        std::thread::available_parallelism()
            .map(|n| n.get() as u64)
            .unwrap_or(1),
    );
    for (label, program, source) in workloads {
        let execute_at = |threads: usize| -> (f64, MorphaseRun) {
            let first = run(program, source, threads);
            let second = run(program, source, threads);
            let best = first.timings.execute.min(second.timings.execute);
            (best.as_secs_f64(), second)
        };
        let (base_secs, base_run) = execute_at(1);
        assert!(
            base_run.shard_stats.is_empty(),
            "a single-thread run must not spawn workers"
        );
        let mut curve = bench::BenchJson::new();
        for threads in [1usize, 2, 4, 8] {
            let (secs, run) = if threads == 1 {
                (base_secs, None)
            } else {
                let (secs, run) = execute_at(threads);
                (secs, Some(run))
            };
            let point = bench::BenchJson::new()
                .num("execute_secs", secs)
                .num("speedup_vs_1_thread", base_secs / secs.max(1e-9))
                .int(
                    "worker_shards",
                    run.as_ref().map_or(0, |r| r.shard_stats.len()) as u64,
                )
                // The persistent pool this configuration dispatches to:
                // `threads - 1` OS workers plus the participating caller.
                .int(
                    "pool_size",
                    cpl::WorkerPool::shared(cpl::Parallelism::new(threads)).threads() as u64,
                );
            curve = curve.obj(&format!("threads_{threads}"), point);
            if let Some(run) = run {
                // Determinism is cheap to re-assert while we are here.
                assert_eq!(
                    run.target, base_run.target,
                    "{label}: target diverged at {threads} threads"
                );
            }
        }
        json = json.obj(label, curve);
    }
    json.stamped().write("BENCH_e8.json");
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
