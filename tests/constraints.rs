//! The E12 constraint suite (ISSUE 9).
//!
//! Three layers of coverage for incremental, certificate-carrying constraint
//! checking:
//!
//! * `check_constraint` edge cases that the happy-path suites never hit:
//!   composite Skolem keys over objects missing key attributes, dangling
//!   object references inside key paths, empty extents, and duplicate
//!   Skolem-key merges that transiently violate a key and then restore it;
//! * certificate hardening: encode/decode round trips are bit-identical and
//!   *every* single-bit corruption or truncation is rejected loudly (the
//!   `storage::persist::fault` helpers inject the damage);
//! * a pipeline soak: every certificate attached to a committed batch is
//!   round-tripped through the codec and replayed with `recheck` against the
//!   post-batch snapshot, in both `Enforce` and `Report` modes.

use std::collections::BTreeSet;

use wol_repro::morphase::{
    BatchConstraintMode, MaterializedPipeline, MorphaseError, PipelineOptions,
};
use wol_repro::storage::persist::fault::{flip_byte, short_read};
use wol_repro::wol_engine::{
    check_batch, check_constraint, check_constraints, recheck, CertEntry, CheckMode,
    ConstraintCertificate, Databases, EngineError, Violation,
};
use wol_repro::wol_lang::{parse_clause, Clause};
use wol_repro::wol_model::{ClassName, Instance, MutationBatch, Oid, Parallelism, Value};
use wol_repro::workloads::constrained::{self, ConstrainedParams};

fn clause(text: &str) -> Clause {
    parse_clause(text).expect("clause parses")
}

fn account(code: &str, region: &str) -> Value {
    Value::record([("code", Value::str(code)), ("region", Value::str(region))])
}

/// Incremental/full differential at one point: apply `batch` to `inst`, then
/// assert `check_batch` (no suspects, single thread) reports exactly what a
/// from-scratch `check_constraints` rescan of the post-batch state reports.
fn check_against_oracle(
    inst: &mut Instance,
    batch: MutationBatch,
    clauses: &[&Clause],
) -> wol_repro::wol_engine::BatchCheck {
    let delta = inst.apply_batch(&batch).expect("batch applies");
    let insts = [&*inst];
    let dbs = Databases::new(&insts);
    let check = check_batch(clauses, &dbs, &delta, Parallelism::new(1), &BTreeSet::new())
        .expect("incremental check runs");
    let oracle = check_constraints(clauses, &dbs).expect("full rescan runs");
    assert_eq!(
        check.violations, oracle,
        "incremental violations must match the full rescan (set and order)"
    );
    check
}

// ---------------------------------------------------------------------------
// `check_constraint` edge cases.
// ---------------------------------------------------------------------------

#[test]
fn composite_key_skips_objects_missing_a_key_attribute() {
    // A two-attribute Skolem key: (code, region) identifies an account.
    let key = clause("K: A = Mk_AccountS(C, R) <= A in AccountS, C = A.code, R = A.region");
    let accounts = ClassName::new("AccountS");
    let mut inst = Instance::new("ledger");
    let a1 = inst.insert_fresh(&accounts, account("AC-1", "eu"));
    // Same code, different region: a *different* composite key, not a dup.
    inst.insert_fresh(&accounts, account("AC-1", "us"));
    // Missing the `region` key attribute entirely: the body cannot bind this
    // object, so it is skipped rather than crashing the evaluator.
    inst.insert_fresh(&accounts, Value::record([("code", Value::str("AC-9"))]));
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    assert_eq!(
        check_constraint(&key, &dbs).expect("check runs"),
        Vec::<Violation>::new(),
        "distinct composite keys and a partially-keyed object are clean"
    );

    // Now a true composite duplicate: both attributes collide.
    let dup = inst.insert_fresh(&accounts, account("AC-1", "eu"));
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let violations = check_constraint(&key, &dbs).expect("check runs");
    assert_eq!(
        violations.len(),
        1,
        "one injectivity violation: {violations:?}"
    );
    assert_eq!(violations[0].clause, "K");
    assert!(
        violations[0].oids.contains(&a1) && violations[0].oids.contains(&dup),
        "the two colliding accounts are the witnesses: {:?}",
        violations[0].oids
    );
}

#[test]
fn composite_key_duplicates_are_caught_incrementally() {
    let key = clause("K: A = Mk_AccountS(C, R) <= A in AccountS, C = A.code, R = A.region");
    let clauses = [&key];
    let mut inst = Instance::new("ledger");
    let accounts = ClassName::new("AccountS");
    inst.insert_fresh(&accounts, account("AC-1", "eu"));
    inst.insert_fresh(&accounts, Value::record([("code", Value::str("AC-9"))]));

    // A clean insert stays in delta mode and agrees with the oracle.
    let clean = check_against_oracle(
        &mut inst,
        MutationBatch::new().insert("AccountS", account("AC-2", "eu")),
        &clauses,
    );
    assert!(clean.violations.is_empty());
    assert_ne!(clean.certificate.entries[0].mode, CheckMode::Full);

    // Inserting the composite duplicate escalates to a full re-check whose
    // canonical violation list matches the rescan.
    let dirty = check_against_oracle(
        &mut inst,
        MutationBatch::new().insert("AccountS", account("AC-1", "eu")),
        &clauses,
    );
    assert_eq!(dirty.violations.len(), 1);
    assert_eq!(dirty.certificate.entries[0].mode, CheckMode::Full);
}

#[test]
fn dangling_oid_references_violate_existence_not_the_checker() {
    let exists = clause("S2: U in UserS <= P in ProfileS, U = P.user");
    let users = ClassName::new("UserS");
    let profiles = ClassName::new("ProfileS");
    let mut inst = Instance::new("registry");
    let alive = inst.insert_fresh(
        &users,
        Value::record([("email", Value::str("a@x")), ("name", Value::str("A"))]),
    );
    inst.insert_fresh(
        &profiles,
        Value::record([
            ("nick", Value::str("ok")),
            ("user", Value::Oid(alive.clone())),
        ]),
    );
    // A reference to an identity that was never minted: dangling.
    let ghost = Oid::new(users.clone(), 9_999);
    let orphan = inst.insert_fresh(
        &profiles,
        Value::record([
            ("nick", Value::str("orphan")),
            ("user", Value::Oid(ghost.clone())),
        ]),
    );
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let violations = check_constraint(&exists, &dbs).expect("check runs");
    assert_eq!(
        violations.len(),
        1,
        "only the orphan violates: {violations:?}"
    );
    assert!(
        violations[0].oids.contains(&orphan) && violations[0].oids.contains(&ghost),
        "the orphan profile and its dangling target are the witnesses: {:?}",
        violations[0].oids
    );
}

#[test]
fn dangling_oids_inside_merge_key_paths_are_skipped_not_fatal() {
    // The merge key dereferences `user` on the way to `email`; a dangling
    // `user` makes the path unevaluable for that binding, which skips the
    // binding rather than failing the whole check.
    let merge = clause("SP: X = Y <= X in ProfileS, Y in ProfileS, X.user.email = Y.user.email");
    let clauses = [&merge];
    let users = ClassName::new("UserS");
    let profiles = ClassName::new("ProfileS");
    let mut inst = Instance::new("registry");
    let u1 = inst.insert_fresh(
        &users,
        Value::record([("email", Value::str("dup@x")), ("name", Value::str("A"))]),
    );
    let u2 = inst.insert_fresh(
        &users,
        Value::record([("email", Value::str("dup@x")), ("name", Value::str("B"))]),
    );
    let p1 = inst.insert_fresh(
        &profiles,
        Value::record([("nick", Value::str("p1")), ("user", Value::Oid(u1))]),
    );
    let p2 = inst.insert_fresh(
        &profiles,
        Value::record([("nick", Value::str("p2")), ("user", Value::Oid(u2))]),
    );
    let ghost = Oid::new(users.clone(), 9_999);
    let orphan = inst.insert_fresh(
        &profiles,
        Value::record([("nick", Value::str("orphan")), ("user", Value::Oid(ghost))]),
    );
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let violations = check_constraint(&merge, &dbs).expect("dangling path must not error");
    // p1/p2 share an email through live users: both orientations violate the
    // merge. The orphan never binds.
    assert_eq!(violations.len(), 2, "{violations:?}");
    for v in &violations {
        assert!(v.oids.contains(&p1) && v.oids.contains(&p2));
        assert!(!v.oids.contains(&orphan), "the orphan cannot be a witness");
    }

    // The incremental path agrees after a batch touches the class.
    let check = check_against_oracle(
        &mut inst,
        MutationBatch::new().insert(
            "ProfileS",
            Value::record([
                ("nick", Value::str("p3")),
                ("user", Value::Oid(Oid::new(users, 8_888))),
            ]),
        ),
        &clauses,
    );
    assert_eq!(check.violations.len(), 2);
}

#[test]
fn empty_extents_are_vacuously_clean_and_skipped() {
    let clauses_owned = [
        clause("S1: X = Y <= X in UserS, Y in UserS, X.email = Y.email"),
        clause("S2: U in UserS <= P in ProfileS, U = P.user"),
        clause("S3: A = Mk_AccountS(C) <= A in AccountS, C = A.code"),
    ];
    let clauses: Vec<&Clause> = clauses_owned.iter().collect();
    let mut inst = Instance::new("empty");
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    assert_eq!(
        check_constraints(&clauses, &dbs).expect("check runs"),
        Vec::<Violation>::new()
    );

    // A batch over a class none of the constraints read: every entry is
    // skipped, nothing is examined, and the oracle agrees.
    let check = check_against_oracle(
        &mut inst,
        MutationBatch::new().insert("AuditS", Value::record([("at", Value::int(1))])),
        &clauses,
    );
    assert_eq!(check.certificate.skipped(), 3);
    assert_eq!(check.certificate.checked(), 0);
    assert_eq!(check.certificate.probes(), 0);
}

#[test]
fn duplicate_skolem_key_merge_transiently_violates_then_restores() {
    let key = clause("S3: A = Mk_AccountS(C) <= A in AccountS, C = A.code");
    let clauses = [&key];
    let accounts = ClassName::new("AccountS");
    let mut inst = Instance::new("ledger");
    for i in 0..8 {
        inst.insert_fresh(&accounts, account(&format!("AC-{i}"), "eu"));
    }

    // Batch 1 duplicates a key: the probe goes dirty and the full re-check
    // reports the canonical witness pair.
    let delta = inst
        .apply_batch(&MutationBatch::new().insert("AccountS", account("AC-3", "us")))
        .expect("batch applies");
    let dup = delta
        .class(&accounts)
        .unwrap()
        .inserted
        .iter()
        .next()
        .unwrap()
        .clone();
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let trip = check_batch(
        &clauses,
        &dbs,
        &delta,
        Parallelism::new(1),
        &BTreeSet::new(),
    )
    .expect("check runs");
    assert_eq!(trip.violations.len(), 1);
    assert_eq!(trip.certificate.entries[0].mode, CheckMode::Full);
    assert!(trip.violations[0].oids.contains(&dup));
    let oracle = check_constraints(&clauses, &dbs).expect("rescan runs");
    assert_eq!(trip.violations, oracle);

    // The violation was *committed*, so S3's pre-clean contract is void: the
    // next batch must carry it as a suspect. Removing the duplicate restores
    // the key, and the forced full re-check proves it.
    let suspects: BTreeSet<usize> = [0].into();
    let delta = inst
        .apply_batch(&MutationBatch::new().remove(dup))
        .expect("batch applies");
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let restored =
        check_batch(&clauses, &dbs, &delta, Parallelism::new(1), &suspects).expect("check runs");
    assert!(restored.violations.is_empty(), "{:?}", restored.violations);
    assert_eq!(restored.certificate.entries[0].mode, CheckMode::Full);

    // With the key restored and the suspicion cleared, untouched traffic
    // skips the constraint again.
    let delta = inst
        .apply_batch(&MutationBatch::new().insert("AuditS", Value::record([("at", Value::int(1))])))
        .expect("batch applies");
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let idle = check_batch(
        &clauses,
        &dbs,
        &delta,
        Parallelism::new(1),
        &BTreeSet::new(),
    )
    .expect("check runs");
    assert_eq!(idle.certificate.entries[0].mode, CheckMode::Skipped);
}

// ---------------------------------------------------------------------------
// Certificate round trips and tamper rejection.
// ---------------------------------------------------------------------------

/// A certificate exercising every mode, violation witnesses included.
fn sample_certificate() -> ConstraintCertificate {
    ConstraintCertificate {
        entries: vec![
            CertEntry {
                constraint: "S1".into(),
                mode: CheckMode::Full,
                checked: 120,
                probes: 7,
                violations: vec![Violation {
                    clause: "S1".into(),
                    detail: "no head witness for binding [X = #UserS:3]".into(),
                    oids: vec![
                        Oid::new(ClassName::new("UserS"), 3),
                        Oid::new(ClassName::new("UserS"), 61),
                    ],
                }],
            },
            CertEntry {
                constraint: "S2".into(),
                mode: CheckMode::Delta,
                checked: 4,
                probes: 2,
                violations: Vec::new(),
            },
            CertEntry {
                constraint: "<unlabelled>".into(),
                mode: CheckMode::Skipped,
                checked: 0,
                probes: 0,
                violations: Vec::new(),
            },
        ],
    }
}

#[test]
fn certificate_round_trip_is_bit_identical() {
    for cert in [
        sample_certificate(),
        ConstraintCertificate {
            entries: Vec::new(),
        },
    ] {
        let bytes = cert.encode();
        let decoded = ConstraintCertificate::decode(&bytes).expect("decodes");
        assert_eq!(decoded, cert);
        assert_eq!(decoded.encode(), bytes, "re-encoding must be bit-identical");
    }
}

#[test]
fn every_single_bit_flip_in_a_certificate_is_rejected() {
    let bytes = sample_certificate().encode();
    for at in 0..bytes.len() {
        for bit in 0..8 {
            let mut tampered = bytes.clone();
            flip_byte(&mut tampered, at, 1 << bit);
            let err = ConstraintCertificate::decode(&tampered)
                .expect_err(&format!("a flipped bit {bit} at byte {at} must not decode"));
            assert!(
                matches!(err, EngineError::Certificate(_)),
                "tamper errors are certificate errors, got: {err}"
            );
        }
    }
}

#[test]
fn truncated_and_extended_certificates_are_rejected() {
    let bytes = sample_certificate().encode();
    for len in 0..bytes.len() {
        assert!(
            ConstraintCertificate::decode(short_read(&bytes, len)).is_err(),
            "a {len}-byte prefix of a {}-byte certificate must not decode",
            bytes.len()
        );
    }
    let mut extended = bytes.clone();
    extended.push(0);
    assert!(ConstraintCertificate::decode(&extended).is_err());
}

#[test]
fn recheck_rejects_stale_and_mismatched_certificates() {
    let key = clause("S3: A = Mk_AccountS(C) <= A in AccountS, C = A.code");
    let clauses = [&key];
    let accounts = ClassName::new("AccountS");
    let mut inst = Instance::new("ledger");
    for i in 0..4 {
        inst.insert_fresh(&accounts, account(&format!("AC-{i}"), "eu"));
    }
    let delta = inst
        .apply_batch(&MutationBatch::new().insert("AccountS", account("AC-4", "eu")))
        .expect("batch applies");
    let insts = [&inst];
    let dbs = Databases::new(&insts);
    let check = check_batch(
        &clauses,
        &dbs,
        &delta,
        Parallelism::new(1),
        &BTreeSet::new(),
    )
    .expect("check runs");

    // Honest replay against the state the certificate was issued for.
    let report = recheck(&check.certificate, &clauses, &dbs).expect("honest replay passes");
    assert_eq!(report.constraints, 1);
    assert_eq!(report.violations, 0);

    // Wrong clause count.
    assert!(recheck(&check.certificate, &[], &dbs).is_err());

    // Wrong clause identity (label mismatch).
    let other = clause("S9: A = Mk_AccountS(C) <= A in AccountS, C = A.code");
    assert!(recheck(&check.certificate, &[&other], &dbs).is_err());

    // Stale snapshot: the state drifted (a duplicate key appeared), so a
    // certificate recorded as clean no longer replays.
    inst.apply_batch(&MutationBatch::new().insert("AccountS", account("AC-0", "us")))
        .expect("batch applies");
    let insts = [&inst];
    let dirty_dbs = Databases::new(&insts);
    let err = recheck(&check.certificate, &clauses, &dirty_dbs)
        .expect_err("a clean certificate must not replay against a dirty snapshot");
    assert!(matches!(err, EngineError::Certificate(_)));
}

// ---------------------------------------------------------------------------
// Pipeline soak: every committed batch's certificate replays.
// ---------------------------------------------------------------------------

/// Replay `check`'s certificate through a codec round trip and `recheck`
/// against the pipeline's current (post-batch) source snapshot.
fn assert_certificate_replays(
    pipeline: &MaterializedPipeline,
    check: &wol_repro::wol_engine::BatchCheck,
) {
    let bytes = check.certificate.encode();
    let decoded = ConstraintCertificate::decode(&bytes).expect("committed certificate decodes");
    assert_eq!(decoded, check.certificate);
    let clauses: Vec<&Clause> = pipeline.constraints().iter().collect();
    let insts = [pipeline.source(0).expect("source 0 exists")];
    let dbs = Databases::new(&insts);
    let report = recheck(&decoded, &clauses, &dbs).expect("committed certificate replays");
    assert_eq!(
        report.violations as u64,
        check.certificate.violation_count()
    );
}

#[test]
fn enforce_soak_every_committed_certificate_replays_against_its_snapshot() {
    let params = ConstrainedParams::default();
    let source = constrained::generate_source(&params);
    let options = PipelineOptions {
        batch_constraints: BatchConstraintMode::Enforce,
        ..PipelineOptions::default()
    };
    let mut pipeline =
        MaterializedPipeline::new(&constrained::program(), vec![source.clone()], options)
            .expect("pipeline builds");
    let mut gen = constrained::ConstrainedGen::new(&source, 31);
    let mut committed = 0u64;
    for i in 0..30 {
        if i % 10 == 9 {
            // Adversarial traffic: rejected wholesale, state untouched.
            let err = pipeline.apply_batch(&gen.violating_batch()).unwrap_err();
            assert!(matches!(err, MorphaseError::Verification(_)));
            assert!(!pipeline.is_poisoned());
            continue;
        }
        let report = pipeline
            .apply_batch(&gen.next_batch(5))
            .expect("clean batch commits");
        let check = report.constraints.expect("enforce mode attaches a check");
        assert!(check.violations.is_empty(), "{:?}", check.violations);
        assert_certificate_replays(&pipeline, &check);
        committed += 1;
    }
    assert_eq!(pipeline.stats().batches, committed);
    assert_eq!(pipeline.stats().rejected_batches, 3);
    // The maintained target still matches a from-scratch oracle at the end.
    let oracle = pipeline.rerun_oracle().expect("oracle runs");
    assert!(pipeline.target().deep_eq_report(&oracle.target).is_none());
}

#[test]
fn report_soak_committed_violations_replay_until_restored() {
    let params = ConstrainedParams::default();
    let source = constrained::generate_source(&params);
    let options = PipelineOptions {
        batch_constraints: BatchConstraintMode::Report,
        ..PipelineOptions::default()
    };
    let mut pipeline =
        MaterializedPipeline::new(&constrained::program(), vec![source.clone()], options)
            .expect("pipeline builds");
    let mut gen = constrained::ConstrainedGen::new(&source, 32);

    // A few clean batches, all replaying clean.
    for _ in 0..5 {
        let report = pipeline
            .apply_batch(&gen.next_batch(4))
            .expect("clean batch commits");
        let check = report.constraints.expect("report mode attaches a check");
        assert!(check.violations.is_empty());
        assert_certificate_replays(&pipeline, &check);
    }

    // Report mode commits the violating batch; the certificate records the
    // S1 witnesses and *still* replays against the now-dirty snapshot.
    let report = pipeline
        .apply_batch(&gen.violating_batch())
        .expect("report mode commits violating batches");
    let dirty = report.constraints.expect("report mode attaches a check");
    assert!(!dirty.violations.is_empty());
    assert!(dirty.violations.iter().all(|v| v.clause == "S1"));
    assert_certificate_replays(&pipeline, &dirty);
    assert_eq!(pipeline.stats().rejected_batches, 0);

    // Clean traffic on top of a dirty base keeps reporting (the suspect is
    // re-checked in full every batch) and keeps replaying.
    let report = pipeline
        .apply_batch(&gen.next_batch(3))
        .expect("batch commits");
    let still_dirty = report.constraints.expect("check attached");
    assert!(!still_dirty.violations.is_empty());
    assert_certificate_replays(&pipeline, &still_dirty);

    // Removing the imposter restores S1; the restore batch's own full
    // re-check proves it and replays clean.
    let users = ClassName::new("UserS");
    let imposter = pipeline
        .source(0)
        .expect("source 0 exists")
        .extent(&users)
        .find(|oid| {
            pipeline
                .source(0)
                .unwrap()
                .value(oid)
                .and_then(|v| v.project("tier"))
                == Some(&Value::int(constrained::IMPOSTER_TIER))
        })
        .expect("the imposter is live")
        .clone();
    let report = pipeline
        .apply_batch(&MutationBatch::new().remove(imposter))
        .expect("restore batch commits");
    let restored = report.constraints.expect("check attached");
    assert!(restored.violations.is_empty(), "{:?}", restored.violations);
    assert_certificate_replays(&pipeline, &restored);
}

/// The parallel determinism contract at suite level: the same stream checked
/// at 1, 2, 4 and 8 threads yields byte-identical certificates and identical
/// violation lists. (The property suite fuzzes this; here one fixed stream
/// runs under whatever `WOL_THREADS` CI pins, plus the explicit ladder.)
#[test]
fn certificates_are_bit_identical_at_every_thread_count() {
    let params = ConstrainedParams::default();
    let source = constrained::generate_source(&params);
    let program = constrained::program();
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for threads in [1usize, 2, 4, 8] {
        let options = PipelineOptions {
            batch_constraints: BatchConstraintMode::Report,
            parallelism: Parallelism::new(threads),
            ..PipelineOptions::default()
        };
        let mut pipeline = MaterializedPipeline::new(&program, vec![source.clone()], options)
            .expect("pipeline builds");
        let mut gen = constrained::ConstrainedGen::new(&source, 77);
        let mut encoded = Vec::new();
        for i in 0..12 {
            let batch = if i == 6 {
                gen.violating_batch()
            } else {
                gen.next_batch(4)
            };
            let report = pipeline.apply_batch(&batch).expect("batch commits");
            encoded.push(
                report
                    .constraints
                    .expect("check attached")
                    .certificate
                    .encode(),
            );
        }
        match &reference {
            None => reference = Some(encoded),
            Some(expected) => assert_eq!(
                &encoded, expected,
                "certificates diverged at {threads} threads"
            ),
        }
    }
}
