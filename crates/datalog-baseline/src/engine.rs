//! Semi-naive bottom-up evaluation of Datalog-with-Skolem programs.

use std::collections::{BTreeMap, BTreeSet};

use wol_model::{ClassName, SkolemFactory, Value};

use crate::ast::{DatalogAtom, DatalogProgram, DatalogTerm};

/// A database of flat relations: predicate name → set of tuples.
pub type Database = BTreeMap<String, BTreeSet<Vec<Value>>>;

type Bindings = BTreeMap<String, Value>;

fn match_tuple(atom: &DatalogAtom, tuple: &[Value], bindings: &Bindings) -> Option<Bindings> {
    if atom.terms.len() != tuple.len() {
        return None;
    }
    let mut out = bindings.clone();
    for (term, value) in atom.terms.iter().zip(tuple.iter()) {
        match term {
            DatalogTerm::Var(v) => match out.get(v) {
                Some(existing) if existing != value => return None,
                Some(_) => {}
                None => {
                    out.insert(v.clone(), value.clone());
                }
            },
            DatalogTerm::Const(c) => {
                if c != value {
                    return None;
                }
            }
            // Skolem terms in rule bodies are not supported (they never appear
            // in the baseline programs generated here).
            DatalogTerm::Skolem(_, _) => return None,
        }
    }
    Some(out)
}

fn eval_term(
    term: &DatalogTerm,
    bindings: &Bindings,
    factory: &mut SkolemFactory,
) -> Option<Value> {
    match term {
        DatalogTerm::Var(v) => bindings.get(v).cloned(),
        DatalogTerm::Const(c) => Some(c.clone()),
        DatalogTerm::Skolem(name, args) => {
            let mut arg_values = Vec::new();
            for a in args {
                arg_values.push(eval_term(a, bindings, factory)?);
            }
            let key = if arg_values.len() == 1 {
                arg_values.into_iter().next().expect("length checked")
            } else {
                Value::List(arg_values)
            };
            Some(Value::Oid(factory.mk(&ClassName::new(name.as_str()), &key)))
        }
    }
}

/// Statistics of a semi-naive evaluation run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of iterations until the fixpoint.
    pub iterations: usize,
    /// Number of facts derived (including duplicates of existing facts).
    pub derivations: usize,
}

/// Evaluate a program bottom-up (semi-naive: each iteration only joins against
/// the facts newly derived in the previous iteration for one body atom).
/// Returns the final database and statistics.
pub fn evaluate(program: &DatalogProgram, edb: &Database) -> (Database, EvalStats) {
    let mut db: Database = edb.clone();
    let mut delta: Database = edb.clone();
    let mut factory = SkolemFactory::new();
    let mut stats = EvalStats::default();

    loop {
        stats.iterations += 1;
        let mut new_delta: Database = Database::new();
        for rule in &program.rules {
            // Semi-naive: require at least one body atom to match the delta.
            for pivot in 0..rule.body.len() {
                let mut partials = vec![Bindings::new()];
                let mut ok = true;
                for (i, atom) in rule.body.iter().enumerate() {
                    let relation = if i == pivot { &delta } else { &db };
                    let tuples = match relation.get(&atom.predicate) {
                        Some(t) => t,
                        None => {
                            ok = false;
                            break;
                        }
                    };
                    let mut next = Vec::new();
                    for bindings in &partials {
                        for tuple in tuples {
                            if let Some(extended) = match_tuple(atom, tuple, bindings) {
                                next.push(extended);
                            }
                        }
                    }
                    partials = next;
                    if partials.is_empty() {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }
                for bindings in partials {
                    let mut tuple = Vec::new();
                    let mut complete = true;
                    for term in &rule.head.terms {
                        match eval_term(term, &bindings, &mut factory) {
                            Some(v) => tuple.push(v),
                            None => {
                                complete = false;
                                break;
                            }
                        }
                    }
                    if !complete {
                        continue;
                    }
                    stats.derivations += 1;
                    let existing = db.entry(rule.head.predicate.clone()).or_default();
                    if !existing.contains(&tuple) {
                        new_delta
                            .entry(rule.head.predicate.clone())
                            .or_default()
                            .insert(tuple);
                    }
                }
            }
        }
        if new_delta.values().all(BTreeSet::is_empty) {
            break;
        }
        for (predicate, tuples) in &new_delta {
            db.entry(predicate.clone())
                .or_default()
                .extend(tuples.iter().cloned());
        }
        delta = new_delta;
        if stats.iterations > 10_000 {
            break;
        }
    }
    (db, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::DatalogRule;

    fn edge_db() -> Database {
        let mut db = Database::new();
        let edges: BTreeSet<Vec<Value>> = [(1, 2), (2, 3), (3, 4)]
            .iter()
            .map(|(a, b)| vec![Value::int(*a), Value::int(*b)])
            .collect();
        db.insert("edge".to_string(), edges);
        db
    }

    #[test]
    fn transitive_closure() {
        // path(X, Y) :- edge(X, Y).  path(X, Z) :- edge(X, Y), path(Y, Z).
        let program = DatalogProgram::new(vec![
            DatalogRule::new(
                DatalogAtom::new("path", vec![DatalogTerm::var("X"), DatalogTerm::var("Y")]),
                vec![DatalogAtom::new(
                    "edge",
                    vec![DatalogTerm::var("X"), DatalogTerm::var("Y")],
                )],
            ),
            DatalogRule::new(
                DatalogAtom::new("path", vec![DatalogTerm::var("X"), DatalogTerm::var("Z")]),
                vec![
                    DatalogAtom::new("edge", vec![DatalogTerm::var("X"), DatalogTerm::var("Y")]),
                    DatalogAtom::new("path", vec![DatalogTerm::var("Y"), DatalogTerm::var("Z")]),
                ],
            ),
        ]);
        let (db, stats) = evaluate(&program, &edge_db());
        assert_eq!(db["path"].len(), 6); // (1,2)(2,3)(3,4)(1,3)(2,4)(1,4)
        assert!(stats.iterations >= 3);
        assert!(stats.derivations >= 6);
    }

    #[test]
    fn skolem_heads_create_stable_identities() {
        // person(mk_person(N), N) :- name(N).
        let mut edb = Database::new();
        edb.insert(
            "name".to_string(),
            [vec![Value::str("Ada")], vec![Value::str("Alan")]]
                .into_iter()
                .collect(),
        );
        let program = DatalogProgram::new(vec![DatalogRule::new(
            DatalogAtom::new(
                "person",
                vec![
                    DatalogTerm::Skolem("Person".to_string(), vec![DatalogTerm::var("N")]),
                    DatalogTerm::var("N"),
                ],
            ),
            vec![DatalogAtom::new("name", vec![DatalogTerm::var("N")])],
        )]);
        let (db, _) = evaluate(&program, &edb);
        assert_eq!(db["person"].len(), 2);
        for tuple in &db["person"] {
            assert!(matches!(tuple[0], Value::Oid(_)));
        }
    }

    #[test]
    fn constants_filter_tuples() {
        let mut edb = Database::new();
        edb.insert(
            "src".to_string(),
            [
                vec![Value::str("a"), Value::bool(true)],
                vec![Value::str("b"), Value::bool(false)],
            ]
            .into_iter()
            .collect(),
        );
        let program = DatalogProgram::new(vec![DatalogRule::new(
            DatalogAtom::new("flagged", vec![DatalogTerm::var("N")]),
            vec![DatalogAtom::new(
                "src",
                vec![DatalogTerm::var("N"), DatalogTerm::constant(true)],
            )],
        )]);
        let (db, _) = evaluate(&program, &edb);
        assert_eq!(db["flagged"].len(), 1);
        assert!(db["flagged"].contains(&vec![Value::str("a")]));
    }

    #[test]
    fn empty_program_terminates_immediately() {
        let (db, stats) = evaluate(&DatalogProgram::default(), &edge_db());
        assert_eq!(db["edge"].len(), 3);
        assert_eq!(stats.iterations, 1);
    }
}
