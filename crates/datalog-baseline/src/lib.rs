//! # datalog-baseline
//!
//! A Datalog/ILOG-style baseline engine used for the comparisons the paper
//! makes in Sections 3.2–3.3:
//!
//! * clauses are over **flat relations** with positional attributes;
//! * Skolem terms provide ILOG's object-identity creation;
//! * every clause must **completely** specify the target tuple — there are no
//!   partial clauses, so a target class whose description involves `k`
//!   independent variant choices needs `2^k` clauses (one per combination),
//!   whereas WOL needs `2k` partial clauses.
//!
//! The crate provides the rule language ([`ast`]), a semi-naive bottom-up
//! evaluator ([`engine`]), and a translator ([`expand`]) that builds the
//! complete-clause baseline program for the variant family `V(k)` of the
//! `workloads` crate, plus an importer/exporter between flat relations and the
//! WOL data model's instances.

pub mod ast;
pub mod engine;
pub mod expand;

pub use ast::{DatalogAtom, DatalogProgram, DatalogRule, DatalogTerm};
pub use engine::{evaluate, Database};
pub use expand::{variant_baseline_program, variant_facts, VariantBaseline};
