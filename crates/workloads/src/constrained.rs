//! E12: constraint-dominated mutation traffic over a registry source.
//!
//! The incremental constraint checker (PR 9) needs a workload whose cost is
//! dominated by *validation*, not by view maintenance: a source carrying one
//! of each constraint family the checker plans differently —
//!
//! * `S1` — a **merge key** on `UserS.email` (two users sharing an email are
//!   the same user), checked by attribute-index probes;
//! * `S2` — an **existence** constraint (every profile's `user` reference is
//!   a live `UserS` member), checked by seeded body re-matching;
//! * `S3` — a **Skolem key** on `AccountS.code`, checked by index probes
//!   against the key extent.
//!
//! The target side is deliberately minimal (one class, one key) so per-batch
//! time measures the checker. [`ConstrainedGen`] produces clean traffic —
//! fresh unique emails/codes, tier updates, profile inserts and removals —
//! that keeps every constraint satisfied, so an enforcing pipeline commits
//! every batch; [`ConstrainedGen::violating_batch`] produces a duplicate
//! email insert for the rejection paths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_lang::program::{Program, SchemaBinding};
use wol_model::{ClassName, Instance, KeyExpr, KeySpec, MutationBatch, Oid, Schema, Type, Value};

/// The registry source schema: users, profiles referencing users, accounts.
pub fn source_schema() -> Schema {
    Schema::new("registry")
        .with_class(
            "UserS",
            Type::record([
                ("email", Type::str()),
                ("name", Type::str()),
                ("tier", Type::int()),
            ]),
        )
        .with_class(
            "ProfileS",
            Type::record([("nick", Type::str()), ("user", Type::class("UserS"))]),
        )
        .with_class(
            "AccountS",
            Type::record([("code", Type::str()), ("region", Type::str())]),
        )
}

/// The minimal directory target schema: one class, keyed by email.
pub fn target_schema() -> Schema {
    Schema::new("directory").with_class(
        "UserD",
        Type::record([("email", Type::str()), ("name", Type::str())]),
    )
}

/// The transformation (`T1`, key `K1`) plus the three source constraints
/// (`S1` merge key, `S2` existence, `S3` Skolem key) described in the module
/// docs.
pub fn program_text() -> &'static str {
    "T1: X in UserD, X.email = E, X.name = N <= U in UserS, E = U.email, N = U.name;\n\
     K1: X = Mk_UserD(E) <= X in UserD, E = X.email;\n\
     S1: X = Y <= X in UserS, Y in UserS, X.email = Y.email;\n\
     S2: U in UserS <= P in ProfileS, U = P.user;\n\
     S3: A = Mk_AccountS(C) <= A in AccountS, C = A.code;"
}

/// The registry-to-directory program.
pub fn program() -> Program {
    let target_keys = KeySpec::new().with_key("UserD", KeyExpr::path("email"));
    Program::new(
        "registry_to_directory",
        vec![SchemaBinding::new(source_schema())],
        SchemaBinding::keyed(target_schema(), target_keys),
    )
    .with_text(program_text())
}

/// Parameters of the registry generator.
#[derive(Clone, Copy, Debug)]
pub struct ConstrainedParams {
    /// Number of users (each with a unique email).
    pub users: usize,
    /// Number of profiles (each referencing some user).
    pub profiles: usize,
    /// Number of accounts (each with a unique code).
    pub accounts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ConstrainedParams {
    fn default() -> Self {
        ConstrainedParams {
            users: 60,
            profiles: 90,
            accounts: 60,
            seed: 12,
        }
    }
}

impl ConstrainedParams {
    /// The E12 bench shape scaled `factor`×: extents large enough that a
    /// full-scan re-check is measurably more expensive than delta probes.
    pub fn scaled(factor: usize) -> Self {
        ConstrainedParams {
            users: 400 * factor,
            profiles: 600 * factor,
            accounts: 400 * factor,
            seed: 12,
        }
    }
}

const REGIONS: [&str; 4] = ["eu", "us", "ap", "sa"];

/// The `tier` value marking [`ConstrainedGen::violating_batch`]'s imposter
/// user, so consumers can find (and remove) it after committing the batch.
pub const IMPOSTER_TIER: i64 = 99;

/// Generate a registry instance satisfying `S1`–`S3`: emails and codes are
/// unique by construction, every profile references a generated user.
pub fn generate_source(params: &ConstrainedParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut instance = Instance::new("registry");
    let user_s = ClassName::new("UserS");
    let profile_s = ClassName::new("ProfileS");
    let account_s = ClassName::new("AccountS");
    let mut users: Vec<Oid> = Vec::with_capacity(params.users);
    for u in 0..params.users {
        users.push(instance.insert_fresh(
            &user_s,
            Value::record([
                ("email", Value::from(format!("user{u}@example.org"))),
                ("name", Value::from(format!("User {u}"))),
                ("tier", Value::int(rng.gen_range(0..3))),
            ]),
        ));
    }
    for p in 0..params.profiles {
        let user = users[rng.gen_range(0..users.len().max(1))].clone();
        instance.insert_fresh(
            &profile_s,
            Value::record([
                ("nick", Value::from(format!("nick-{p}"))),
                ("user", Value::Oid(user)),
            ]),
        );
    }
    for a in 0..params.accounts {
        instance.insert_fresh(
            &account_s,
            Value::record([
                ("code", Value::from(format!("AC-{a:06}"))),
                (
                    "region",
                    Value::from(REGIONS[rng.gen_range(0..REGIONS.len())]),
                ),
            ]),
        );
    }
    instance
}

/// Deterministic constraint-clean mutation traffic over a registry source.
///
/// Like [`crate::traffic::TrafficGen`], owns a shadow copy it advances batch
/// by batch so every generated operation is valid against the consumer's
/// pre-batch state — and additionally keeps `S1`–`S3` satisfied: inserted
/// emails and codes are globally fresh, removals only ever hit profiles
/// (users stay referenceable), and user updates change `tier`/`name` but
/// never `email`.
pub struct ConstrainedGen {
    shadow: Instance,
    rng: StdRng,
    fresh: u64,
    tag: String,
    user_s: ClassName,
    profile_s: ClassName,
    account_s: ClassName,
}

impl ConstrainedGen {
    /// Start a stream against (a shadow copy of) `source`. The same
    /// `(source, seed)` pair always yields the same batches.
    pub fn new(source: &Instance, seed: u64) -> ConstrainedGen {
        ConstrainedGen {
            shadow: source.clone(),
            rng: StdRng::seed_from_u64(seed),
            fresh: 0,
            tag: format!("{seed:x}"),
            user_s: ClassName::new("UserS"),
            profile_s: ClassName::new("ProfileS"),
            account_s: ClassName::new("AccountS"),
        }
    }

    /// The stream's view of the source after every batch produced so far.
    pub fn shadow(&self) -> &Instance {
        &self.shadow
    }

    /// Produce the next constraint-clean batch of up to `ops` operations and
    /// advance the shadow past it. Each victim is touched at most once per
    /// batch.
    pub fn next_batch(&mut self, ops: usize) -> MutationBatch {
        let mut batch = MutationBatch::new();
        let mut used: Vec<Oid> = Vec::new();
        for _ in 0..ops {
            batch = self.push_op(batch, &mut used);
        }
        self.shadow
            .apply_batch(&batch)
            .expect("generated batch applies to its own shadow");
        batch
    }

    /// A one-op batch violating `S1`: a second user object carrying a live
    /// user's email (and name, so the duplicate pair still agrees on every
    /// attribute the target projects — only the constraint is broken, not
    /// the transformation). The imposter is marked with `tier` 99. Does
    /// **not** advance the shadow — the batch is meant for an enforcing
    /// pipeline that rejects (reverts) it; a reporting consumer must
    /// reconcile its own copy.
    pub fn violating_batch(&mut self) -> MutationBatch {
        let victim = self
            .pick(&self.user_s.clone(), &[])
            .expect("source holds at least one user");
        let mut value = self.shadow.value(&victim).expect("picked live").clone();
        if let Value::Record(fields) = &mut value {
            fields.insert("tier".into(), Value::int(IMPOSTER_TIER));
        }
        MutationBatch::new().insert(self.user_s.clone(), value)
    }

    fn push_op(&mut self, batch: MutationBatch, used: &mut Vec<Oid>) -> MutationBatch {
        match self.rng.gen_range(0..10u32) {
            // Fresh user: globally unique email (S1-safe).
            0 | 1 => {
                let n = self.next_fresh();
                batch.insert(
                    self.user_s.clone(),
                    Value::record([
                        (
                            "email",
                            Value::from(format!("fresh-{}-{n}@example.org", self.tag)),
                        ),
                        ("name", Value::from(format!("Fresh {}-{n}", self.tag))),
                        ("tier", Value::int(self.rng.gen_range(0..3))),
                    ]),
                )
            }
            // Fresh account: globally unique code (S3-safe).
            2 | 3 => {
                let n = self.next_fresh();
                batch.insert(
                    self.account_s.clone(),
                    Value::record([
                        ("code", Value::from(format!("TC-{}-{n:06}", self.tag))),
                        (
                            "region",
                            Value::from(REGIONS[self.rng.gen_range(0..REGIONS.len())]),
                        ),
                    ]),
                )
            }
            // Fresh profile referencing a live user (S2-safe; referencing a
            // user touched earlier in this batch is fine — updates keep it
            // live).
            4 | 5 => match self.pick(&self.user_s.clone(), &[]) {
                Some(user) => {
                    let n = self.next_fresh();
                    batch.insert(
                        self.profile_s.clone(),
                        Value::record([
                            ("nick", Value::from(format!("tnick-{}-{n}", self.tag))),
                            ("user", Value::Oid(user)),
                        ]),
                    )
                }
                None => batch,
            },
            // Tier bump on a live user: email untouched, so S1 stays exact.
            6 | 7 => match self.pick(&self.user_s.clone(), used) {
                Some(victim) => {
                    let mut value = self.shadow.value(&victim).expect("picked live").clone();
                    if let Value::Record(fields) = &mut value {
                        fields.insert("tier".into(), Value::int(self.rng.gen_range(0..5)));
                    }
                    used.push(victim.clone());
                    batch.update(victim, value)
                }
                None => batch,
            },
            // Region move on a live account: code untouched (S3-safe).
            8 => match self.pick(&self.account_s.clone(), used) {
                Some(victim) => {
                    let mut value = self.shadow.value(&victim).expect("picked live").clone();
                    if let Value::Record(fields) = &mut value {
                        fields.insert(
                            "region".into(),
                            Value::from(REGIONS[self.rng.gen_range(0..REGIONS.len())]),
                        );
                    }
                    used.push(victim.clone());
                    batch.update(victim, value)
                }
                None => batch,
            },
            // Remove a profile: the only removal in the mix, so S2's
            // referenced users are never deleted.
            _ => match self.pick(&self.profile_s.clone(), used) {
                Some(victim) => {
                    used.push(victim.clone());
                    batch.remove(victim)
                }
                None => batch,
            },
        }
    }

    fn next_fresh(&mut self) -> u64 {
        self.fresh += 1;
        self.fresh
    }

    /// A deterministic pick from the class extent, excluding `used` victims.
    fn pick(&mut self, class: &ClassName, used: &[Oid]) -> Option<Oid> {
        let candidates: Vec<&Oid> = self
            .shadow
            .extent(class)
            .filter(|oid| !used.contains(oid))
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let index = self.rng.gen_range(0..candidates.len());
        Some(candidates[index].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{check_constraints, Databases};
    use wol_lang::Clause;

    fn source_constraint_clauses(program: &Program) -> Vec<Clause> {
        program
            .source_constraints()
            .into_iter()
            .map(|(_, c)| c.clone())
            .collect()
    }

    #[test]
    fn schemas_and_program_validate() {
        assert!(source_schema().validate().is_ok());
        assert!(target_schema().validate().is_ok());
        program().validate().unwrap();
        // The program carries exactly the three constraint families.
        assert_eq!(source_constraint_clauses(&program()).len(), 3);
    }

    #[test]
    fn generated_source_satisfies_every_constraint() {
        let source = generate_source(&ConstrainedParams::default());
        wol_model::validate::check_instance(&source, &source_schema()).unwrap();
        let clauses = source_constraint_clauses(&program());
        let refs = [&source];
        let dbs = Databases::new(&refs);
        let clause_refs: Vec<&Clause> = clauses.iter().collect();
        let violations = check_constraints(&clause_refs, &dbs).unwrap();
        assert!(violations.is_empty(), "seed data violates: {violations:?}");
    }

    #[test]
    fn clean_traffic_stays_clean() {
        let source = generate_source(&ConstrainedParams::default());
        let clauses = source_constraint_clauses(&program());
        let mut gen = ConstrainedGen::new(&source, 5);
        for _ in 0..25 {
            gen.next_batch(6);
        }
        let shadow = gen.shadow().clone();
        let refs = [&shadow];
        let dbs = Databases::new(&refs);
        let clause_refs: Vec<&Clause> = clauses.iter().collect();
        let violations = check_constraints(&clause_refs, &dbs).unwrap();
        assert!(
            violations.is_empty(),
            "clean stream violated: {violations:?}"
        );
    }

    #[test]
    fn violating_batch_trips_the_merge_key() {
        let source = generate_source(&ConstrainedParams::default());
        let clauses = source_constraint_clauses(&program());
        let mut gen = ConstrainedGen::new(&source, 5);
        let mut copy = source.clone();
        copy.apply_batch(&gen.violating_batch()).unwrap();
        let refs = [&copy];
        let dbs = Databases::new(&refs);
        let clause_refs: Vec<&Clause> = clauses.iter().collect();
        let violations = check_constraints(&clause_refs, &dbs).unwrap();
        assert!(
            violations.iter().any(|v| v.clause == "S1"),
            "expected an S1 violation, got: {violations:?}"
        );
    }

    #[test]
    fn streams_are_deterministic() {
        let source = generate_source(&ConstrainedParams::default());
        let mut a = ConstrainedGen::new(&source, 9);
        let mut b = ConstrainedGen::new(&source, 9);
        for _ in 0..15 {
            assert_eq!(a.next_batch(5).ops, b.next_batch(5).ops);
        }
        assert!(a.shadow().deep_eq_report(b.shadow()).is_none());
    }
}
