//! The Cities/States/Countries workload of Figures 1–3.
//!
//! Provides the exact schemas and clauses of the paper's running example plus
//! a scalable instance generator used by the execution benchmarks (E4, E5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_lang::program::{Program, SchemaBinding};
use wol_model::{ClassName, Instance, KeyExpr, KeySpec, Schema, Type, Value};

/// The Cities workload: schemas, key specifications and the WOL program text.
#[derive(Clone, Debug)]
pub struct CitiesWorkload {
    /// The US source schema of Figure 1.
    pub us_schema: Schema,
    /// The European source schema of Figure 2.
    pub euro_schema: Schema,
    /// The integrated target schema of Figure 3.
    pub target_schema: Schema,
    /// Surrogate keys for the European source (Example 2.3).
    pub euro_keys: KeySpec,
    /// Surrogate keys for the target.
    pub target_keys: KeySpec,
}

impl Default for CitiesWorkload {
    fn default() -> Self {
        Self::new()
    }
}

impl CitiesWorkload {
    /// Build the workload's schemas and keys.
    pub fn new() -> Self {
        let us_schema = Schema::new("us")
            .with_class(
                "CityA",
                Type::record([("name", Type::str()), ("state", Type::class("StateA"))]),
            )
            .with_class(
                "StateA",
                Type::record([("name", Type::str()), ("capital", Type::class("CityA"))]),
            );
        let euro_schema = Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            );
        let target_schema = Schema::new("target")
            .with_class(
                "CityT",
                Type::record([
                    ("name", Type::str()),
                    (
                        "place",
                        Type::variant([
                            ("state", Type::class("StateT")),
                            ("euro_city", Type::class("CountryT")),
                        ]),
                    ),
                ]),
            )
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                    ("capital", Type::optional(Type::class("CityT"))),
                ]),
            )
            .with_class(
                "StateT",
                Type::record([
                    ("name", Type::str()),
                    ("capital", Type::optional(Type::class("CityT"))),
                ]),
            );
        let euro_keys = KeySpec::new()
            .with_key("CountryE", KeyExpr::path("name"))
            .with_key(
                "CityE",
                KeyExpr::record([
                    ("name", KeyExpr::path("name")),
                    ("country_name", KeyExpr::path("country.name")),
                ]),
            );
        let target_keys = KeySpec::new()
            .with_key("CountryT", KeyExpr::path("name"))
            .with_key("StateT", KeyExpr::path("name"))
            .with_key("CityT", KeyExpr::path("name"));
        CitiesWorkload {
            us_schema,
            euro_schema,
            target_schema,
            euro_keys,
            target_keys,
        }
    }

    /// The WOL program text for the European side of the integration: clauses
    /// (T1)–(T3) and the key/source constraints (C2), (C3), (C8).
    pub fn euro_program_text() -> &'static str {
        "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency \
             <= E in CountryE;\n\
         T2: Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) \
             <= E in CityE, X in CountryT, X.name = E.country.name;\n\
         T3: X.capital = Y \
             <= X in CountryT, Y in CityT, Y.place = ins_euro_city(X), \
                E in CityE, E.name = Y.name, E.country.name = X.name, E.is_capital = true;\n\
         C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
         C2: X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;\n\
         C8: X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;"
    }

    /// The WOL program text for the US side: states and cities become
    /// `StateT`/`CityT` objects with the `state` variant of `place`.
    pub fn us_program_text() -> &'static str {
        "U1: S in StateT, S.name = A.name <= A in StateA;\n\
         U2: Y in CityT, Y.name = A.name, Y.place = ins_state(S) \
             <= A in CityA, S in StateT, S.name = A.state.name;\n\
         U3: S.capital = Y \
             <= S in StateT, Y in CityT, Y.place = ins_state(S), \
                A in StateA, A.name = S.name, A.capital.name = Y.name;\n\
         C3: Y = Mk_StateT(N) <= Y in StateT, N = Y.name;\n\
         C2: X = Mk_CityT(name = N, place = P) <= X in CityT, N = X.name, P = X.place;"
    }

    /// The source constraints (C4), (C5) on the European database: every
    /// country has exactly one capital city.
    pub fn euro_constraints_text() -> &'static str {
        "C4: Y in CityE, Y.country = X, Y.is_capital = true <= X in CountryE;\n\
         C5: X = Y <= X in CityE, Y in CityE, X.country = Y.country, \
             X.is_capital = true, Y.is_capital = true;"
    }

    /// Constraint (C1) on the US database: a state's capital belongs to it.
    pub fn us_constraints_text() -> &'static str {
        "C1: X.state = Y <= Y in StateA, X = Y.capital;"
    }

    /// The transformation program from the European source to the target.
    pub fn euro_program(&self) -> Program {
        Program::new(
            "euro_to_target",
            vec![SchemaBinding::keyed(
                self.euro_schema.clone(),
                self.euro_keys.clone(),
            )],
            SchemaBinding::keyed(self.target_schema.clone(), self.target_keys.clone()),
        )
        .with_text(Self::euro_program_text())
    }

    /// The transformation program from the US source to the target.
    pub fn us_program(&self) -> Program {
        Program::new(
            "us_to_target",
            vec![SchemaBinding::new(self.us_schema.clone())],
            SchemaBinding::keyed(self.target_schema.clone(), self.target_keys.clone()),
        )
        .with_text(Self::us_program_text())
    }

    /// The small European instance of Example 2.2.
    pub fn small_euro_instance(&self) -> Instance {
        generate_euro(2, 2, 7)
    }

    /// The small US instance of Figure 1 (two states, two cities).
    pub fn small_us_instance(&self) -> Instance {
        let mut inst = Instance::new("us");
        let city_class = ClassName::new("CityA");
        let state_class = ClassName::new("StateA");
        let pa = inst.insert_fresh(&state_class, Value::Record(Default::default()));
        let ga = inst.insert_fresh(&state_class, Value::Record(Default::default()));
        let phl = inst.insert_fresh(
            &city_class,
            Value::record([
                ("name", Value::str("Harrisburg")),
                ("state", Value::oid(pa.clone())),
            ]),
        );
        let atl = inst.insert_fresh(
            &city_class,
            Value::record([
                ("name", Value::str("Atlanta")),
                ("state", Value::oid(ga.clone())),
            ]),
        );
        inst.update(
            &pa,
            Value::record([
                ("name", Value::str("Pennsylvania")),
                ("capital", Value::oid(phl)),
            ]),
        )
        .expect("state exists");
        inst.update(
            &ga,
            Value::record([
                ("name", Value::str("Georgia")),
                ("capital", Value::oid(atl)),
            ]),
        )
        .expect("state exists");
        inst
    }
}

/// Generate a European Cities/Countries instance with `countries` countries
/// and `cities_per_country` cities each (the first city of each country is its
/// capital), using `seed` for reproducible language/currency noise.
pub fn generate_euro(countries: usize, cities_per_country: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = Instance::new("euro");
    let country_class = ClassName::new("CountryE");
    let city_class = ClassName::new("CityE");
    let languages = ["English", "French", "German", "Spanish", "Italian", "Dutch"];
    let currencies = ["sterling", "franc", "mark", "peseta", "lira", "guilder"];
    for c in 0..countries {
        let language = languages[rng.gen_range(0..languages.len())];
        let currency = currencies[rng.gen_range(0..currencies.len())];
        let country = inst.insert_fresh(
            &country_class,
            Value::record([
                ("name", Value::str(format!("Country{c}"))),
                ("language", Value::str(language)),
                ("currency", Value::str(currency)),
            ]),
        );
        for k in 0..cities_per_country {
            inst.insert_fresh(
                &city_class,
                Value::record([
                    ("name", Value::str(format!("City{c}_{k}"))),
                    ("is_capital", Value::bool(k == 0)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_engine::{execute, naive_transform, normalize, NormalizeOptions};

    #[test]
    fn schemas_validate_and_are_recursive_where_expected() {
        let w = CitiesWorkload::new();
        assert!(w.us_schema.validate().is_ok());
        assert!(w.euro_schema.validate().is_ok());
        assert!(w.target_schema.validate().is_ok());
        // Figure 1 is mutually recursive (city -> state -> capital city).
        assert!(w.us_schema.is_recursive());
        assert!(!w.euro_schema.is_recursive());
    }

    #[test]
    fn programs_validate() {
        let w = CitiesWorkload::new();
        w.euro_program().validate().unwrap();
        w.us_program().validate().unwrap();
    }

    #[test]
    fn generated_instances_satisfy_schema_and_keys() {
        let w = CitiesWorkload::new();
        let inst = generate_euro(5, 3, 1);
        wol_model::validate::check_keyed_instance(&inst, &w.euro_schema, &w.euro_keys).unwrap();
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 5);
        assert_eq!(inst.extent_size(&ClassName::new("CityE")), 15);
        // Deterministic for a fixed seed.
        assert_eq!(generate_euro(5, 3, 1), generate_euro(5, 3, 1));
        assert_ne!(generate_euro(5, 3, 1), generate_euro(5, 3, 2));
    }

    #[test]
    fn euro_constraints_hold_on_generated_data() {
        let constraints = wol_lang::parse_program(CitiesWorkload::euro_constraints_text()).unwrap();
        let inst = generate_euro(4, 3, 3);
        let refs = [&inst];
        let dbs = wol_engine::Databases::new(&refs);
        let clause_refs: Vec<&wol_lang::Clause> = constraints.iter().collect();
        let violations = wol_engine::check_constraints(&clause_refs, &dbs).unwrap();
        assert!(violations.is_empty());
    }

    #[test]
    fn end_to_end_euro_transformation() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let source = generate_euro(3, 2, 11);
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 3);
        assert_eq!(target.extent_size(&ClassName::new("CityT")), 6);
        // Every country has its capital filled in (the generator marks the
        // first city of each country as capital).
        for (_, value) in target.objects(&ClassName::new("CountryT")) {
            assert!(value.project("capital").is_some());
        }
        // Naive evaluation agrees on extent sizes.
        let naive = naive_transform(&program, &[&source][..], "target").unwrap();
        assert_eq!(
            naive.extent_size(&ClassName::new("CityT")),
            target.extent_size(&ClassName::new("CityT"))
        );
    }

    #[test]
    fn us_side_transformation_runs() {
        let w = CitiesWorkload::new();
        let program = w.us_program();
        let source = w.small_us_instance();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let target = execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(target.extent_size(&ClassName::new("StateT")), 2);
        assert_eq!(target.extent_size(&ClassName::new("CityT")), 2);
        let pa = target
            .find_by_field(
                &ClassName::new("StateT"),
                "name",
                &Value::str("Pennsylvania"),
            )
            .unwrap();
        assert!(target.value(pa).unwrap().project("capital").is_some());
    }

    #[test]
    fn us_constraint_c1_holds_on_small_instance() {
        let w = CitiesWorkload::new();
        let inst = w.small_us_instance();
        let clauses = wol_lang::parse_program(CitiesWorkload::us_constraints_text()).unwrap();
        let refs = [&inst];
        let dbs = wol_engine::Databases::new(&refs);
        let clause_refs: Vec<&wol_lang::Clause> = clauses.iter().collect();
        assert!(wol_engine::check_constraints(&clause_refs, &dbs)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn small_euro_instance_has_example_shape() {
        let w = CitiesWorkload::new();
        let inst = w.small_euro_instance();
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 2);
        assert_eq!(inst.extent_size(&ClassName::new("CityE")), 4);
    }
}
