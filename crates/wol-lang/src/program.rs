//! Transformation programs.
//!
//! "A transformation program consists of a finite set of transformation
//! clauses and constraints for some source and target database schemas"
//! (Section 3.2). A [`Program`] packages the clauses together with the source
//! schema(s), the target schema and their key specifications, classifies each
//! clause (source constraint, target constraint, or transformation clause),
//! and runs the well-formedness checks of [`crate::typecheck`] and
//! [`crate::range`] over every clause.

use std::collections::BTreeSet;

use wol_model::{ClassName, KeySpec, Schema};

use crate::ast::{Clause, ClauseId};
use crate::error::LangError;
use crate::parser::parse_program;
use crate::range::check_range_restricted;
use crate::typecheck::check_clause_types;
use crate::Result;

/// Whether a clause is a constraint or a transformation clause.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClauseKind {
    /// The clause constrains one database.
    Constraint,
    /// The clause relates source and target databases.
    Transformation,
}

/// The finer classification used by the Morphase pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClauseRole {
    /// A constraint mentioning only source classes.
    SourceConstraint,
    /// A constraint mentioning only target classes (key constraints on the
    /// target play a central part in normalisation).
    TargetConstraint,
    /// A clause mentioning target classes in its head and (possibly) both
    /// source and target classes in its body: a transformation clause.
    Transformation,
}

impl ClauseRole {
    /// Collapse to the two-way classification of the paper.
    pub fn kind(self) -> ClauseKind {
        match self {
            ClauseRole::SourceConstraint | ClauseRole::TargetConstraint => ClauseKind::Constraint,
            ClauseRole::Transformation => ClauseKind::Transformation,
        }
    }
}

/// A schema together with its (possibly empty) key specification.
#[derive(Clone, Debug, PartialEq)]
pub struct SchemaBinding {
    /// The schema.
    pub schema: Schema,
    /// Surrogate keys for (some of) the schema's classes.
    pub keys: KeySpec,
}

impl SchemaBinding {
    /// A binding with no keys.
    pub fn new(schema: Schema) -> Self {
        SchemaBinding {
            schema,
            keys: KeySpec::new(),
        }
    }

    /// A binding with keys.
    pub fn keyed(schema: Schema, keys: KeySpec) -> Self {
        SchemaBinding { schema, keys }
    }
}

/// A WOL transformation program: source schemas, a target schema, and clauses.
#[derive(Clone, Debug)]
pub struct Program {
    /// Human-readable name of the program.
    pub name: String,
    /// The source database schemas the program reads from.
    pub sources: Vec<SchemaBinding>,
    /// The target database schema the program populates.
    pub target: SchemaBinding,
    /// The clauses (constraints and transformation clauses).
    pub clauses: Vec<Clause>,
}

impl Program {
    /// Create an empty program.
    pub fn new(
        name: impl Into<String>,
        sources: Vec<SchemaBinding>,
        target: SchemaBinding,
    ) -> Self {
        Program {
            name: name.into(),
            sources,
            target,
            clauses: Vec::new(),
        }
    }

    /// Append a clause.
    pub fn add_clause(&mut self, clause: Clause) {
        self.clauses.push(clause);
    }

    /// Append clauses parsed from program text in the concrete syntax.
    pub fn add_text(&mut self, text: &str) -> Result<()> {
        let clauses = parse_program(text)?;
        self.clauses.extend(clauses);
        Ok(())
    }

    /// Builder-style variant of [`add_text`](Self::add_text) that panics on
    /// parse errors; convenient for statically known programs.
    pub fn with_text(mut self, text: &str) -> Self {
        self.add_text(text).expect("program text must parse");
        self
    }

    /// All source class names (across all source schemas).
    pub fn source_classes(&self) -> BTreeSet<ClassName> {
        self.sources
            .iter()
            .flat_map(|b| b.schema.class_names())
            .collect()
    }

    /// All target class names.
    pub fn target_classes(&self) -> BTreeSet<ClassName> {
        self.target.schema.class_names().into_iter().collect()
    }

    /// The schemas visible to the program's clauses (sources then target).
    pub fn schemas(&self) -> Vec<&Schema> {
        let mut out: Vec<&Schema> = self.sources.iter().map(|b| &b.schema).collect();
        out.push(&self.target.schema);
        out
    }

    /// Classify a clause into source constraint / target constraint /
    /// transformation clause, based on which schemas its classes come from.
    ///
    /// The head of a transformation clause does not always mention a target
    /// class syntactically (the paper's clause (T3) has head `X.capital = Y`
    /// with both variables bound in the body), so classification also type
    /// checks the clause and looks at the classes of the head's variables.
    pub fn classify(&self, clause: &Clause) -> ClauseRole {
        let target_classes = self.target_classes();
        let mut head_targets = clause
            .head_classes()
            .iter()
            .any(|c| target_classes.contains(c));
        if !head_targets {
            if let Ok(env) = check_clause_types(clause, &self.schemas()) {
                let mut head_vars = std::collections::BTreeSet::new();
                for atom in &clause.head {
                    atom.variables(&mut head_vars);
                }
                head_targets = head_vars.iter().any(|v| {
                    matches!(env.get(v), Some(wol_model::Type::Class(c)) if target_classes.contains(c))
                });
            }
        }
        let mentions_source = clause
            .mentioned_classes()
            .iter()
            .any(|c| !target_classes.contains(c));
        let mentions_target = clause
            .mentioned_classes()
            .iter()
            .any(|c| target_classes.contains(c))
            || head_targets;
        if head_targets && mentions_source {
            ClauseRole::Transformation
        } else if mentions_target && !mentions_source {
            ClauseRole::TargetConstraint
        } else if mentions_source && !mentions_target {
            ClauseRole::SourceConstraint
        } else if head_targets {
            // Mentions only target classes but has a head over the target:
            // still a constraint on the target database.
            ClauseRole::TargetConstraint
        } else {
            ClauseRole::SourceConstraint
        }
    }

    /// The transformation clauses, with their identifiers.
    pub fn transformation_clauses(&self) -> Vec<(ClauseId, &Clause)> {
        self.enumerate()
            .filter(|(_, c)| self.classify(c) == ClauseRole::Transformation)
            .collect()
    }

    /// The source constraints, with their identifiers.
    pub fn source_constraints(&self) -> Vec<(ClauseId, &Clause)> {
        self.enumerate()
            .filter(|(_, c)| self.classify(c) == ClauseRole::SourceConstraint)
            .collect()
    }

    /// The target constraints, with their identifiers.
    pub fn target_constraints(&self) -> Vec<(ClauseId, &Clause)> {
        self.enumerate()
            .filter(|(_, c)| self.classify(c) == ClauseRole::TargetConstraint)
            .collect()
    }

    fn enumerate(&self) -> impl Iterator<Item = (ClauseId, &Clause)> {
        self.clauses.iter().enumerate().map(|(i, c)| {
            let id = match &c.label {
                Some(l) => ClauseId::labelled(i, l.clone()),
                None => ClauseId::new(i),
            };
            (id, c)
        })
    }

    /// Validate the program: schemas must be valid, every clause must be
    /// well-typed against the program's schemas and range-restricted, and
    /// every class mentioned must belong to some schema.
    pub fn validate(&self) -> Result<()> {
        for binding in self.sources.iter().chain(std::iter::once(&self.target)) {
            binding.schema.validate().map_err(LangError::from)?;
        }
        let schemas = self.schemas();
        let known: BTreeSet<ClassName> = schemas.iter().flat_map(|s| s.class_names()).collect();
        for (id, clause) in self.enumerate() {
            for class in clause.mentioned_classes() {
                if !known.contains(&class) {
                    return Err(LangError::Schema(format!(
                        "clause {} mentions class `{class}` which is not declared in any schema",
                        id.describe()
                    )));
                }
            }
            check_clause_types(clause, &schemas).map_err(|e| match e {
                LangError::Type { message, .. } => LangError::Type {
                    clause: id.describe(),
                    message,
                },
                other => other,
            })?;
            check_range_restricted(clause).map_err(|e| match e {
                LangError::RangeRestriction { unbound, .. } => LangError::RangeRestriction {
                    clause: id.describe(),
                    unbound,
                },
                other => other,
            })?;
        }
        Ok(())
    }

    /// Simple size statistics used by the benchmark harness.
    pub fn stats(&self) -> ProgramStats {
        let transformation = self
            .clauses
            .iter()
            .filter(|c| self.classify(c) == ClauseRole::Transformation)
            .count();
        ProgramStats {
            clauses: self.clauses.len(),
            transformation_clauses: transformation,
            constraints: self.clauses.len() - transformation,
            atoms: self.clauses.iter().map(Clause::len).sum(),
            term_nodes: self.clauses.iter().map(Clause::size).sum(),
        }
    }
}

/// Size statistics of a program.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProgramStats {
    /// Number of clauses.
    pub clauses: usize,
    /// Number of transformation clauses.
    pub transformation_clauses: usize,
    /// Number of constraint clauses.
    pub constraints: usize,
    /// Total number of atoms.
    pub atoms: usize,
    /// Total number of term nodes.
    pub term_nodes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_model::{KeyExpr, Type};

    fn euro_schema() -> Schema {
        Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            )
    }

    fn target_schema() -> Schema {
        Schema::new("target")
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            )
            .with_class(
                "CityT",
                Type::record([("name", Type::str()), ("country", Type::class("CountryT"))]),
            )
    }

    fn sample_program() -> Program {
        Program::new(
            "euro_to_target",
            vec![SchemaBinding::new(euro_schema())],
            SchemaBinding::keyed(
                target_schema(),
                KeySpec::new().with_key("CountryT", KeyExpr::path("name")),
            ),
        )
        .with_text(
            "T1: X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;\n\
             C8: X = Y <= X in CountryE, Y in CountryE, X.name = Y.name;\n\
             T2: Y in CityT, Y.name = E.name, Y.country = X <= E in CityE, X in CountryT, X.name = E.country.name;",
        )
    }

    #[test]
    fn classification_matches_paper_roles() {
        let p = sample_program();
        let roles: Vec<ClauseRole> = p.clauses.iter().map(|c| p.classify(c)).collect();
        assert_eq!(
            roles,
            vec![
                ClauseRole::Transformation,
                ClauseRole::TargetConstraint,
                ClauseRole::SourceConstraint,
                ClauseRole::Transformation,
            ]
        );
        assert_eq!(p.transformation_clauses().len(), 2);
        assert_eq!(p.source_constraints().len(), 1);
        assert_eq!(p.target_constraints().len(), 1);
        assert_eq!(
            ClauseRole::Transformation.kind(),
            ClauseKind::Transformation
        );
        assert_eq!(ClauseRole::SourceConstraint.kind(), ClauseKind::Constraint);
    }

    #[test]
    fn program_validates() {
        assert!(sample_program().validate().is_ok());
    }

    #[test]
    fn validation_reports_unknown_class_with_clause_id() {
        let mut p = sample_program();
        p.add_text("X in Nowhere, X.name = E.name <= E in CountryE;")
            .unwrap();
        let err = p.validate().unwrap_err();
        assert!(err.to_string().contains("Nowhere"));
    }

    #[test]
    fn validation_reports_ill_typed_clause() {
        let mut p = sample_program();
        p.add_text("bad: X in CountryT, X.name = E.is_capital <= E in CityE;")
            .unwrap();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, LangError::Type { .. }));
        assert!(err.to_string().contains("bad"));
    }

    #[test]
    fn validation_reports_unrestricted_clause() {
        let mut p = sample_program();
        p.add_text("loose: X in CountryT, N != X.name <= E in CountryE;")
            .unwrap();
        let err = p.validate().unwrap_err();
        assert!(matches!(err, LangError::RangeRestriction { .. }));
    }

    #[test]
    fn stats_count_clauses_and_atoms() {
        let p = sample_program();
        let stats = p.stats();
        assert_eq!(stats.clauses, 4);
        assert_eq!(stats.transformation_clauses, 2);
        assert_eq!(stats.constraints, 2);
        assert!(stats.atoms >= 12);
        assert!(stats.term_nodes > stats.atoms);
    }

    #[test]
    fn source_and_target_classes() {
        let p = sample_program();
        assert!(p.source_classes().contains(&ClassName::new("CityE")));
        assert!(p.target_classes().contains(&ClassName::new("CountryT")));
        assert_eq!(p.schemas().len(), 2);
    }

    #[test]
    fn invalid_schema_rejected() {
        let bad = Schema::new("bad").with_class("A", Type::record([("x", Type::class("Missing"))]));
        let p = Program::new(
            "p",
            vec![SchemaBinding::new(bad)],
            SchemaBinding::new(target_schema()),
        );
        assert!(matches!(p.validate().unwrap_err(), LangError::Schema(_)));
    }
}
