//! Performance regression tests for the CPL join-graph planner (ISSUE 2).
//!
//! The E6 genome pipeline used to materialise ~23M-row cross products (the
//! translator emitted scans as raw products, and the rule-based rewriter
//! could not see join equalities through `Map`-defined variables). The
//! planner must keep that workload index-probed and product-free; these tests
//! guard the speed-up and are also run in release mode by CI.

use std::time::Duration;

use wol_repro::cpl::CostModel;
use wol_repro::morphase::{Morphase, MorphaseRun, PipelineOptions};
use wol_repro::wol_engine::instances_equivalent;
use wol_repro::wol_model::ClassName;
use wol_repro::workloads::genome::{self, GenomeParams};
use wol_repro::workloads::skewed::{self, SkewedParams};

/// The planner-vs-raw wall-clock regression: on a moderate genome workload
/// the planned execute phase must be at least 5x faster than the raw
/// (unoptimised) plans, while producing an equivalent target.
#[test]
fn e6_planned_execution_is_at_least_5x_faster_than_raw_plans() {
    let params = GenomeParams {
        clones: 30,
        markers: 90,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let program = genome::program();

    let planned = Morphase::new()
        .transform(&program, &[&source][..])
        .expect("planned run succeeds");
    let raw = Morphase::with_options(PipelineOptions {
        optimize_plans: false,
        ..PipelineOptions::default()
    })
    .transform(&program, &[&source][..])
    .expect("raw run succeeds");

    assert!(
        instances_equivalent(&planned.target, &raw.target, 2),
        "planned and raw targets diverge"
    );
    // The raw plans materialise the marker x marker (x clone) products; the
    // planner must stay well below them.
    assert!(
        raw.exec.max_intermediate_rows >= 10 * planned.exec.max_intermediate_rows.max(1),
        "expected >=10x fewer peak rows, got raw={} planned={}",
        raw.exec.max_intermediate_rows,
        planned.exec.max_intermediate_rows
    );
    assert!(
        planned.exec.index_probes > 0,
        "planner lost the index probes"
    );
    let speedup =
        raw.timings.execute.as_secs_f64() / planned.timings.execute.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 5.0,
        "expected a >=5x execute speed-up, got {speedup:.1}x (raw {:?}, planned {:?})",
        raw.timings.execute,
        planned.timings.execute
    );
}

/// Run the E7 skewed pipeline with the given cost model.
fn run_skewed(params: &SkewedParams, cost_model: CostModel) -> MorphaseRun {
    let source = skewed::generate_source(params);
    let options = PipelineOptions {
        cost_model,
        ..PipelineOptions::default()
    };
    Morphase::with_options(options)
        .transform(&skewed::program(), &[&source][..])
        .expect("skewed pipeline runs")
}

/// The E7 guard at reduced size: on the zipfian workload the histogram-fed
/// planner must beat the flat-`1/ndv` planner by >=3x in execute wall-clock
/// (and well beyond that in peak intermediate rows), while producing an
/// equivalent target — the flat model provably misorders the triangle join.
#[test]
fn e7_histogram_planning_beats_flat_ndv_by_3x_on_skew() {
    let params = SkewedParams::reduced();
    let hist = run_skewed(&params, CostModel::Histogram);
    let flat = run_skewed(&params, CostModel::FlatNdv);

    assert!(
        instances_equivalent(&hist.target, &flat.target, 2),
        "histogram and flat targets diverge"
    );
    assert!(
        flat.exec.max_intermediate_rows >= 3 * hist.exec.max_intermediate_rows.max(1),
        "expected >=3x fewer peak rows, got flat={} histogram={}",
        flat.exec.max_intermediate_rows,
        hist.exec.max_intermediate_rows
    );
    let speedup = flat.timings.execute.as_secs_f64() / hist.timings.execute.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 3.0,
        "expected a >=3x execute speed-up, got {speedup:.1}x (flat {:?}, histogram {:?})",
        flat.timings.execute,
        hist.timings.execute
    );
}

/// The full-size E7 acceptance check: the histogram-fed plan keeps the peak
/// operator output at the final-result scale (the flat plan materialises the
/// `Σ m_c · p_c` marker-probe blow-up, >=3x more), runs on index probes, and
/// the probe-side cache absorbs the repeated hot keys.
#[test]
fn e7_full_size_skew_peak_rows_are_3x_below_flat_ndv() {
    let params = SkewedParams::full();
    let hist = run_skewed(&params, CostModel::Histogram);
    let flat = run_skewed(&params, CostModel::FlatNdv);

    assert!(
        instances_equivalent(&hist.target, &flat.target, 2),
        "histogram and flat targets diverge"
    );
    assert!(
        hist.exec.max_intermediate_rows < 50_000,
        "histogram plan peak operator output blew up: {} rows",
        hist.exec.max_intermediate_rows
    );
    assert!(
        flat.exec.max_intermediate_rows >= 3 * hist.exec.max_intermediate_rows.max(1),
        "expected >=3x fewer peak rows, got flat={} histogram={}",
        flat.exec.max_intermediate_rows,
        hist.exec.max_intermediate_rows
    );
    assert!(
        hist.exec.index_probes > 0,
        "the skewed join no longer uses index probes"
    );
    assert!(
        hist.exec.probe_cache_hits > 0,
        "the probe-side cache never fired on repeated hot keys"
    );
    // The histogram estimates stay honest: every join's estimate-vs-actual
    // error is within 2x, while the flat model is off by an order of
    // magnitude on the skewed join.
    assert!(!hist.join_stats.is_empty());
    for join in &hist.join_stats {
        assert!(
            join.error_ratio() < 2.0,
            "histogram estimate drifted: {join:?}"
        );
    }
    assert!(
        flat.join_stats.iter().any(|j| j.error_ratio() > 10.0),
        "the flat model unexpectedly estimated the skewed join well: {:?}",
        flat.join_stats
    );
}

/// The full-size E6 acceptance check (100 clones x 300 markers): the genome
/// join runs on index probes, the ~23M-row cross product is gone (peak
/// operator output far below 1M rows), and the execute phase — ~20-60s
/// before the planner — finishes promptly even in debug builds.
#[test]
fn e6_full_size_genome_pipeline_has_no_cross_products() {
    let params = GenomeParams {
        clones: 100,
        markers: 300,
        density: 0.6,
        seed: 22,
    };
    let source = genome::generate_source(&params);
    let run = Morphase::new()
        .transform(&genome::program(), &[&source][..])
        .expect("genome pipeline runs");

    assert_eq!(run.target.extent_size(&ClassName::new("CloneD")), 100);
    assert_eq!(run.target.extent_size(&ClassName::new("MarkerD")), 300);
    assert!(
        run.exec.max_intermediate_rows < 1_000_000,
        "cross product is back: peak operator output {} rows",
        run.exec.max_intermediate_rows
    );
    assert!(
        run.exec.index_probes > 0,
        "the genome join no longer uses index probes"
    );
    // No plan in the compiled program contains a product operator.
    for plan in &run.plans {
        assert!(
            !plan.contains("CrossJoin") && !plan.contains("NestedLoopJoin"),
            "a product survived planning:\n{plan}"
        );
    }
    // Generous absolute bound (debug builds included): the pre-planner
    // execute phase took tens of seconds in release.
    assert!(
        run.timings.execute < Duration::from_secs(10),
        "execute took {:?}",
        run.timings.execute
    );
}
