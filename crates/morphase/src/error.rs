//! Errors raised by the Morphase pipeline.

use std::fmt;

/// Errors from any stage of the Morphase pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MorphaseError {
    /// The input program failed validation.
    Language(String),
    /// Normalisation failed (recursion, incompleteness, ...).
    Engine(String),
    /// Translation of a normal clause to CPL failed.
    Compilation(String),
    /// CPL execution failed.
    Execution(String),
    /// The produced target violates its schema, keys or constraints.
    Verification(String),
    /// An error bubbled up from the data model.
    Model(String),
    /// The durable-run journal failed (I/O fault, corrupt journal files).
    Durability(String),
}

impl fmt::Display for MorphaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MorphaseError::Language(m) => write!(f, "language error: {m}"),
            MorphaseError::Engine(m) => write!(f, "engine error: {m}"),
            MorphaseError::Compilation(m) => write!(f, "compilation error: {m}"),
            MorphaseError::Execution(m) => write!(f, "execution error: {m}"),
            MorphaseError::Verification(m) => write!(f, "verification error: {m}"),
            MorphaseError::Model(m) => write!(f, "data model error: {m}"),
            MorphaseError::Durability(m) => write!(f, "durability error: {m}"),
        }
    }
}

impl std::error::Error for MorphaseError {}

impl From<wol_lang::LangError> for MorphaseError {
    fn from(e: wol_lang::LangError) -> Self {
        MorphaseError::Language(e.to_string())
    }
}

impl From<wol_engine::EngineError> for MorphaseError {
    fn from(e: wol_engine::EngineError) -> Self {
        MorphaseError::Engine(e.to_string())
    }
}

impl From<cpl::CplError> for MorphaseError {
    fn from(e: cpl::CplError) -> Self {
        MorphaseError::Execution(e.to_string())
    }
}

impl From<wol_model::ModelError> for MorphaseError {
    fn from(e: wol_model::ModelError) -> Self {
        MorphaseError::Model(e.to_string())
    }
}

impl From<storage::StorageError> for MorphaseError {
    fn from(e: storage::StorageError) -> Self {
        MorphaseError::Durability(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(MorphaseError::Verification("v".into())
            .to_string()
            .contains("verification"));
        let e: MorphaseError = wol_lang::LangError::Invalid("x".into()).into();
        assert!(matches!(e, MorphaseError::Language(_)));
        let e: MorphaseError = wol_engine::EngineError::Invalid("x".into()).into();
        assert!(matches!(e, MorphaseError::Engine(_)));
        let e: MorphaseError = cpl::CplError::BadPlan("x".into()).into();
        assert!(matches!(e, MorphaseError::Execution(_)));
        let e: MorphaseError = wol_model::ModelError::Invalid("x".into()).into();
        assert!(matches!(e, MorphaseError::Model(_)));
        let e: MorphaseError =
            storage::StorageError::io("j/pipeline.wal", std::io::Error::other("boom")).into();
        assert!(matches!(e, MorphaseError::Durability(_)));
        assert!(e.to_string().contains("durability"));
    }
}
