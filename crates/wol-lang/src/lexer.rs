//! Lexer for the WOL concrete syntax.
//!
//! The syntax is line-oriented only in that `//` comments run to the end of
//! the line; whitespace is otherwise insignificant. Identifiers may contain
//! ASCII letters, digits and underscores and must start with a letter or an
//! underscore.

use crate::error::LangError;
use crate::token::{Spanned, Token};
use crate::Result;

/// Tokenise the input, returning the tokens with their byte offsets.
/// A trailing [`Token::Eof`] is always appended.
pub fn lex(input: &str) -> Result<Vec<Spanned>> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;

    while i < bytes.len() {
        let c = bytes[i] as char;
        // Skip whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Skip `//` comments.
        if c == '/' && bytes.get(i + 1) == Some(&b'/') {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        let start = i;
        match c {
            ',' => {
                tokens.push(Spanned {
                    token: Token::Comma,
                    offset: start,
                });
                i += 1;
            }
            ';' => {
                tokens.push(Spanned {
                    token: Token::Semicolon,
                    offset: start,
                });
                i += 1;
            }
            '.' => {
                tokens.push(Spanned {
                    token: Token::Dot,
                    offset: start,
                });
                i += 1;
            }
            ':' => {
                tokens.push(Spanned {
                    token: Token::Colon,
                    offset: start,
                });
                i += 1;
            }
            '(' => {
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset: start,
                });
                i += 1;
            }
            ')' => {
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset: start,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Neq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    return Err(LangError::Lex {
                        offset: start,
                        message: "expected `!=`".to_string(),
                    });
                }
            }
            '=' => {
                if bytes.get(i + 1) == Some(&b'<') {
                    tokens.push(Spanned {
                        token: Token::Leq,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Eq,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Spanned {
                        token: Token::Arrow,
                        offset: start,
                    });
                    i += 2;
                } else {
                    tokens.push(Spanned {
                        token: Token::Lt,
                        offset: start,
                    });
                    i += 1;
                }
            }
            '"' => {
                let mut out = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => {
                            return Err(LangError::Lex {
                                offset: start,
                                message: "unterminated string literal".to_string(),
                            })
                        }
                        Some(b'"') => {
                            i += 1;
                            break;
                        }
                        Some(b'\\') => {
                            // Simple escapes: \" \\ \n \t
                            match bytes.get(i + 1) {
                                Some(b'"') => out.push('"'),
                                Some(b'\\') => out.push('\\'),
                                Some(b'n') => out.push('\n'),
                                Some(b't') => out.push('\t'),
                                other => {
                                    return Err(LangError::Lex {
                                        offset: i,
                                        message: format!("unsupported escape sequence: {other:?}"),
                                    })
                                }
                            }
                            i += 2;
                        }
                        Some(&b) => {
                            out.push(b as char);
                            i += 1;
                        }
                    }
                }
                tokens.push(Spanned {
                    token: Token::Str(out),
                    offset: start,
                });
            }
            c if c.is_ascii_digit()
                || (c == '-'
                    && bytes
                        .get(i + 1)
                        .map(|b| (*b as char).is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let mut j = i + 1;
                while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                    j += 1;
                }
                // A real literal: digits '.' digits (the '.' must be followed
                // by a digit, otherwise it is a projection dot).
                let is_real = j < bytes.len()
                    && bytes[j] == b'.'
                    && j + 1 < bytes.len()
                    && (bytes[j + 1] as char).is_ascii_digit();
                if is_real {
                    j += 1;
                    while j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        j += 1;
                    }
                    let text = &input[i..j];
                    let value: f64 = text.parse().map_err(|_| LangError::Lex {
                        offset: start,
                        message: format!("invalid real literal `{text}`"),
                    })?;
                    tokens.push(Spanned {
                        token: Token::Real(value),
                        offset: start,
                    });
                } else {
                    let text = &input[i..j];
                    let value: i64 = text.parse().map_err(|_| LangError::Lex {
                        offset: start,
                        message: format!("invalid integer literal `{text}`"),
                    })?;
                    tokens.push(Spanned {
                        token: Token::Int(value),
                        offset: start,
                    });
                }
                i = j;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i + 1;
                while j < bytes.len() {
                    let cj = bytes[j] as char;
                    if cj.is_ascii_alphanumeric() || cj == '_' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text = &input[i..j];
                let token = match text {
                    "in" => Token::KwIn,
                    "member" => Token::KwMember,
                    "true" | "True" => Token::KwTrue,
                    "false" | "False" => Token::KwFalse,
                    _ => Token::Ident(text.to_string()),
                };
                tokens.push(Spanned {
                    token,
                    offset: start,
                });
                i = j;
            }
            other => {
                return Err(LangError::Lex {
                    offset: start,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    tokens.push(Spanned {
        token: Token::Eof,
        offset: input.len(),
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<Token> {
        lex(input).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lex_clause_t1_fragment() {
        let toks = kinds("X in CountryT, X.name = E.name <= E in CountryE;");
        assert_eq!(
            toks,
            vec![
                Token::Ident("X".into()),
                Token::KwIn,
                Token::Ident("CountryT".into()),
                Token::Comma,
                Token::Ident("X".into()),
                Token::Dot,
                Token::Ident("name".into()),
                Token::Eq,
                Token::Ident("E".into()),
                Token::Dot,
                Token::Ident("name".into()),
                Token::Arrow,
                Token::Ident("E".into()),
                Token::KwIn,
                Token::Ident("CountryE".into()),
                Token::Semicolon,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn lex_literals() {
        assert_eq!(
            kinds(r#""US-Dollars" 42 -7 3.5 true False"#),
            vec![
                Token::Str("US-Dollars".into()),
                Token::Int(42),
                Token::Int(-7),
                Token::Real(3.5),
                Token::KwTrue,
                Token::KwFalse,
                Token::Eof
            ]
        );
    }

    #[test]
    fn projection_dot_vs_real() {
        // `X.1` style is not real syntax but `X.name` must not lex as a real.
        assert_eq!(
            kinds("X.population = 1.5"),
            vec![
                Token::Ident("X".into()),
                Token::Dot,
                Token::Ident("population".into()),
                Token::Eq,
                Token::Real(1.5),
                Token::Eof
            ]
        );
    }

    #[test]
    fn arrow_vs_comparisons() {
        assert_eq!(
            kinds("X < Y, X =< Y, X != Y <= Z = W"),
            vec![
                Token::Ident("X".into()),
                Token::Lt,
                Token::Ident("Y".into()),
                Token::Comma,
                Token::Ident("X".into()),
                Token::Leq,
                Token::Ident("Y".into()),
                Token::Comma,
                Token::Ident("X".into()),
                Token::Neq,
                Token::Ident("Y".into()),
                Token::Arrow,
                Token::Ident("Z".into()),
                Token::Eq,
                Token::Ident("W".into()),
                Token::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let toks = kinds("X = Y // this is clause C1\n<= Y in StateA;");
        assert!(toks.contains(&Token::Arrow));
        assert_eq!(
            toks.iter().filter(|t| matches!(t, Token::Ident(_))).count(),
            4
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""a\"b\\c\nd""#),
            vec![Token::Str("a\"b\\c\nd".into()), Token::Eof]
        );
    }

    #[test]
    fn unterminated_string_fails() {
        assert!(matches!(lex(r#""abc"#), Err(LangError::Lex { .. })));
    }

    #[test]
    fn unexpected_character_fails() {
        assert!(matches!(lex("X @ Y"), Err(LangError::Lex { .. })));
        assert!(matches!(lex("X ! Y"), Err(LangError::Lex { .. })));
    }

    #[test]
    fn skolem_and_variant_idents() {
        let toks = kinds("X = Mk_CountryT(N), Y.place = ins_euro_city(X)");
        assert!(toks.contains(&Token::Ident("Mk_CountryT".into())));
        assert!(toks.contains(&Token::Ident("ins_euro_city".into())));
    }

    #[test]
    fn offsets_recorded() {
        let spanned = lex("X = Y").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 2);
        assert_eq!(spanned[2].offset, 4);
    }
}
