//! Probe of the E7 skewed genome pipeline: run the same zipfian workload
//! with the flat `1/ndv` cost model and with histogram estimation, and show
//! how the join order, peak intermediate rows and estimate error diverge.
//!
//! ```text
//! cargo run --release --example e7_probe
//! ```

use wol_repro::cpl::CostModel;
use wol_repro::morphase::{render_report, Morphase, PipelineOptions};
use wol_repro::workloads::skewed::{self, SkewedParams};

fn main() {
    let params = SkewedParams::full();
    let source = skewed::generate_source(&params);
    let program = skewed::program();

    for (label, cost_model) in [
        ("flat 1/ndv", CostModel::FlatNdv),
        ("histogram", CostModel::Histogram),
    ] {
        let options = PipelineOptions {
            cost_model,
            ..PipelineOptions::default()
        };
        let run = Morphase::with_options(options)
            .transform(&program, &[&source][..])
            .expect("skewed pipeline runs");
        println!("== E7 with {label} estimation ==");
        println!("{}", render_report(&run));
        for plan in &run.plans {
            println!("{plan}");
        }
    }
}
