//! Experiment E13 — federated pushdown over three backend sources.
//!
//! The federated workload splits the genome warehouse across a relational
//! table (`CloneR`), an ACeDB-style store (`MarkerA`) and a large assay CSV
//! (`AssayC`); one WOL program integrates all three. The planner splits each
//! scan's conjunct pool into predicates the owning backend evaluates at the
//! source and residual ones, so with pushdown on the selective guards
//! (`length`, `position`, `level`) trim the streams *before* ingest — the
//! ~98%-selective level floor means the 20 000-row assay CSV contributes a
//! few hundred ingested rows instead of all of them. With pushdown off
//! (`WOL_PUSHDOWN=0`) the same predicates run as plan filters over a full
//! ingest; the produced target is bit-identical either way (asserted here
//! before measuring, and guarded by `tests/perf_regression.rs` and the
//! property suite).
//!
//! Results land in `BENCH_e13.json`: pushdown-on vs pushdown-off latency,
//! the ratio, and the provider row counters behind it.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use morphase::{Morphase, PipelineOptions};
use storage::ScanProvider;
use workloads::federated::{self, FederatedParams};

const MEDIAN_RUNS: usize = 5;

fn median_latency(
    morphase: &Morphase,
    program: &wol_lang::Program,
    providers: &[&dyn ScanProvider],
) -> Duration {
    let mut latencies: Vec<Duration> = (0..MEDIAN_RUNS)
        .map(|_| {
            let start = Instant::now();
            morphase
                .transform_federated(program, providers)
                .expect("federated run succeeds");
            start.elapsed()
        })
        .collect();
    latencies.sort();
    latencies[latencies.len() / 2]
}

fn bench_federated(c: &mut Criterion) {
    let params = FederatedParams::scaled(1); // 100 clones, 300 markers, 20 000 assays
    let (csv, ace, rel) = federated::providers(&params);
    let providers: [&dyn ScanProvider; 3] = [&csv, &ace, &rel];
    let program = federated::program();

    let on = Morphase::with_options(PipelineOptions {
        pushdown: true,
        ..PipelineOptions::default()
    });
    let off = Morphase::with_options(PipelineOptions {
        pushdown: false,
        ..PipelineOptions::default()
    });

    // Row-identity differential before measuring: both modes must produce a
    // bit-identical target, with the pushdown visible only in the counters.
    let run_on = on
        .transform_federated(&program, &providers)
        .expect("pushdown-on run succeeds");
    let run_off = off
        .transform_federated(&program, &providers)
        .expect("pushdown-off run succeeds");
    assert_eq!(run_on.exec.pushed_filters, 3, "all three guards push");
    assert!(
        run_on.exec.provider_rows_out < run_on.exec.provider_rows_in,
        "pushed filters trim the stream"
    );
    assert_eq!(run_off.exec.pushed_filters, 0);
    assert_eq!(
        run_off.exec.provider_rows_in,
        run_off.exec.provider_rows_out
    );
    assert_eq!(
        run_on.target.deep_eq_report(&run_off.target),
        None,
        "pushdown must not change the produced target"
    );
    println!("{}", morphase::render_report(&run_on));

    let mut group = c.benchmark_group("e13_federated");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));
    group.bench_function("pushdown_on", |b| {
        b.iter(|| {
            on.transform_federated(&program, &providers)
                .expect("pushdown-on run succeeds")
        })
    });
    group.bench_function("pushdown_off", |b| {
        b.iter(|| {
            off.transform_federated(&program, &providers)
                .expect("pushdown-off run succeeds")
        })
    });
    group.finish();

    let on_median = median_latency(&on, &program, &providers);
    let off_median = median_latency(&off, &program, &providers);

    bench::BenchJson::new()
        .str("bench", "e13_federated")
        .str("workload", "e13_federated_x1")
        .int("clones", params.clones as u64)
        .int("markers", params.markers as u64)
        .int("assays", params.assays as u64)
        .num("pushdown_on_secs", on_median.as_secs_f64())
        .num("pushdown_off_secs", off_median.as_secs_f64())
        .num(
            "off_vs_on_ratio",
            off_median.as_secs_f64() / on_median.as_secs_f64().max(1e-9),
        )
        .int("pushed_filters", run_on.exec.pushed_filters as u64)
        .int("provider_rows_in", run_on.exec.provider_rows_in as u64)
        .int("provider_rows_out", run_on.exec.provider_rows_out as u64)
        .stamped()
        .write("BENCH_e13.json");
}

criterion_group!(benches, bench_federated);
criterion_main!(benches);
