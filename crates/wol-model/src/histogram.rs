//! Equi-depth attribute histograms for cost-based query planning.
//!
//! The planner's original selectivity model assumed every attribute value is
//! equally likely (`1/ndv`). Real integration workloads — the paper's
//! Chr22DB/ACe22DB trials above all — are *skewed*: a few clones carry most
//! markers, so an equality join on the clone attribute produces far more rows
//! than the uniform model predicts, and the planner orders joins accordingly
//! badly. This module gives the planner the distribution itself.
//!
//! An [`AttrHistogram`] is an equi-depth histogram over the multiset of values
//! one attribute takes across a class extent:
//!
//! * values are sorted and grouped into runs of equal values;
//! * runs are packed into buckets of roughly `entries / target_buckets`
//!   entries each (equi-*depth*, not equi-width, so dense regions get more
//!   resolution);
//! * a run at least as large as the target depth becomes a **singleton
//!   bucket** (`lo == hi`, `distinct == 1`) carrying its *exact* count — the
//!   heavy hitters of a zipfian distribution are represented precisely, which
//!   is where the uniform model is most wrong.
//!
//! Estimation queries ([`eq_count`](AttrHistogram::eq_count) for
//! `attr = constant`, [`eq_join_rows`](AttrHistogram::eq_join_rows) for
//! `l.attr = r.attr` joins) answer from singleton buckets exactly and fall
//! back to the uniform-within-bucket assumption elsewhere, so the estimates
//! degrade gracefully to the flat `1/ndv` model on genuinely uniform data.
//!
//! Histograms are built lazily per `(class, attribute)` by
//! [`Instance::attr_histogram`](crate::Instance::attr_histogram) and cached in
//! the same per-class cache as the attribute indexes, so any mutation of a
//! class invalidates its histograms wholesale — a stale histogram can only
//! mislead estimates, never correctness, but the tests still pin the
//! invalidation down.

use std::collections::BTreeMap;

use crate::values::Value;

/// Default number of buckets a histogram aims for. Enough resolution to
/// separate a zipfian head from its tail, small enough that estimation stays
/// a handful of comparisons.
pub const DEFAULT_BUCKETS: usize = 32;

/// Extent size above which [`Instance::attr_histogram`](crate::Instance::attr_histogram)
/// switches from an exact build to [`AttrHistogram::build_sampled`].
pub const SAMPLE_THRESHOLD: usize = 32_768;

/// Reservoir size used by [`AttrHistogram::build_sampled`]. Large enough
/// that a bucket's expected sample depth (`SAMPLE_SIZE / DEFAULT_BUCKETS` =
/// 256) keeps relative error on heavy-hitter *detection* small.
pub const SAMPLE_SIZE: usize = 8_192;

/// SplitMix64 step: a tiny, deterministic, high-quality PRNG. Seeded with a
/// fixed constant so sampled histograms are reproducible across runs,
/// threads, and platforms.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One bucket of an equi-depth histogram: the closed value range `[lo, hi]`,
/// the number of entries falling in it, and how many distinct values they
/// spread over. A bucket with `distinct == 1` (`lo == hi`) is a *singleton*:
/// its count is the exact frequency of that one value.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramBucket {
    /// Smallest value in the bucket.
    pub lo: Value,
    /// Largest value in the bucket.
    pub hi: Value,
    /// Entries (attribute occurrences) in the bucket.
    pub count: usize,
    /// Distinct values the entries spread over.
    pub distinct: usize,
}

impl HistogramBucket {
    /// Whether this bucket holds exactly one distinct value (exact count).
    pub fn is_singleton(&self) -> bool {
        self.distinct == 1
    }

    /// Whether `value` falls inside the bucket's closed range.
    fn contains(&self, value: &Value) -> bool {
        *value >= self.lo && *value <= self.hi
    }

    /// Average entries per distinct value under the uniform-within-bucket
    /// assumption.
    fn avg_frequency(&self) -> f64 {
        self.count as f64 / self.distinct.max(1) as f64
    }
}

/// An equi-depth histogram over one attribute's value multiset.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AttrHistogram {
    /// Buckets in ascending value order; ranges are disjoint.
    buckets: Vec<HistogramBucket>,
    entries: usize,
    distinct: usize,
}

impl AttrHistogram {
    /// Build a histogram from an iterator of attribute values, targeting
    /// [`DEFAULT_BUCKETS`] buckets.
    pub fn build(values: impl IntoIterator<Item = Value>) -> Self {
        Self::build_with_buckets(values, DEFAULT_BUCKETS)
    }

    /// Build a histogram targeting `target_buckets` buckets (at least 1).
    pub fn build_with_buckets(
        values: impl IntoIterator<Item = Value>,
        target_buckets: usize,
    ) -> Self {
        let mut counts: BTreeMap<Value, usize> = BTreeMap::new();
        for value in values {
            *counts.entry(value).or_insert(0) += 1;
        }
        Self::from_counts(counts, target_buckets)
    }

    /// Build from pre-aggregated `(value, count)` runs in ascending value
    /// order (the `BTreeMap` guarantees the order).
    pub fn from_counts(counts: BTreeMap<Value, usize>, target_buckets: usize) -> Self {
        let entries: usize = counts.values().sum();
        let distinct = counts.len();
        if entries == 0 {
            return AttrHistogram::default();
        }
        // Equi-depth target: ceil(entries / buckets), at least 1.
        let depth = entries.div_ceil(target_buckets.max(1)).max(1);
        let mut buckets: Vec<HistogramBucket> = Vec::new();
        let mut current: Option<HistogramBucket> = None;
        for (value, count) in counts {
            if count >= depth {
                // A heavy hitter gets its own exact singleton bucket.
                if let Some(done) = current.take() {
                    buckets.push(done);
                }
                buckets.push(HistogramBucket {
                    lo: value.clone(),
                    hi: value,
                    count,
                    distinct: 1,
                });
                continue;
            }
            match current.as_mut() {
                Some(bucket) => {
                    bucket.hi = value;
                    bucket.count += count;
                    bucket.distinct += 1;
                }
                None => {
                    current = Some(HistogramBucket {
                        lo: value.clone(),
                        hi: value,
                        count,
                        distinct: 1,
                    });
                }
            }
            if current.as_ref().is_some_and(|b| b.count >= depth) {
                buckets.push(current.take().expect("just checked"));
            }
        }
        if let Some(done) = current.take() {
            buckets.push(done);
        }
        AttrHistogram {
            buckets,
            entries,
            distinct,
        }
    }

    /// Build a histogram from a *sample* of the values, for extents too
    /// large to aggregate exactly. `make_values` must produce the same value
    /// sequence on each call (the build takes two passes):
    ///
    /// 1. One pass counts the population and fills a deterministic
    ///    reservoir (algorithm R driven by a fixed-seed SplitMix64).
    /// 2. Values that look heavy in the sample (at least one expected bucket
    ///    depth of sample entries) get their **exact** population counts
    ///    from a second pass — the skew head, where estimates matter most,
    ///    stays precise.
    ///
    /// The light tail is scaled from the sample (`count · n / SAMPLE_SIZE`).
    /// Populations of at most [`SAMPLE_SIZE`] fall back to the exact build.
    /// The construction is fully deterministic for a given value sequence.
    pub fn build_sampled<I, F>(make_values: F) -> Self
    where
        I: Iterator<Item = Value>,
        F: Fn() -> I,
    {
        let mut n = 0usize;
        let mut reservoir: Vec<Value> = Vec::with_capacity(SAMPLE_SIZE);
        let mut rng: u64 = 0;
        for value in make_values() {
            if reservoir.len() < SAMPLE_SIZE {
                reservoir.push(value);
            } else {
                let j = (splitmix64(&mut rng) % (n as u64 + 1)) as usize;
                if j < SAMPLE_SIZE {
                    reservoir[j] = value;
                }
            }
            n += 1;
        }
        if n <= SAMPLE_SIZE {
            return Self::build(reservoir);
        }
        let mut sample_counts: BTreeMap<Value, usize> = BTreeMap::new();
        for value in reservoir {
            *sample_counts.entry(value).or_insert(0) += 1;
        }
        let sample_depth = SAMPLE_SIZE.div_ceil(DEFAULT_BUCKETS).max(1);
        let mut exact: BTreeMap<Value, usize> = sample_counts
            .iter()
            .filter(|(_, count)| **count >= sample_depth)
            .map(|(value, _)| (value.clone(), 0))
            .collect();
        if !exact.is_empty() {
            for value in make_values() {
                if let Some(slot) = exact.get_mut(&value) {
                    *slot += 1;
                }
            }
        }
        let scale = n as f64 / SAMPLE_SIZE as f64;
        let mut counts = exact;
        for (value, count) in sample_counts {
            counts
                .entry(value)
                .or_insert_with(|| ((count as f64 * scale).round() as usize).max(1));
        }
        Self::from_counts(counts, DEFAULT_BUCKETS)
    }

    /// Total entries (attribute occurrences) summarised.
    pub fn entries(&self) -> usize {
        self.entries
    }

    /// Total distinct values summarised.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// The buckets, in ascending value order.
    pub fn buckets(&self) -> &[HistogramBucket] {
        &self.buckets
    }

    /// True if the histogram summarises no entries (empty extent, or an
    /// attribute no object carries).
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// The bucket containing `value`, if any.
    fn bucket_of(&self, value: &Value) -> Option<&HistogramBucket> {
        // Buckets are few (<= ~2x DEFAULT_BUCKETS); a linear scan is cheaper
        // than getting a Value-ordering binary search subtly wrong.
        self.buckets.iter().find(|b| b.contains(value))
    }

    /// Estimated number of entries equal to `value`: exact for singleton
    /// buckets, the bucket's average frequency otherwise, `0` outside every
    /// bucket (the value provably does not occur).
    pub fn eq_count(&self, value: &Value) -> f64 {
        match self.bucket_of(value) {
            Some(b) if b.is_singleton() => b.count as f64,
            Some(b) => b.avg_frequency(),
            None => 0.0,
        }
    }

    /// Estimated size of the equality join of this attribute against
    /// `other`'s: an approximation of `Σ_v count_self(v) · count_other(v)`.
    ///
    /// Singleton buckets (the skew head) match exactly by value; the
    /// remaining span mass joins under the uniform + containment assumption
    /// (`rest_l · rest_r / max(ndv_l, ndv_r)`), and only when the span ranges
    /// actually overlap — disjoint domains estimate to zero.
    pub fn eq_join_rows(&self, other: &AttrHistogram) -> f64 {
        if self.is_empty() || other.is_empty() {
            return 0.0;
        }
        let mut rows = 0.0;
        // Head ↔ anything: each of our singletons looks its exact value up on
        // the other side (exact against their singletons, average within
        // their spans).
        for bucket in self.buckets.iter().filter(|b| b.is_singleton()) {
            rows += bucket.count as f64 * other.eq_count(&bucket.lo);
        }
        // Their singletons against our *spans* only — the singleton/singleton
        // and singleton-in-their-span cases are already covered above.
        for bucket in other.buckets.iter().filter(|b| b.is_singleton()) {
            if let Some(ours) = self.bucket_of(&bucket.lo) {
                if !ours.is_singleton() {
                    rows += bucket.count as f64 * ours.avg_frequency();
                }
            }
        }
        // Span ↔ span tail mass: uniform + containment, gated on range
        // overlap.
        let span = |h: &AttrHistogram| {
            let mut count = 0usize;
            let mut distinct = 0usize;
            let mut lo: Option<&Value> = None;
            let mut hi: Option<&Value> = None;
            for b in h.buckets.iter().filter(|b| !b.is_singleton()) {
                count += b.count;
                distinct += b.distinct;
                lo = Some(match lo {
                    Some(l) if l <= &b.lo => l,
                    _ => &b.lo,
                });
                hi = Some(match hi {
                    Some(h) if h >= &b.hi => h,
                    _ => &b.hi,
                });
            }
            (count, distinct, lo.cloned(), hi.cloned())
        };
        let (lc, ld, llo, lhi) = span(self);
        let (rc, rd, rlo, rhi) = span(other);
        if let (Some(llo), Some(lhi), Some(rlo), Some(rhi)) = (llo, lhi, rlo, rhi) {
            if llo <= rhi && rlo <= lhi {
                rows += lc as f64 * rc as f64 / ld.max(rd).max(1) as f64;
            }
        }
        rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(values: impl IntoIterator<Item = i64>) -> AttrHistogram {
        AttrHistogram::build(values.into_iter().map(Value::int))
    }

    #[test]
    fn empty_input_gives_an_empty_histogram() {
        let h = AttrHistogram::build(std::iter::empty());
        assert!(h.is_empty());
        assert_eq!(h.entries(), 0);
        assert_eq!(h.distinct(), 0);
        assert!(h.buckets().is_empty());
        assert_eq!(h.eq_count(&Value::int(1)), 0.0);
        assert_eq!(h.eq_join_rows(&h), 0.0);
    }

    #[test]
    fn single_distinct_value_is_one_exact_singleton_bucket() {
        let h = ints(std::iter::repeat_n(7, 40));
        assert_eq!(h.entries(), 40);
        assert_eq!(h.distinct(), 1);
        assert_eq!(h.buckets().len(), 1);
        assert!(h.buckets()[0].is_singleton());
        assert_eq!(h.eq_count(&Value::int(7)), 40.0);
        assert_eq!(h.eq_count(&Value::int(8)), 0.0);
        // Self-join of 40 duplicates is exactly 40 * 40.
        assert_eq!(h.eq_join_rows(&h), 1600.0);
    }

    #[test]
    fn uniform_data_matches_the_flat_model() {
        // 64 distinct values, 4 entries each: every estimate should agree
        // with the flat 1/ndv model.
        let h = ints((0..64).flat_map(|v| std::iter::repeat_n(v, 4)));
        assert_eq!(h.entries(), 256);
        assert_eq!(h.distinct(), 64);
        let flat = h.entries() as f64 * h.entries() as f64 / h.distinct() as f64;
        let est = h.eq_join_rows(&h);
        assert!(
            (est - flat).abs() / flat < 0.05,
            "uniform estimate {est} strays from flat {flat}"
        );
        for v in [0, 13, 63] {
            assert_eq!(h.eq_count(&Value::int(v)), 4.0);
        }
    }

    #[test]
    fn heavy_hitters_get_exact_singleton_buckets() {
        // Zipf-ish: value 0 carries half the mass, 1 a quarter, tail uniform.
        let mut values = vec![0; 500];
        values.extend(std::iter::repeat_n(1, 250));
        for v in 2..252 {
            values.push(v);
        }
        let h = ints(values);
        assert_eq!(h.eq_count(&Value::int(0)), 500.0);
        assert_eq!(h.eq_count(&Value::int(1)), 250.0);
        // The flat model would estimate the self-join at n^2/ndv = 1M/252
        // ~ 4k rows; the true size is 500^2 + 250^2 + 250 = 312,750.
        let est = h.eq_join_rows(&h);
        let truth = 500.0f64 * 500.0 + 250.0 * 250.0 + 250.0;
        assert!(
            (est - truth).abs() / truth < 0.05,
            "skewed estimate {est} strays from true {truth}"
        );
        let flat = (h.entries() as f64).powi(2) / h.distinct() as f64;
        assert!(est > 50.0 * flat, "estimate {est} not above flat {flat}");
    }

    #[test]
    fn bucket_boundary_values_are_found() {
        // Force small buckets so several boundaries exist, then probe every
        // value, including each bucket's exact lo and hi.
        let h = AttrHistogram::build_with_buckets((0..40).map(Value::int), 8);
        assert!(h.buckets().len() >= 8);
        for b in h.buckets() {
            assert!(h.eq_count(&b.lo) > 0.0);
            assert!(h.eq_count(&b.hi) > 0.0);
        }
        for v in 0..40 {
            assert!(h.eq_count(&Value::int(v)) > 0.0, "value {v} fell in a gap");
        }
        // Values outside the summarised domain estimate to zero.
        assert_eq!(h.eq_count(&Value::int(-1)), 0.0);
        assert_eq!(h.eq_count(&Value::int(40)), 0.0);
    }

    #[test]
    fn disjoint_domains_join_to_zero() {
        let l = ints(0..50);
        let r = ints(100..150);
        assert_eq!(l.eq_join_rows(&r), 0.0);
        assert_eq!(r.eq_join_rows(&l), 0.0);
    }

    #[test]
    fn string_values_are_supported() {
        let h = AttrHistogram::build(["a", "b", "b", "c", "c", "c"].into_iter().map(Value::str));
        assert_eq!(h.entries(), 6);
        assert_eq!(h.distinct(), 3);
        assert!(h.eq_count(&Value::str("c")) >= 1.0);
        assert_eq!(h.eq_count(&Value::str("z")), 0.0);
    }

    #[test]
    fn sampled_build_is_deterministic_and_keeps_heavy_hitters_exact() {
        // 100k entries: value 0 carries 40%, value 1 carries 20%, tail uniform
        // over 40k distinct values — well above the sampling threshold.
        let make = || {
            std::iter::repeat_n(0i64, 40_000)
                .chain(std::iter::repeat_n(1, 20_000))
                .chain(1_000..41_000)
                .map(Value::int)
        };
        assert!(make().count() > SAMPLE_THRESHOLD);
        let a = AttrHistogram::build_sampled(make);
        let b = AttrHistogram::build_sampled(make);
        assert_eq!(a, b, "sampled construction must be deterministic");
        // Heavy hitters get exact population counts despite sampling.
        assert_eq!(a.eq_count(&Value::int(0)), 40_000.0);
        assert_eq!(a.eq_count(&Value::int(1)), 20_000.0);
        // The scaled tail keeps the self-join estimate near the truth.
        let truth = 40_000.0f64 * 40_000.0 + 20_000.0 * 20_000.0 + 40_000.0;
        let est = a.eq_join_rows(&a);
        assert!(
            (est - truth).abs() / truth < 0.1,
            "sampled estimate {est} strays from true {truth}"
        );
    }

    #[test]
    fn sampled_build_below_the_reservoir_is_exact() {
        let make = || (0..100i64).map(Value::int);
        let sampled = AttrHistogram::build_sampled(make);
        let exact = AttrHistogram::build(make());
        assert_eq!(sampled, exact);
    }

    #[test]
    fn join_estimate_is_symmetric_enough() {
        let mut values = vec![0; 300];
        values.extend(0..100);
        let l = ints(values);
        let r = ints((0..100).chain(std::iter::repeat_n(0, 50)));
        let lr = l.eq_join_rows(&r);
        let rl = r.eq_join_rows(&l);
        assert!((lr - rl).abs() / lr.max(rl) < 0.05, "lr={lr} rl={rl}");
        // True: 301*51 (value 0) + 99 more singles ~ 15,450.
        let truth = 301.0f64 * 51.0 + 99.0;
        assert!((lr - truth).abs() / truth < 0.2, "lr={lr} truth={truth}");
    }
}
