//! E7 — a *skewed* genome workload where the flat `1/ndv` cost model
//! provably misorders joins.
//!
//! The paper's Section 6 trials (Chr22DB → ACe22DB) are exactly the
//! workloads where real data is skewed: a few clones carry most markers.
//! This module generates a synthetic genome source with a **zipfian
//! marker-per-clone distribution** — `MarkerS` and `ProbeS` objects both
//! reference clones, and the reference counts follow a zipf law, so the
//! equality join `M.clone_name = P.clone_name` produces `Σ_c m_c · p_c`
//! rows, far more than the uniform model's `|M|·|P| / ndv` predicts.
//!
//! The transformation joins three relations in a triangle:
//!
//! ```text
//! MarkerS ──(clone_name = clone_name)── ProbeS
//!     \                                   /
//!  (bin = bin)                 (lane = lane)
//!       \                              /
//!               LaneS  (small)
//! ```
//!
//! The zipfian clone attribute has *more* measured distinct values than the
//! uniform `bin`/`lane` attributes, so the flat model scores the
//! marker–probe join as the cheapest pair and joins the two skewed sides
//! first — materialising the `Σ m_c · p_c` blow-up. The histogram model sees
//! the skew head exactly, scores that join as the most expensive, and
//! anchors on the small `LaneS` relation instead. The two plans produce
//! identical targets; `tests/perf_regression.rs` pins the ≥3× gap in peak
//! intermediate rows and execute time.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use wol_lang::program::{Program, SchemaBinding};
use wol_model::{ClassName, Instance, Schema, Type, Value};

/// The skewed ACe22DB-style source schema: clones, plus markers and probes
/// that both reference clones by name, plus a small lane lookup relation.
pub fn source_schema() -> Schema {
    Schema::new("ace22skew")
        .with_class(
            "CloneS",
            Type::record([("name", Type::str()), ("lab", Type::str())]),
        )
        .with_class(
            "MarkerS",
            Type::record([
                ("name", Type::str()),
                ("clone_name", Type::str()),
                ("bin", Type::int()),
            ]),
        )
        .with_class(
            "ProbeS",
            Type::record([
                ("name", Type::str()),
                ("clone_name", Type::str()),
                ("lane", Type::int()),
            ]),
        )
        .with_class(
            "LaneS",
            Type::record([
                ("name", Type::str()),
                ("bin", Type::int()),
                ("lane", Type::int()),
            ]),
        )
}

/// The warehouse target: one `HitT` object per (marker, probe, lane) triple
/// that agrees on clone, bin and lane.
pub fn target_schema() -> Schema {
    Schema::new("chr22skew").with_class(
        "HitT",
        Type::record([
            ("marker", Type::str()),
            ("probe", Type::str()),
            ("lane", Type::str()),
        ]),
    )
}

/// The transformation: a three-way triangle join whose ordering is the whole
/// game (see the module docs).
pub fn program_text() -> &'static str {
    "H1: X in HitT, X.marker = MN, X.probe = PN, X.lane = LN <= \
         M in MarkerS, P in ProbeS, L in LaneS, \
         M.clone_name = P.clone_name, M.bin = L.bin, P.lane = L.lane, \
         MN = M.name, PN = P.name, LN = L.name;\n\
     K1: X = Mk_HitT(marker = A, probe = B, lane = C) <= \
         X in HitT, A = X.marker, B = X.probe, C = X.lane;"
}

/// The E7 transformation program.
pub fn program() -> Program {
    Program::new(
        "ace22skew_to_chr22skew",
        vec![SchemaBinding::new(source_schema())],
        SchemaBinding::new(target_schema()),
    )
    .with_text(program_text())
}

/// Parameters of the skewed generator.
#[derive(Clone, Copy, Debug)]
pub struct SkewedParams {
    /// Number of clones (the skewed attribute's value domain).
    pub clones: usize,
    /// Number of markers (zipfian references into the clones).
    pub markers: usize,
    /// Number of probes (zipfian references into the clones).
    pub probes: usize,
    /// Number of lane objects (the small third relation).
    pub lanes: usize,
    /// Domain size of the uniform `bin` and `lane` attributes.
    pub bins: usize,
    /// Zipf exponent of the marker/probe-per-clone distribution.
    pub zipf_exponent: f64,
    /// RNG seed (bins and lanes are sampled; the zipf allocation itself is
    /// deterministic).
    pub seed: u64,
}

impl Default for SkewedParams {
    fn default() -> Self {
        SkewedParams::full()
    }
}

impl SkewedParams {
    /// The full-size E7 workload (the benchmark and the full-size guard).
    pub fn full() -> Self {
        SkewedParams {
            clones: 1200,
            markers: 3000,
            probes: 1000,
            lanes: 2100,
            bins: 300,
            zipf_exponent: 1.1,
            seed: 22,
        }
    }

    /// A reduced E7 for the ratio regression test: same shape, ~3× smaller.
    pub fn reduced() -> Self {
        SkewedParams {
            clones: 400,
            markers: 1000,
            probes: 350,
            lanes: 1200,
            bins: 200,
            zipf_exponent: 1.1,
            seed: 22,
        }
    }
}

/// Deterministic zipf apportionment: split `total` references over `domain`
/// values with weights `1/(rank+1)^exponent`, by largest remainder. The
/// head is exact (value 0 always gets the biggest share) and the counts sum
/// to `total` precisely, so tests do not depend on sampling noise.
pub fn zipf_counts(total: usize, domain: usize, exponent: f64) -> Vec<usize> {
    if domain == 0 || total == 0 {
        return vec![0; domain];
    }
    let weights: Vec<f64> = (0..domain)
        .map(|rank| 1.0 / ((rank + 1) as f64).powf(exponent))
        .collect();
    let norm: f64 = weights.iter().sum();
    let shares: Vec<f64> = weights.iter().map(|w| w * total as f64 / norm).collect();
    let mut counts: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    let assigned: usize = counts.iter().sum();
    // Hand the remainder out by descending fractional part (ties by rank).
    let mut order: Vec<usize> = (0..domain).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.partial_cmp(&fa)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &rank in order.iter().take(total - assigned) {
        counts[rank] += 1;
    }
    counts
}

/// Generate the skewed source instance.
pub fn generate_source(params: &SkewedParams) -> Instance {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut inst = Instance::new("ace22skew");
    let clone_class = ClassName::new("CloneS");
    let marker_class = ClassName::new("MarkerS");
    let probe_class = ClassName::new("ProbeS");
    let lane_class = ClassName::new("LaneS");

    for c in 0..params.clones {
        inst.insert_fresh(
            &clone_class,
            Value::record([
                ("name", Value::str(format!("cZ22-{c}"))),
                ("lab", Value::str(format!("lab-{}", c % 7))),
            ]),
        );
    }

    let bins = params.bins.max(1);
    let mut emit_refs = |class: &ClassName, prefix: &str, total: usize, uniform_attr: &str| {
        let counts = zipf_counts(total, params.clones.max(1), params.zipf_exponent);
        let mut serial = 0usize;
        for (clone, count) in counts.iter().enumerate() {
            for _ in 0..*count {
                // Uniform and independent of the clone rank.
                let rng_value = rng.gen_range(0..bins) as i64;
                inst.insert_fresh(
                    class,
                    Value::record([
                        ("name", Value::str(format!("{prefix}{serial}"))),
                        ("clone_name", Value::str(format!("cZ22-{clone}"))),
                        (uniform_attr, Value::int(rng_value)),
                    ]),
                );
                serial += 1;
            }
        }
    };
    emit_refs(&marker_class, "D22S", params.markers, "bin");
    emit_refs(&probe_class, "P22-", params.probes, "lane");

    for l in 0..params.lanes {
        inst.insert_fresh(
            &lane_class,
            Value::record([
                ("name", Value::str(format!("L{l}"))),
                ("bin", Value::int(rng.gen_range(0..bins) as i64)),
                ("lane", Value::int(rng.gen_range(0..bins) as i64)),
            ]),
        );
    }
    inst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schemas_and_program_validate() {
        assert!(source_schema().validate().is_ok());
        assert!(target_schema().validate().is_ok());
        program().validate().unwrap();
    }

    #[test]
    fn zipf_counts_are_exact_and_head_heavy() {
        let counts = zipf_counts(1000, 100, 1.1);
        assert_eq!(counts.iter().sum::<usize>(), 1000);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] >= counts[10]);
        // The head dominates: the top value alone carries well over the
        // uniform share of 10.
        assert!(counts[0] > 100, "head share too small: {}", counts[0]);
        // Degenerate shapes stay well-defined.
        assert_eq!(zipf_counts(0, 5, 1.0), vec![0; 5]);
        assert!(zipf_counts(5, 0, 1.0).is_empty());
    }

    #[test]
    fn generated_source_conforms_and_is_skewed() {
        let params = SkewedParams {
            clones: 50,
            markers: 200,
            probes: 80,
            lanes: 20,
            bins: 8,
            zipf_exponent: 1.1,
            seed: 3,
        };
        let source = generate_source(&params);
        wol_model::validate::check_instance(&source, &source_schema()).unwrap();
        assert_eq!(source.extent_size(&ClassName::new("CloneS")), 50);
        assert_eq!(source.extent_size(&ClassName::new("MarkerS")), 200);
        assert_eq!(source.extent_size(&ClassName::new("ProbeS")), 80);
        assert_eq!(source.extent_size(&ClassName::new("LaneS")), 20);
        // The top clone carries the zipf head of the markers.
        let top = source
            .lookup_by_attr(
                &ClassName::new("MarkerS"),
                "clone_name",
                &Value::str("cZ22-0"),
            )
            .len();
        assert!(top >= 30, "zipf head missing: top clone has {top} markers");
        // The histogram sees the skew: the hot value's estimated frequency
        // dwarfs the flat per-value average.
        let hist = source.attr_histogram(&ClassName::new("MarkerS"), "clone_name");
        let flat_avg = hist.entries() as f64 / hist.distinct() as f64;
        assert!(hist.eq_count(&Value::str("cZ22-0")) > 5.0 * flat_avg);
    }
}
