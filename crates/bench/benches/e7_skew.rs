//! Experiment E7 — histogram-backed cardinality estimation on skewed data.
//!
//! The E6 genome workload joins on (near-)key attributes, where the flat
//! `1/ndv` selectivity model happens to be right. E7 is the adversarial
//! sibling: a zipfian marker-per-clone distribution (a few clones carry most
//! markers — the shape of the paper's real Chr22DB/ACe22DB trials) and a
//! triangle join where the flat model orders the two skewed relations first
//! and materialises the `Σ m_c · p_c` blow-up. This bench runs the *same*
//! pipeline under both cost models and reports the execute-phase gap, the
//! peak intermediate rows, and the estimate-vs-actual error per join.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::{render_report, Morphase, MorphaseRun, PipelineOptions};
use workloads::skewed::{self, SkewedParams};

fn run(source: &wol_model::Instance, cost_model: cpl::CostModel) -> MorphaseRun {
    let options = PipelineOptions {
        cost_model,
        ..PipelineOptions::default()
    };
    Morphase::with_options(options)
        .transform(&skewed::program(), &[source][..])
        .expect("skewed pipeline runs")
}

fn bench_skew(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_skew");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let params = SkewedParams::full();
    let source = skewed::generate_source(&params);
    for (label, cost_model) in [
        ("histogram", cpl::CostModel::Histogram),
        ("flat_ndv", cpl::CostModel::FlatNdv),
    ] {
        group.bench_function(BenchmarkId::new("pipeline", label), |b| {
            b.iter(|| run(&source, cost_model))
        });
    }
    group.finish();

    let hist_run = run(&source, cpl::CostModel::Histogram);
    let flat_run = run(&source, cpl::CostModel::FlatNdv);
    eprintln!(
        "[E7] skewed genome, histogram:\n{}",
        render_report(&hist_run)
    );
    eprintln!(
        "[E7] skewed genome, flat 1/ndv:\n{}",
        render_report(&flat_run)
    );

    // Machine-readable summary for cross-PR tracking: the histogram model's
    // worth is `max_intermediate_rows` and `execute_secs` staying flat where
    // the flat model blows up, plus join estimate errors near 1x.
    let summarise = |run: &MorphaseRun| {
        let worst_error = run
            .join_stats
            .iter()
            .map(|j| j.error_ratio())
            .fold(1.0f64, f64::max);
        bench::BenchJson::new()
            .num("execute_secs", run.timings.execute.as_secs_f64())
            .num("total_secs", run.timings.total().as_secs_f64())
            .int("rows_produced", run.exec.rows_produced as u64)
            .int(
                "max_intermediate_rows",
                run.exec.max_intermediate_rows as u64,
            )
            .int("index_probes", run.exec.index_probes as u64)
            .int("probe_cache_hits", run.exec.probe_cache_hits as u64)
            .int("objects_written", run.exec.objects_written as u64)
            .num("worst_join_estimate_error", worst_error)
    };
    let execute_ratio =
        flat_run.timings.execute.as_secs_f64() / hist_run.timings.execute.as_secs_f64().max(1e-9);
    let peak_ratio = flat_run.exec.max_intermediate_rows as f64
        / hist_run.exec.max_intermediate_rows.max(1) as f64;
    bench::BenchJson::new()
        .str("bench", "e7_skew")
        .str(
            "workload",
            "zipfian genome triangle (3000 markers, 1000 probes, 1200 clones)",
        )
        .obj("histogram", summarise(&hist_run))
        .obj("flat_ndv", summarise(&flat_run))
        .num("execute_ratio_flat_over_histogram", execute_ratio)
        .num("peak_rows_ratio_flat_over_histogram", peak_ratio)
        .stamped()
        .write("BENCH_e7.json");
}

criterion_group!(benches, bench_skew);
criterion_main!(benches);
