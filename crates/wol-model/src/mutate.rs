//! Source mutation batches for incremental view maintenance.
//!
//! A standing transformation (the `morphase` maintainer) absorbs changes to
//! its source instance as [`MutationBatch`]es — ordered lists of
//! insert/update/remove operations — and needs to know, per class, exactly
//! which identities the batch touched so it can invalidate and re-derive the
//! affected query rows. [`Instance::apply_batch`] applies a batch through the
//! ordinary mutation API (so attribute indexes, histograms and columnar
//! chunks are invalidated object-by-object, and the mutation log sees every
//! step) and folds the per-identity outcomes into a [`BatchDelta`].
//!
//! The delta classifies each touched identity by its *net* effect across the
//! batch: an object inserted and then updated is still `inserted`; an object
//! inserted and then removed cancels out entirely; an existing object updated
//! and then removed is just `removed`.

use std::collections::{BTreeMap, BTreeSet};

use crate::instance::Instance;
use crate::oid::Oid;
use crate::types::ClassName;
use crate::values::Value;
use crate::Result;

/// One source mutation: the unit of a [`MutationBatch`].
#[derive(Clone, Debug, PartialEq)]
pub enum SourceOp {
    /// Insert a fresh object into `class` (the identity is minted by the
    /// instance's own generator, exactly like [`Instance::insert_fresh`]).
    Insert { class: ClassName, value: Value },
    /// Replace the value of an existing object.
    Update { oid: Oid, value: Value },
    /// Remove an existing object.
    Remove { oid: Oid },
}

/// An ordered batch of source mutations, applied atomically by
/// [`Instance::apply_batch`]: either every operation applies, or the batch
/// fails on the first dangling identity with the earlier operations already
/// applied and reported in the error path's mutation log (callers that need
/// rollback journal the batch first — see `storage::persist`).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MutationBatch {
    /// The operations, in application order.
    pub ops: Vec<SourceOp>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an insert.
    pub fn insert(mut self, class: impl Into<ClassName>, value: Value) -> Self {
        self.ops.push(SourceOp::Insert {
            class: class.into(),
            value,
        });
        self
    }

    /// Append an update.
    pub fn update(mut self, oid: Oid, value: Value) -> Self {
        self.ops.push(SourceOp::Update { oid, value });
        self
    }

    /// Append a remove.
    pub fn remove(mut self, oid: Oid) -> Self {
        self.ops.push(SourceOp::Remove { oid });
        self
    }

    /// Number of operations in the batch.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the batch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// The net per-identity effect of a batch on one class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassDelta {
    /// Identities that exist after the batch but did not before.
    pub inserted: BTreeSet<Oid>,
    /// Identities that existed before and after, with a (possibly) new value.
    pub updated: BTreeSet<Oid>,
    /// Identities that existed before the batch and no longer do.
    pub removed: BTreeSet<Oid>,
}

impl ClassDelta {
    /// Identities whose post-batch value is new or changed: the `Δ⁺` set a
    /// semi-naive re-derivation scans.
    pub fn changed(&self) -> BTreeSet<Oid> {
        self.inserted.union(&self.updated).cloned().collect()
    }

    /// Identities whose pre-batch rows are stale: anything updated or
    /// removed.
    pub fn stale(&self) -> BTreeSet<Oid> {
        self.updated.union(&self.removed).cloned().collect()
    }

    /// Whether the delta records no change.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.updated.is_empty() && self.removed.is_empty()
    }
}

/// The net effect of one applied [`MutationBatch`], per class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchDelta {
    /// Per-class net deltas; classes without changes carry no entry.
    pub classes: BTreeMap<ClassName, ClassDelta>,
}

impl BatchDelta {
    /// The classes the batch touched.
    pub fn mutated_classes(&self) -> BTreeSet<ClassName> {
        self.classes.keys().cloned().collect()
    }

    /// The delta of one class, if it changed.
    pub fn class(&self, class: &ClassName) -> Option<&ClassDelta> {
        self.classes.get(class)
    }

    /// Whether any class has updates or removals (the operations that can
    /// invalidate previously derived rows, as opposed to pure growth).
    pub fn has_stale(&self) -> bool {
        self.classes.values().any(|d| !d.stale().is_empty())
    }

    /// Whether the batch had no net effect.
    pub fn is_empty(&self) -> bool {
        self.classes.values().all(ClassDelta::is_empty)
    }
}

/// Per-identity life-cycle across one batch, folded left to right.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fate {
    Inserted,
    Updated,
    Removed,
}

impl Instance {
    /// Apply a mutation batch through the ordinary mutation API (so the
    /// attribute indexes stay maintained, the histogram/columnar caches
    /// invalidate per touched class, and the mutation log, if active,
    /// records every step), returning the net per-class [`BatchDelta`].
    pub fn apply_batch(&mut self, batch: &MutationBatch) -> Result<BatchDelta> {
        let mut fates: BTreeMap<Oid, Fate> = BTreeMap::new();
        for op in &batch.ops {
            match op {
                SourceOp::Insert { class, value } => {
                    let oid = self.insert_fresh(class, value.clone());
                    fates.insert(oid, Fate::Inserted);
                }
                SourceOp::Update { oid, value } => {
                    self.update(oid, value.clone())?;
                    match fates.get(oid) {
                        // An object this very batch inserted is still a net
                        // insert after an update.
                        Some(Fate::Inserted) => {}
                        _ => {
                            fates.insert(oid.clone(), Fate::Updated);
                        }
                    }
                }
                SourceOp::Remove { oid } => {
                    self.remove(oid)
                        .ok_or_else(|| crate::ModelError::DanglingOid(oid.to_string()))?;
                    match fates.get(oid) {
                        // Inserted then removed in the same batch: no net
                        // effect at all.
                        Some(Fate::Inserted) => {
                            fates.remove(oid);
                        }
                        _ => {
                            fates.insert(oid.clone(), Fate::Removed);
                        }
                    }
                }
            }
        }
        let mut delta = BatchDelta::default();
        for (oid, fate) in fates {
            let class = delta.classes.entry(oid.class().clone()).or_default();
            match fate {
                Fate::Inserted => class.inserted.insert(oid),
                Fate::Updated => class.updated.insert(oid),
                Fate::Removed => class.removed.insert(oid),
            };
        }
        Ok(delta)
    }

    /// Capture, *before* applying `batch`, the pre-images that
    /// [`Instance::revert_batch`] needs: the current value of every identity
    /// the batch updates or removes (first occurrence wins — that is the
    /// pre-batch value even if the batch touches the identity repeatedly).
    pub fn batch_preimages(&self, batch: &MutationBatch) -> Vec<(Oid, Value)> {
        let mut seen = BTreeSet::new();
        let mut out = Vec::new();
        for op in &batch.ops {
            let oid = match op {
                SourceOp::Insert { .. } => continue,
                SourceOp::Update { oid, .. } | SourceOp::Remove { oid } => oid,
            };
            if seen.insert(oid.clone()) {
                if let Some(value) = self.value(oid) {
                    out.push((oid.clone(), value.clone()));
                }
            }
        }
        out
    }

    /// Undo an applied batch: remove net inserts, restore updated values and
    /// re-insert removed objects under their original identities. Extents
    /// are ordered sets and the fresh-identity counters are rewound past the
    /// removed mints, so the reverted instance — generator state included —
    /// is bit-identical to the pre-batch state. `preimages` must come from
    /// [`Instance::batch_preimages`] on the pre-batch state.
    pub fn revert_batch(&mut self, delta: &BatchDelta, preimages: &[(Oid, Value)]) -> Result<()> {
        let pre: BTreeMap<&Oid, &Value> = preimages.iter().map(|(o, v)| (o, v)).collect();
        let lookup = |oid: &Oid| {
            pre.get(oid).map(|v| (*v).clone()).ok_or_else(|| {
                crate::ModelError::Invalid(format!(
                    "no pre-image for {oid} while reverting a batch"
                ))
            })
        };
        for (class, class_delta) in &delta.classes {
            for oid in &class_delta.inserted {
                self.remove(oid)
                    .ok_or_else(|| crate::ModelError::DanglingOid(oid.to_string()))?;
            }
            // The batch minted its net inserts as a contiguous tail run, so
            // the lowest inserted discriminator *is* the pre-batch counter.
            if let Some(low) = class_delta.inserted.iter().map(Oid::id).min() {
                self.rewind_oid_counter(class, low);
            }
            for oid in &class_delta.updated {
                self.update(oid, lookup(oid)?)?;
            }
            for oid in &class_delta.removed {
                self.insert(oid.clone(), lookup(oid)?)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn marker(name: &str, position: i64) -> Value {
        Value::record([
            ("name", Value::str(name)),
            ("position", Value::int(position)),
        ])
    }

    #[test]
    fn batch_classifies_net_effects() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let kept = inst.insert_fresh(&class, marker("kept", 1));
        let gone = inst.insert_fresh(&class, marker("gone", 2));
        let batch = MutationBatch::new()
            .insert(class.clone(), marker("new", 3))
            .update(kept.clone(), marker("kept", 10))
            .remove(gone.clone());
        let delta = inst.apply_batch(&batch).unwrap();
        let d = delta.class(&class).unwrap();
        assert_eq!(d.inserted.len(), 1);
        assert_eq!(d.updated, BTreeSet::from([kept]));
        assert_eq!(d.removed, BTreeSet::from([gone]));
        assert_eq!(inst.extent_size(&class), 2);
        assert!(delta.has_stale());
    }

    #[test]
    fn insert_then_update_is_a_net_insert_and_insert_then_remove_cancels() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        // Predict the minted identities: the generator is sequential.
        let probe = inst.insert_fresh(&class, marker("probe", 0));
        let a = Oid::new(class.clone(), probe.id() + 1);
        let b = Oid::new(class.clone(), probe.id() + 2);
        let batch = MutationBatch::new()
            .insert(class.clone(), marker("a", 1))
            .insert(class.clone(), marker("b", 2))
            .update(a.clone(), marker("a", 9))
            .remove(b.clone());
        let delta = inst.apply_batch(&batch).unwrap();
        let d = delta.class(&class).unwrap();
        assert_eq!(d.inserted, BTreeSet::from([a.clone()]));
        assert!(d.updated.is_empty());
        assert!(d.removed.is_empty());
        assert_eq!(inst.value(&a), Some(&marker("a", 9)));
        assert!(!inst.contains(&b));
    }

    #[test]
    fn update_then_remove_is_a_net_remove() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let oid = inst.insert_fresh(&class, marker("x", 1));
        let batch = MutationBatch::new()
            .update(oid.clone(), marker("x", 2))
            .remove(oid.clone());
        let delta = inst.apply_batch(&batch).unwrap();
        let d = delta.class(&class).unwrap();
        assert_eq!(d.removed, BTreeSet::from([oid]));
        assert!(d.updated.is_empty());
    }

    /// The remove/update path must never leave the derived caches serving
    /// stale data: attribute indexes, histograms, columnar projections and
    /// the row index all have to reflect a batch as soon as it applies.
    #[test]
    fn derived_caches_are_fresh_after_update_and_remove() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let a = inst.insert_fresh(&class, marker("a", 10));
        let b = inst.insert_fresh(&class, marker("b", 20));
        let c = inst.insert_fresh(&class, marker("c", 20));

        // Build every derived structure.
        assert_eq!(
            inst.lookup_by_attr(&class, "position", &Value::int(20))
                .len(),
            2
        );
        assert_eq!(inst.attr_histogram(&class, "position").entries(), 3);
        assert!(inst.has_attr_index(&class, "position"));
        assert!(inst.has_attr_histogram(&class, "position"));
        let col = inst.attr_column(&class, "position");
        assert_eq!(col.present(), 3);
        assert_eq!(inst.class_row_index(&class).len(), 3);
        assert!(inst.has_attr_column(&class, "position"));

        // Update one value, remove another.
        let batch = MutationBatch::new()
            .update(b.clone(), marker("b", 99))
            .remove(c.clone());
        inst.apply_batch(&batch).unwrap();

        // The attribute index is maintained in place; the stats caches
        // (histogram/column/row-index) are invalidated wholesale...
        assert!(inst.has_attr_index(&class, "position"));
        assert!(!inst.has_attr_histogram(&class, "position"));
        assert!(!inst.has_attr_column(&class, "position"));
        // ...and every read sees the post-batch state only.
        assert_eq!(
            inst.lookup_by_attr(&class, "position", &Value::int(20)),
            vec![]
        );
        assert_eq!(
            inst.lookup_by_attr(&class, "position", &Value::int(99)),
            vec![b.clone()]
        );
        let histogram = inst.attr_histogram(&class, "position");
        assert_eq!(histogram.entries(), 2);
        let col = inst.attr_column(&class, "position");
        assert_eq!(col.present(), 2);
        let rows = inst.class_row_index(&class);
        assert_eq!(rows.as_slice(), &[a, b]);
    }

    /// Removing a class's final object must empty the derived views too (the
    /// degenerate case a maintainer hits when a delta retracts a whole
    /// extent).
    #[test]
    fn removing_the_last_object_empties_derived_views() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let only = inst.insert_fresh(&class, marker("solo", 5));
        assert_eq!(
            inst.lookup_by_attr(&class, "position", &Value::int(5))
                .len(),
            1
        );
        inst.apply_batch(&MutationBatch::new().remove(only))
            .unwrap();
        assert_eq!(inst.extent_size(&class), 0);
        assert!(inst
            .lookup_by_attr(&class, "position", &Value::int(5))
            .is_empty());
        assert_eq!(inst.attr_histogram(&class, "position").entries(), 0);
        assert_eq!(inst.attr_column(&class, "position").present(), 0);
        assert!(inst.class_row_index(&class).is_empty());
    }

    #[test]
    fn revert_batch_restores_the_pre_batch_state() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let kept = inst.insert_fresh(&class, marker("kept", 1));
        let gone = inst.insert_fresh(&class, marker("gone", 2));
        let reference = inst.clone();
        let batch = MutationBatch::new()
            .insert(class.clone(), marker("new", 3))
            .update(kept.clone(), marker("kept", 10))
            .remove(gone.clone());
        let pre = inst.batch_preimages(&batch);
        let delta = inst.apply_batch(&batch).unwrap();
        inst.revert_batch(&delta, &pre).unwrap();
        // Bit-identical: extents, values, *and* the identity generator (the
        // batch's mint is rewound), so `PartialEq` — not just deep-eq — holds
        // and a later insert mints the same identity it would have without
        // the reverted batch.
        assert_eq!(inst, reference);
        assert_eq!(inst.deep_eq_report(&reference), None);
        assert_eq!(
            inst.insert_fresh(&class, marker("later", 4)),
            Oid::new(class.clone(), 2)
        );
        // The maintained attribute index reflects the revert too.
        assert_eq!(
            inst.lookup_by_attr(&class, "position", &Value::int(1)),
            vec![kept]
        );
        assert!(inst
            .lookup_by_attr(&class, "position", &Value::int(3))
            .is_empty());
        assert_eq!(
            inst.lookup_by_attr(&class, "position", &Value::int(2)),
            vec![gone]
        );
    }

    #[test]
    fn revert_batch_requires_preimages() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let oid = inst.insert_fresh(&class, marker("x", 1));
        let batch = MutationBatch::new().remove(oid);
        let delta = inst.apply_batch(&batch).unwrap();
        assert!(inst.revert_batch(&delta, &[]).is_err());
    }

    #[test]
    fn dangling_identities_error() {
        let mut inst = Instance::new("s");
        let class = ClassName::new("M");
        let ghost = Oid::new(class.clone(), 99);
        let batch = MutationBatch::new().update(ghost.clone(), marker("g", 1));
        assert!(inst.apply_batch(&batch).is_err());
        let batch = MutationBatch::new().remove(ghost);
        assert!(inst.apply_batch(&batch).is_err());
    }
}
