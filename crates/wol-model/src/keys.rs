//! Surrogate keys and Skolem object creation (Section 2.2).
//!
//! A *key specification* assigns to each class a function from its objects to
//! key values that do not involve object identities. An instance *satisfies*
//! the specification iff distinct objects of a class always have distinct key
//! values. The [`SkolemFactory`] implements the paper's `Mk_C(...)` functions:
//! it deterministically creates (and memoises) an object identity for each
//! distinct key value of a class.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ModelError;
use crate::instance::Instance;
use crate::oid::Oid;
use crate::path::Path;
use crate::types::{ClassName, Label};
use crate::values::Value;
use crate::Result;

/// An expression describing how to compute a key value from an object.
///
/// Key expressions mirror the paper's Example 2.3: the key of a `CountryE`
/// is `x.name`, and the key of a `CityE` is the record
/// `(name = x.name, country_name = x.country.name)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyExpr {
    /// Project an attribute path from the object's value, dereferencing object
    /// identities along the way. If the final value is itself an identity, it
    /// is *not* dereferenced — use a longer path to reach a value instead.
    Path(Path),
    /// A record of named sub-keys.
    Record(Vec<(Label, KeyExpr)>),
    /// A fixed constant.
    Const(Value),
}

impl KeyExpr {
    /// Convenience: a key that is a single attribute path, e.g. `"name"` or
    /// `"country.name"`.
    pub fn path(p: impl Into<Path>) -> KeyExpr {
        KeyExpr::Path(p.into())
    }

    /// Convenience: a record of labelled path keys.
    pub fn record<I, L>(fields: I) -> KeyExpr
    where
        I: IntoIterator<Item = (L, KeyExpr)>,
        L: Into<Label>,
    {
        KeyExpr::Record(fields.into_iter().map(|(l, k)| (l.into(), k)).collect())
    }

    /// Evaluate the key expression for the object value `value` in `instance`.
    pub fn eval(&self, value: &Value, instance: &Instance) -> Result<Value> {
        match self {
            KeyExpr::Path(path) => Ok(path.eval(value, instance)?.clone()),
            KeyExpr::Record(fields) => {
                let mut out = BTreeMap::new();
                for (label, sub) in fields {
                    out.insert(label.clone(), sub.eval(value, instance)?);
                }
                Ok(Value::Record(out))
            }
            KeyExpr::Const(v) => Ok(v.clone()),
        }
    }
}

impl fmt::Display for KeyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyExpr::Path(p) => write!(f, "x.{p}"),
            KeyExpr::Record(fields) => {
                write!(f, "(")?;
                for (i, (l, k)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} = {k}")?;
                }
                write!(f, ")")
            }
            KeyExpr::Const(v) => write!(f, "{v:?}"),
        }
    }
}

/// A key specification: a key expression per (keyed) class of a schema.
///
/// Classes without an entry are unkeyed; key-based merging and Skolem creation
/// are only available for keyed classes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeySpec {
    keys: BTreeMap<ClassName, KeyExpr>,
}

impl KeySpec {
    /// An empty key specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the key expression for a class (builder style).
    pub fn with_key(mut self, class: impl Into<ClassName>, key: KeyExpr) -> Self {
        self.keys.insert(class.into(), key);
        self
    }

    /// Set the key expression for a class.
    pub fn set_key(&mut self, class: impl Into<ClassName>, key: KeyExpr) {
        self.keys.insert(class.into(), key);
    }

    /// The key expression of a class, if any.
    pub fn key_of(&self, class: &ClassName) -> Option<&KeyExpr> {
        self.keys.get(class)
    }

    /// Whether the class has a key.
    pub fn has_key(&self, class: &ClassName) -> bool {
        self.keys.contains_key(class)
    }

    /// The keyed classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassName> {
        self.keys.keys()
    }

    /// Number of keyed classes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no class is keyed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Evaluate the key of an object identity in an instance.
    pub fn eval(&self, oid: &Oid, instance: &Instance) -> Result<Value> {
        let key = self.keys.get(oid.class()).ok_or_else(|| {
            ModelError::KeyEvaluation(format!("class `{}` has no key", oid.class()))
        })?;
        let value = instance.value_or_err(oid)?;
        let key_value = key.eval(value, instance)?;
        if key_value.contains_oid() {
            return Err(ModelError::KeyContainsOid(oid.class().clone()));
        }
        Ok(key_value)
    }

    /// Check that `instance` satisfies this key specification: within each
    /// keyed class, distinct objects have distinct key values (Section 2.2).
    pub fn check(&self, instance: &Instance) -> Result<()> {
        for class in self.keys.keys() {
            let mut seen: BTreeMap<Value, Oid> = BTreeMap::new();
            for oid in instance.extent(class) {
                let key_value = self.eval(oid, instance)?;
                if let Some(previous) = seen.get(&key_value) {
                    if previous != oid {
                        return Err(ModelError::KeyViolation {
                            class: class.clone(),
                            key: format!("{key_value:?}"),
                        });
                    }
                }
                seen.insert(key_value, oid.clone());
            }
        }
        Ok(())
    }

    /// Build an index from key value to object identity for one class.
    /// Fails if the key is violated.
    pub fn index(&self, class: &ClassName, instance: &Instance) -> Result<BTreeMap<Value, Oid>> {
        let mut out = BTreeMap::new();
        for oid in instance.extent(class) {
            let key_value = self.eval(oid, instance)?;
            if let Some(previous) = out.insert(key_value.clone(), oid.clone()) {
                if &previous != oid {
                    return Err(ModelError::KeyViolation {
                        class: class.clone(),
                        key: format!("{key_value:?}"),
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Deterministic Skolem-function factory implementing the paper's `Mk_C`
/// object-creating functions.
///
/// `mk(class, key_value)` returns the *same* object identity every time it is
/// called with the same class and key value within one factory, and a fresh
/// identity for each new key value. This realises the semantics of Skolem
/// functions, "which create new object identities associated uniquely with
/// their arguments" (Section 3.1), and makes the "unique smallest
/// transformation up to renaming of object identities" reproducible.
///
/// The factory's numbering depends on *first-call order*, which is why it
/// cannot be shared across worker threads directly; workers record
/// [`SkolemClaims`] instead and the claims are resolved against the factory
/// in input order (see the two-phase key-claim protocol documented there).
#[derive(Clone, Debug, Default)]
pub struct SkolemFactory {
    /// Per-class memo from key value to identity — nested so the hot-path
    /// lookup (a repeated key, the common case on merging partial inserts)
    /// borrows the class and key instead of cloning them into a composite
    /// lookup key.
    assigned: BTreeMap<ClassName, BTreeMap<Value, Oid>>,
    counters: BTreeMap<ClassName, u64>,
}

impl SkolemFactory {
    /// A factory with no identities assigned yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply `Mk_class(key)`: return the identity associated with the key
    /// value, creating it if necessary.
    pub fn mk(&mut self, class: &ClassName, key: &Value) -> Oid {
        if let Some(existing) = self.assigned.get(class).and_then(|keys| keys.get(key)) {
            return existing.clone();
        }
        let counter = self.counters.entry(class.clone()).or_insert(0);
        let oid = Oid::new(class.clone(), *counter);
        *counter += 1;
        self.assigned
            .entry(class.clone())
            .or_default()
            .insert(key.clone(), oid.clone());
        oid
    }

    /// Look up the identity for a key value without creating one.
    pub fn lookup(&self, class: &ClassName, key: &Value) -> Option<&Oid> {
        self.assigned.get(class).and_then(|keys| keys.get(key))
    }

    /// The key value that produced an identity, if the identity came from this
    /// factory. (Inverse of [`mk`](Self::mk); linear in the number of
    /// assignments.)
    pub fn key_of(&self, oid: &Oid) -> Option<&Value> {
        self.assigned.get(oid.class()).and_then(|keys| {
            keys.iter()
                .find(|(_, assigned)| *assigned == oid)
                .map(|(key, _)| key)
        })
    }

    /// Number of identities created for a class.
    pub fn count(&self, class: &ClassName) -> usize {
        self.assigned.get(class).map_or(0, BTreeMap::len)
    }

    /// Total number of identities created.
    pub fn len(&self) -> usize {
        self.assigned.values().map(BTreeMap::len).sum()
    }

    /// True if no identities have been created.
    pub fn is_empty(&self) -> bool {
        self.assigned.values().all(BTreeMap::is_empty)
    }

    /// Export the factory's full state for persistence. The state captures
    /// both the key→identity memo and the per-class counters, so a factory
    /// rebuilt with [`from_state`](Self::from_state) is *bit-identical*: every
    /// already-assigned key returns its old identity and every new key gets
    /// the identity an uncrashed factory would have minted next.
    pub fn export_state(&self) -> SkolemState {
        SkolemState {
            assigned: self.assigned.clone(),
            counters: self.counters.clone(),
        }
    }

    /// Rebuild a factory from exported state (inverse of
    /// [`export_state`](Self::export_state)).
    pub fn from_state(state: SkolemState) -> Self {
        SkolemFactory {
            assigned: state.assigned,
            counters: state.counters,
        }
    }

    /// The next identity discriminator `mk` would assign for `class`.
    pub fn counter(&self, class: &ClassName) -> u64 {
        self.counters.get(class).copied().unwrap_or(0)
    }

    /// A copy of all per-class counters — a cheap watermark to take before a
    /// unit of work so [`assignments_since`](Self::assignments_since) can
    /// extract exactly the assignments that work created.
    pub fn counter_snapshot(&self) -> BTreeMap<ClassName, u64> {
        self.counters.clone()
    }

    /// The assignments created since a [`counter_snapshot`](Self::counter_snapshot)
    /// was taken: every `(class, key, oid)` whose discriminator is at or past
    /// the snapshotted counter, in deterministic `(class, id)` order.
    /// Identity discriminators are minted monotonically per class, so the
    /// watermark comparison is exact.
    pub fn assignments_since(
        &self,
        before: &BTreeMap<ClassName, u64>,
    ) -> Vec<(ClassName, Value, Oid)> {
        let mut out = Vec::new();
        for (class, keys) in &self.assigned {
            let watermark = before.get(class).copied().unwrap_or(0);
            let mut fresh: Vec<(ClassName, Value, Oid)> = keys
                .iter()
                .filter(|(_, oid)| oid.id() >= watermark)
                .map(|(key, oid)| (class.clone(), key.clone(), oid.clone()))
                .collect();
            fresh.sort_by_key(|(_, _, oid)| oid.id());
            out.extend(fresh);
        }
        out
    }

    /// Re-register one assignment during recovery: the key maps to `oid` and
    /// the class counter moves past it, so replaying a write-ahead log of
    /// assignments reproduces the factory that produced them.
    pub fn restore_assignment(&mut self, class: &ClassName, key: Value, oid: Oid) {
        let counter = self.counters.entry(class.clone()).or_insert(0);
        *counter = (*counter).max(oid.id() + 1);
        self.assigned
            .entry(class.clone())
            .or_default()
            .insert(key, oid);
    }

    /// Pre-register identities for every object of `class` in `instance`,
    /// keyed by `spec`. Used when a transformation's target already contains
    /// data that new objects must merge with.
    pub fn seed_from_instance(
        &mut self,
        class: &ClassName,
        spec: &KeySpec,
        instance: &Instance,
    ) -> Result<()> {
        for oid in instance.extent(class) {
            let key = spec.eval(oid, instance)?;
            self.assigned
                .entry(class.clone())
                .or_default()
                .insert(key, oid.clone());
            let counter = self.counters.entry(class.clone()).or_insert(0);
            *counter = (*counter).max(oid.id() + 1);
        }
        Ok(())
    }
}

/// Serializable view of a [`SkolemFactory`]'s complete state (the key→identity
/// memo plus per-class counters), produced by
/// [`SkolemFactory::export_state`] and consumed by
/// [`SkolemFactory::from_state`]. The persistence layer stores this inside
/// snapshots so a recovered pipeline's `Mk_C` calls are bit-identical to an
/// uncrashed run's.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SkolemState {
    /// Per-class memo from key value to assigned identity.
    pub assigned: BTreeMap<ClassName, BTreeMap<Value, Oid>>,
    /// Per-class next-discriminator counters.
    pub counters: BTreeMap<ClassName, u64>,
}

// ---------------------------------------------------------------------------
// The two-phase key-claim protocol.
// ---------------------------------------------------------------------------

/// The high bit tags *provisional* object identities minted by
/// [`SkolemClaims`]; real identities come from monotonically increasing
/// counters starting at zero and can never reach it in practice (`2^63`
/// creations). The tag guarantees a provisional identity can never collide
/// with — and therefore never be confused for, or rewritten over — a real
/// identity embedded in the same value.
const PROVISIONAL_TAG: u64 = 1 << 63;

/// Globally unique arena numbers, so provisional identities from different
/// arenas (different workers, different queries, different operators) never
/// collide either. The counter is process-global and unordered across
/// threads, but provisional identities never escape a resolution pass, so
/// outputs stay deterministic.
static NEXT_ARENA: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// Provisional-identity layout below the tag bit: 39 bits of arena number
/// (bits 24–62) above [`ARENA_SHIFT`] bits of per-arena claim index. Both
/// fields are *hard*-asserted at mint time — an overflow must fail loudly,
/// because wrapping would let two live arenas (or two claims of one arena)
/// collide and silently corrupt the resolution rewrite. The budgets are
/// generous: ~5.5 × 10¹¹ arenas per process and ~1.6 × 10⁷ distinct claims
/// per arena (one arena covers a single worker's partition of one operator,
/// or one query evaluation).
const ARENA_SHIFT: u32 = 24;

/// Exclusive upper bound on arena numbers (39 usable bits).
const MAX_ARENAS: u64 = 1 << (63 - ARENA_SHIFT);

/// Exclusive upper bound on per-arena claim indices.
const MAX_CLAIMS: u64 = 1 << ARENA_SHIFT;

/// A per-worker Skolem *claim arena* — one side of the two-phase key-claim
/// protocol that lets Skolem-bearing work run off the main thread while the
/// produced target stays bit-identical to a sequential run.
///
/// WOL's Skolem semantics (Section 4) define object identity by *key*, not
/// by allocation order, so which worker first evaluates `Mk_C(k)` cannot be
/// allowed to matter. The protocol (cf. database-ASM update-set consistency:
/// parallel updates are consistent exactly when their key claims do not
/// conflict):
///
/// 1. **Claim phase (workers).** Instead of touching the shared
///    [`SkolemFactory`], a worker calls [`SkolemClaims::mk`], which hands
///    back a *provisional* identity (tagged so it can never collide with a
///    real one, unique per arena) and records the `(class, key)` claim in
///    first-encounter order. Repeated keys within one arena reuse their
///    provisional identity without a new claim — exactly the factory's
///    memoisation, worker-locally.
/// 2. **Resolution phase (the owner, in input order).** The arenas are
///    drained *in partition order* ([`SkolemClaims::resolve_into`]): each
///    claim's key — rewritten through the resolutions so far, so nested
///    Skolem keys resolve inside-out — is fed to the real factory, which
///    assigns identities in exactly the order a sequential run would have
///    (a worker's first encounter of a key is the chunk-order first
///    encounter; partitions concatenate in input order). Duplicate claims
///    across workers resolve to the *same* final identity, realising the
///    "consistent update set" of conflicting-by-key parallel writes.
/// 3. The resulting provisional→final map rewrites the workers' outputs
///    ([`Value::map_oids`]), after which no provisional identity survives.
///
/// Provisional identities are only sound where they are never *compared*
/// against real identities — flowing into output values, or into the keys of
/// later claims. The executors gate which expressions qualify
/// (`Expr::skolem_parallel_safe` in `cpl`).
#[derive(Debug)]
pub struct SkolemClaims {
    arena: u64,
    /// Per-class memo of already-claimed keys — nested so the hot-path
    /// lookup ([`SkolemClaims::mk`] on a repeated key) borrows the class and
    /// key instead of cloning them into a composite lookup key.
    assigned: BTreeMap<ClassName, BTreeMap<Value, Oid>>,
    claims: Vec<(ClassName, Value)>,
}

impl SkolemClaims {
    /// A fresh, empty arena with a process-unique provisional namespace.
    pub fn new() -> Self {
        let arena = NEXT_ARENA.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        assert!(
            arena < MAX_ARENAS,
            "provisional arena numbers exhausted (2^39 arenas minted in one process)"
        );
        SkolemClaims {
            arena,
            assigned: BTreeMap::new(),
            claims: Vec::new(),
        }
    }

    /// Apply `Mk_class(key)` provisionally: return the arena-local identity
    /// for the key value, recording a claim on first encounter. Repeated
    /// keys — the hot path on merging inserts — answer from the memo
    /// without allocating.
    pub fn mk(&mut self, class: &ClassName, key: &Value) -> Oid {
        if let Some(existing) = self.assigned.get(class).and_then(|keys| keys.get(key)) {
            return existing.clone();
        }
        let index = self.claims.len() as u64;
        assert!(
            index < MAX_CLAIMS,
            "claim arena overflow (2^24 distinct keys claimed by one worker)"
        );
        let id = PROVISIONAL_TAG | (self.arena << ARENA_SHIFT) | index;
        let oid = Oid::new(class.clone(), id);
        self.assigned
            .entry(class.clone())
            .or_default()
            .insert(key.clone(), oid.clone());
        self.claims.push((class.clone(), key.clone()));
        oid
    }

    /// Number of claims recorded so far — a *mark* callers can take before a
    /// unit of work to delimit the claims that work recorded
    /// (`claims[mark_before..mark_after]`), so resolution can interleave
    /// claim replay with other factory calls exactly as a sequential run
    /// interleaved them.
    pub fn mark(&self) -> usize {
        self.claims.len()
    }

    /// True if the arena recorded no claims.
    pub fn is_empty(&self) -> bool {
        self.claims.is_empty()
    }

    /// Replay the claims in `range` (in claim order) through `mk`, extending
    /// `resolved` with this arena's provisional→final assignments. Claim
    /// keys are rewritten through `resolved` first, so a key built from an
    /// earlier provisional identity (a nested Skolem) resolves to the key a
    /// sequential run would have used. `mk` is usually the real factory's
    /// [`SkolemFactory::mk`], but a claim context resolving nested arenas
    /// re-claims into its own arena instead.
    pub fn replay_range_into(
        &self,
        range: std::ops::Range<usize>,
        resolved: &mut BTreeMap<Oid, Oid>,
        mk: &mut impl FnMut(&ClassName, &Value) -> Oid,
    ) {
        for (index, (class, key)) in self.claims[range.clone()].iter().enumerate() {
            let key = if key.contains_oid() {
                key.map_oids(&mut |oid| resolved.get(oid).cloned().unwrap_or_else(|| oid.clone()))
            } else {
                key.clone()
            };
            let final_oid = mk(class, &key);
            let id = PROVISIONAL_TAG | (self.arena << ARENA_SHIFT) | (range.start + index) as u64;
            resolved.insert(Oid::new(class.clone(), id), final_oid);
        }
    }

    /// Resolve the claims in `range` against `factory` (see
    /// [`replay_range_into`](Self::replay_range_into)).
    pub fn resolve_range_into(
        &self,
        range: std::ops::Range<usize>,
        factory: &mut SkolemFactory,
        resolved: &mut BTreeMap<Oid, Oid>,
    ) {
        self.replay_range_into(range, resolved, &mut |class, key| factory.mk(class, key));
    }

    /// Resolve *all* of this arena's claims against `factory` (see
    /// [`replay_range_into`](Self::replay_range_into)).
    pub fn resolve_into(&self, factory: &mut SkolemFactory, resolved: &mut BTreeMap<Oid, Oid>) {
        self.resolve_range_into(0..self.claims.len(), factory, resolved);
    }
}

impl Default for SkolemClaims {
    fn default() -> Self {
        Self::new()
    }
}

/// Rewrite every provisional identity in `value` through the resolution map;
/// identities without an entry (real ones) pass through unchanged. Cheap
/// no-op clone-free check first: most values carry no identities at all.
pub fn rewrite_resolved(value: &Value, resolved: &BTreeMap<Oid, Oid>) -> Value {
    if resolved.is_empty() || !value.contains_oid() {
        return value.clone();
    }
    value.map_oids(&mut |oid| resolved.get(oid).cloned().unwrap_or_else(|| oid.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euro_instance() -> (Instance, Oid, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("United Kingdom"))]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("France"))]),
        );
        let paris = inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Paris")),
                ("country", Value::oid(fr.clone())),
            ]),
        );
        (inst, uk, fr, paris)
    }

    fn euro_keys() -> KeySpec {
        // Example 2.3 of the paper.
        KeySpec::new()
            .with_key("CountryE", KeyExpr::path("name"))
            .with_key(
                "CityE",
                KeyExpr::record([
                    ("name", KeyExpr::path("name")),
                    ("country_name", KeyExpr::path("country.name")),
                ]),
            )
    }

    #[test]
    fn key_evaluation_follows_example_2_3() {
        let (inst, _, _, paris) = euro_instance();
        let keys = euro_keys();
        let key = keys.eval(&paris, &inst).unwrap();
        assert_eq!(
            key,
            Value::record([
                ("name", Value::str("Paris")),
                ("country_name", Value::str("France"))
            ])
        );
    }

    #[test]
    fn key_spec_lookup() {
        let keys = euro_keys();
        assert!(keys.has_key(&ClassName::new("CountryE")));
        assert!(!keys.has_key(&ClassName::new("StateA")));
        assert_eq!(keys.len(), 2);
        assert!(!keys.is_empty());
        assert_eq!(keys.classes().count(), 2);
    }

    #[test]
    fn satisfied_key_spec_checks_ok() {
        let (inst, _, _, _) = euro_instance();
        assert!(euro_keys().check(&inst).is_ok());
    }

    #[test]
    fn violated_key_spec_detected() {
        let (mut inst, _, _, _) = euro_instance();
        // A second country also called France violates the name key.
        inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("France"))]),
        );
        let err = euro_keys().check(&inst).unwrap_err();
        assert!(matches!(err, ModelError::KeyViolation { .. }));
    }

    #[test]
    fn key_containing_oid_rejected() {
        let (inst, _, _, paris) = euro_instance();
        let keys = KeySpec::new().with_key("CityE", KeyExpr::path("country"));
        let err = keys.eval(&paris, &inst).unwrap_err();
        assert_eq!(err, ModelError::KeyContainsOid(ClassName::new("CityE")));
    }

    #[test]
    fn unkeyed_class_eval_fails() {
        let (inst, uk, _, _) = euro_instance();
        let keys = KeySpec::new();
        assert!(keys.eval(&uk, &inst).is_err());
    }

    #[test]
    fn index_maps_keys_to_oids() {
        let (inst, uk, fr, _) = euro_instance();
        let keys = euro_keys();
        let index = keys.index(&ClassName::new("CountryE"), &inst).unwrap();
        assert_eq!(index.get(&Value::str("United Kingdom")), Some(&uk));
        assert_eq!(index.get(&Value::str("France")), Some(&fr));
    }

    #[test]
    fn skolem_factory_is_deterministic_and_injective() {
        let mut factory = SkolemFactory::new();
        let country = ClassName::new("CountryT");
        let a = factory.mk(&country, &Value::str("France"));
        let b = factory.mk(&country, &Value::str("France"));
        let c = factory.mk(&country, &Value::str("Germany"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(factory.count(&country), 2);
        assert_eq!(factory.len(), 2);
        assert!(!factory.is_empty());
        assert_eq!(factory.lookup(&country, &Value::str("France")), Some(&a));
        assert_eq!(factory.key_of(&a), Some(&Value::str("France")));
        assert_eq!(factory.key_of(&Oid::new(country, 99)), None);
    }

    #[test]
    fn skolem_factory_separates_classes() {
        let mut factory = SkolemFactory::new();
        let a = factory.mk(&ClassName::new("CountryT"), &Value::str("France"));
        let b = factory.mk(&ClassName::new("CityT"), &Value::str("France"));
        assert_ne!(a, b);
        assert_eq!(a.class(), &ClassName::new("CountryT"));
        assert_eq!(b.class(), &ClassName::new("CityT"));
    }

    #[test]
    fn seed_from_instance_reuses_existing_oids() {
        let (inst, uk, fr, _) = euro_instance();
        let keys = euro_keys();
        let mut factory = SkolemFactory::new();
        factory
            .seed_from_instance(&ClassName::new("CountryE"), &keys, &inst)
            .unwrap();
        // Asking for an existing key returns the existing identity...
        let again = factory.mk(&ClassName::new("CountryE"), &Value::str("France"));
        assert_eq!(again, fr);
        // ... and a new key gets a fresh identity that does not collide.
        let fresh = factory.mk(&ClassName::new("CountryE"), &Value::str("Spain"));
        assert_ne!(fresh, uk);
        assert_ne!(fresh, fr);
    }

    /// The two-phase protocol's core guarantee: resolving per-worker claim
    /// arenas in partition order reproduces the numbering a sequential
    /// first-call-order run produces, with duplicate keys across arenas
    /// mapping to one final identity.
    #[test]
    fn claims_resolve_to_sequential_first_call_numbering() {
        let class = ClassName::new("CountryT");
        // Sequential reference: keys in row order a, b, a, c.
        let mut reference = SkolemFactory::new();
        let seq: Vec<Oid> = ["a", "b", "a", "c"]
            .iter()
            .map(|k| reference.mk(&class, &Value::str(*k)))
            .collect();
        // Two workers over the same row order: worker 0 sees (a, b), worker
        // 1 sees (a, c) — a duplicate claim of `a` across workers.
        let mut w0 = SkolemClaims::new();
        let mut w1 = SkolemClaims::new();
        let p0a = w0.mk(&class, &Value::str("a"));
        let p0b = w0.mk(&class, &Value::str("b"));
        let p1a = w1.mk(&class, &Value::str("a"));
        let p1c = w1.mk(&class, &Value::str("c"));
        // Provisional identities are tagged, arena-unique and memoised.
        assert!(p0a.id() >= (1 << 62));
        assert_ne!(p0a, p1a, "different arenas must not share identities");
        assert_eq!(w0.mk(&class, &Value::str("a")), p0a);
        assert_eq!(w0.mark(), 2);
        assert!(!w0.is_empty());
        // Resolution in partition order.
        let mut factory = SkolemFactory::new();
        let mut resolved = BTreeMap::new();
        w0.resolve_into(&mut factory, &mut resolved);
        w1.resolve_into(&mut factory, &mut resolved);
        assert_eq!(resolved[&p0a], seq[0]);
        assert_eq!(resolved[&p0b], seq[1]);
        assert_eq!(resolved[&p1a], seq[0], "duplicate key claims must merge");
        assert_eq!(resolved[&p1c], seq[3]);
        assert_eq!(factory.len(), 3);
    }

    /// Nested Skolem keys — an outer claim whose key embeds an inner claim's
    /// provisional identity — resolve inside-out, matching the sequential
    /// evaluation order (the inner `mk` always happens first).
    #[test]
    fn nested_claim_keys_are_rewritten_before_resolution() {
        let inner_class = ClassName::new("CountryT");
        let outer_class = ClassName::new("CityT");
        let mut reference = SkolemFactory::new();
        let seq_inner = reference.mk(&inner_class, &Value::str("France"));
        let seq_outer = reference.mk(
            &outer_class,
            &Value::record([
                ("name", Value::str("Paris")),
                ("country", Value::oid(seq_inner.clone())),
            ]),
        );
        let mut claims = SkolemClaims::new();
        let p_inner = claims.mk(&inner_class, &Value::str("France"));
        let p_outer = claims.mk(
            &outer_class,
            &Value::record([
                ("name", Value::str("Paris")),
                ("country", Value::oid(p_inner.clone())),
            ]),
        );
        let mut factory = SkolemFactory::new();
        let mut resolved = BTreeMap::new();
        claims.resolve_into(&mut factory, &mut resolved);
        assert_eq!(resolved[&p_inner], seq_inner);
        assert_eq!(resolved[&p_outer], seq_outer);
        // And rewriting a produced value erases every provisional identity.
        let produced = Value::record([
            ("city", Value::oid(p_outer)),
            ("list", Value::list([Value::oid(p_inner)])),
        ]);
        let rewritten = rewrite_resolved(&produced, &resolved);
        assert_eq!(
            rewritten,
            Value::record([
                ("city", Value::oid(seq_outer)),
                ("list", Value::list([Value::oid(seq_inner)])),
            ])
        );
    }

    /// Claim ranges let resolution interleave with other factory calls:
    /// claims recorded before a mark resolve before a direct `mk`, claims
    /// after it resolve after — reproducing a sequential interleaving.
    #[test]
    fn claim_ranges_interleave_with_direct_factory_calls() {
        let class = ClassName::new("T");
        let mut reference = SkolemFactory::new();
        let seq: Vec<Oid> = ["x", "k", "y"]
            .iter()
            .map(|k| reference.mk(&class, &Value::str(*k)))
            .collect();
        let mut claims = SkolemClaims::new();
        let px = claims.mk(&class, &Value::str("x"));
        let before = claims.mark();
        let py = claims.mk(&class, &Value::str("y"));
        let mut factory = SkolemFactory::new();
        let mut resolved = BTreeMap::new();
        claims.resolve_range_into(0..before, &mut factory, &mut resolved);
        let mid = factory.mk(&class, &Value::str("k"));
        claims.resolve_range_into(before..claims.mark(), &mut factory, &mut resolved);
        assert_eq!(resolved[&px], seq[0]);
        assert_eq!(mid, seq[1]);
        assert_eq!(resolved[&py], seq[2]);
        // Rewriting a value with no identities is a cheap clone.
        assert_eq!(
            rewrite_resolved(&Value::str("plain"), &resolved),
            Value::str("plain")
        );
    }

    /// Export → import round-trips a factory bit-identically: old keys keep
    /// their identities and new keys mint exactly what the original would.
    #[test]
    fn skolem_state_round_trip_is_bit_identical() {
        let class = ClassName::new("CountryT");
        let mut factory = SkolemFactory::new();
        let fr = factory.mk(&class, &Value::str("France"));
        let de = factory.mk(&class, &Value::str("Germany"));
        let state = factory.export_state();
        assert_eq!(
            SkolemFactory::from_state(state.clone()).export_state(),
            state
        );

        let mut restored = SkolemFactory::from_state(state);
        assert_eq!(restored.mk(&class, &Value::str("France")), fr);
        assert_eq!(restored.mk(&class, &Value::str("Germany")), de);
        // The next fresh key gets the identity the original factory mints.
        assert_eq!(
            restored.mk(&class, &Value::str("Spain")),
            factory.mk(&class, &Value::str("Spain"))
        );
        assert_eq!(restored.counter(&class), 3);
        assert_eq!(restored.counter(&ClassName::new("Other")), 0);
    }

    /// Watermark deltas capture exactly the assignments made after the
    /// snapshot, and restoring them onto the pre-snapshot factory reproduces
    /// the post-snapshot factory.
    #[test]
    fn assignments_since_extracts_and_restores_the_delta() {
        let country = ClassName::new("CountryT");
        let city = ClassName::new("CityT");
        let mut factory = SkolemFactory::new();
        factory.mk(&country, &Value::str("France"));
        let mark = factory.counter_snapshot();
        let before_state = factory.export_state();

        let de = factory.mk(&country, &Value::str("Germany"));
        let paris = factory.mk(&city, &Value::str("Paris"));
        assert_eq!(factory.mk(&country, &Value::str("France")).id(), 0);

        let delta = factory.assignments_since(&mark);
        assert_eq!(
            delta,
            vec![
                (city.clone(), Value::str("Paris"), paris),
                (country.clone(), Value::str("Germany"), de),
            ]
        );
        let mut restored = SkolemFactory::from_state(before_state);
        for (class, key, oid) in delta {
            restored.restore_assignment(&class, key, oid);
        }
        assert_eq!(restored.export_state(), factory.export_state());
    }

    #[test]
    fn key_expr_display() {
        let k = KeyExpr::record([
            ("name", KeyExpr::path("name")),
            ("country_name", KeyExpr::path("country.name")),
        ]);
        let rendered = k.to_string();
        assert!(rendered.contains("name = x.name"));
        assert!(rendered.contains("country_name = x.country.name"));
    }
}
