//! Constraint checking and constraint analysis.
//!
//! WOL expresses constraints in the same clausal formalism as transformations
//! (Section 3.1). This module provides:
//!
//! * [`check_constraint`] / [`check_constraints`]: decide whether instances
//!   satisfy a constraint clause — "for any instantiation of the variables in
//!   the body which makes all the body atoms true, there is an instantiation
//!   of any additional variables in the head which makes all the head atoms
//!   true";
//! * [`classify_constraint`]: recognise the constraint patterns the engine can
//!   exploit (Skolem-style key constraints like (C2)/(C3), merge-style key
//!   constraints like (C5)/(C8), existence constraints like (C4), and general
//!   constraints);
//! * [`extract_object_keys`] and [`extract_merge_keys`]: pull key information
//!   out of a program's constraints for use by normalisation (Section 4.1) and
//!   by the source-constraint optimiser (Section 4.2);
//! * [`incremental`]: delta-restricted, worker-pool-parallel constraint
//!   checking for mutation batches, with auditable
//!   [`ConstraintCertificate`](incremental::ConstraintCertificate)s.

pub mod incremental;

use std::collections::BTreeMap;

use wol_lang::ast::{Atom, Clause, SkolemArgs, Term, Var};
use wol_model::{ClassName, Label, Oid, Path, SkolemFactory, Value};

use crate::env::{match_body, try_eval_term, Bindings, Databases};
use crate::error::EngineError;
use crate::Result;

/// The key of a target class as used by Skolem terms: an ordered list of
/// labelled attribute paths whose values (or referenced objects) determine the
/// object's identity.
///
/// For the paper's Example 2.3 / clauses (C2)–(C3):
/// `CountryT` has key `[("key", name)]` and `CityT` has key
/// `[("name", name), ("country", country)]`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectKey {
    /// The class the key belongs to.
    pub class: ClassName,
    /// Labelled key parts; each path is projected from the object.
    pub parts: Vec<(Label, Path)>,
}

impl ObjectKey {
    /// A key consisting of a single attribute.
    pub fn single(class: impl Into<ClassName>, attr: impl Into<String>) -> Self {
        let attr = attr.into();
        ObjectKey {
            class: class.into(),
            parts: vec![(attr.clone(), Path::parse(&attr))],
        }
    }

    /// A key made of several labelled attribute paths.
    pub fn composite<I, L, P>(class: impl Into<ClassName>, parts: I) -> Self
    where
        I: IntoIterator<Item = (L, P)>,
        L: Into<Label>,
        P: Into<Path>,
    {
        ObjectKey {
            class: class.into(),
            parts: parts
                .into_iter()
                .map(|(l, p)| (l.into(), p.into()))
                .collect(),
        }
    }

    /// The attribute labels that begin each key path (the attributes a clause
    /// must provide to determine the key).
    pub fn leading_attributes(&self) -> Vec<Label> {
        self.parts
            .iter()
            .filter_map(|(_, p)| p.segments().first().cloned())
            .collect()
    }
}

/// How a constraint clause is classified for use by the engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConstraintClass {
    /// `X = Mk_C(...) <= X in C, ...` — a Skolem-style key constraint giving
    /// the surrogate key of class `C` (clauses (C2), (C3)).
    SkolemKey(ObjectKey),
    /// `X = Y <= X in C, Y in C, X.p = Y.p, ...` — a merge-style key (functional
    /// dependency onto identity) on class `C` (clauses (C5), (C8), (C11)-like).
    MergeKey {
        /// The class constrained.
        class: ClassName,
        /// The paths that jointly determine the object.
        paths: Vec<Path>,
    },
    /// Head asserts existence of an object of some class for every body match
    /// (clause (C4), inclusion-dependency-like constraints (C6), (C7)).
    Existence {
        /// The class whose extent must contain a witness.
        class: ClassName,
    },
    /// Anything else.
    General,
}

/// Decide whether an equality atom equates `var.path` with some term,
/// returning the path and the other term.
fn as_projection_of<'a>(atom: &'a Atom, var: &str) -> Option<(Path, &'a Term)> {
    let (s, t) = match atom {
        Atom::Eq(s, t) => (s, t),
        _ => return None,
    };
    for (proj, other) in [(s, t), (t, s)] {
        if let Some((base, labels)) = proj.as_var_path() {
            if base == var && !labels.is_empty() {
                let path = Path::new(labels.iter().map(|l| l.to_string()));
                return Some((path, other));
            }
        }
    }
    None
}

/// Classify a constraint clause.
pub fn classify_constraint(clause: &Clause) -> ConstraintClass {
    // Skolem-style key: head is a single `X = Mk_C(args)` with X a variable.
    if clause.head.len() == 1 {
        if let Atom::Eq(lhs, rhs) = &clause.head[0] {
            let (var, skolem) = match (lhs, rhs) {
                (Term::Var(v), Term::Skolem(c, a)) => (Some((v, c, a)), None),
                (Term::Skolem(c, a), Term::Var(v)) => (None, Some((v, c, a))),
                _ => (None, None),
            };
            if let Some((v, class, args)) = var.or(skolem) {
                // The body must assert `v in class` and define each Skolem
                // argument variable as a projection of `v`.
                let member_ok = clause
                    .body
                    .iter()
                    .any(|a| matches!(a, Atom::Member(Term::Var(m), c) if m == v && c == class));
                if member_ok {
                    if let Some(parts) = skolem_key_parts(v, class, args, &clause.body) {
                        return ConstraintClass::SkolemKey(ObjectKey {
                            class: class.clone(),
                            parts,
                        });
                    }
                }
            }
        }
        // Merge-style key: head `X = Y`, body `X in C, Y in C` plus path equations.
        if let Atom::Eq(Term::Var(x), Term::Var(y)) = &clause.head[0] {
            if let Some((class, paths)) = merge_key_parts(x, y, &clause.body) {
                return ConstraintClass::MergeKey { class, paths };
            }
        }
    }
    // Existence constraint: some head atom is a membership over a variable
    // that does not occur in the body.
    let body_vars = clause.body_variables();
    for atom in &clause.head {
        if let Atom::Member(Term::Var(v), class) = atom {
            if !body_vars.contains(v) {
                return ConstraintClass::Existence {
                    class: class.clone(),
                };
            }
        }
    }
    ConstraintClass::General
}

fn skolem_key_parts(
    object_var: &str,
    _class: &ClassName,
    args: &SkolemArgs,
    body: &[Atom],
) -> Option<Vec<(Label, Path)>> {
    // Map each argument term to an attribute path of the object variable.
    let resolve = |term: &Term| -> Option<Path> {
        match term {
            // Direct projection of the object: Mk_C(... = X.name ...)
            Term::Proj(_, _) => {
                let (base, labels) = term.as_var_path()?;
                if base == object_var {
                    Some(Path::new(labels.iter().map(|l| l.to_string())))
                } else {
                    None
                }
            }
            // A variable defined by a body equation `V = X.path` / `X.path = V`.
            Term::Var(v) => body.iter().find_map(|a| {
                let (path, other) = as_projection_of(a, object_var)?;
                match other {
                    Term::Var(o) if o == v => Some(path),
                    _ => None,
                }
            }),
            _ => None,
        }
    };
    match args {
        SkolemArgs::Positional(ts) => {
            let mut parts = Vec::new();
            for (i, t) in ts.iter().enumerate() {
                let path = resolve(t)?;
                let label = path
                    .segments()
                    .last()
                    .cloned()
                    .unwrap_or_else(|| format!("arg{i}"));
                parts.push((label, path));
            }
            Some(parts)
        }
        SkolemArgs::Named(fields) => {
            let mut parts = Vec::new();
            for (label, t) in fields {
                let path = resolve(t)?;
                parts.push((label.clone(), path));
            }
            Some(parts)
        }
    }
}

fn merge_key_parts(x: &str, y: &str, body: &[Atom]) -> Option<(ClassName, Vec<Path>)> {
    // Both X and Y must be members of the same class.
    let class_of = |v: &str| {
        body.iter().find_map(|a| match a {
            Atom::Member(Term::Var(m), c) if m == v => Some(c.clone()),
            _ => None,
        })
    };
    let cx = class_of(x)?;
    let cy = class_of(y)?;
    if cx != cy {
        return None;
    }
    // Collect path equations linking X and Y: either `X.p = Y.p` directly, or
    // `X.p = V` and `Y.p = V` through a shared variable. Every body atom must
    // participate in the key (the two memberships plus the linking equations);
    // otherwise the clause is a *conditional* dependency — sound to check but
    // not sound to use as an unconditional key — and is classified as general.
    let mut paths: Vec<Path> = Vec::new();
    let mut used = vec![false; body.len()];
    let mut x_bindings: BTreeMap<String, Vec<(usize, Path, Var)>> = BTreeMap::new();
    for (i, atom) in body.iter().enumerate() {
        match atom {
            Atom::Member(Term::Var(m), _) if m == x || m == y => used[i] = true,
            _ => {}
        }
        if let Some((path, other)) = as_projection_of(atom, x) {
            if let Some((base, labels)) = other.as_var_path() {
                if base == y {
                    let other_path = Path::new(labels.iter().map(|l| l.to_string()));
                    if other_path == path {
                        paths.push(path);
                        used[i] = true;
                        continue;
                    }
                } else if labels.is_empty() {
                    x_bindings
                        .entry(path.to_string())
                        .or_default()
                        .push((i, path, base.clone()));
                }
            }
        }
    }
    for (j, atom) in body.iter().enumerate() {
        if let Some((path, other)) = as_projection_of(atom, y) {
            if let (Some(entries), Some((base, labels))) =
                (x_bindings.get(&path.to_string()), other.as_var_path())
            {
                if labels.is_empty() {
                    for (i, x_path, x_var) in entries {
                        if x_var == base {
                            if !paths.contains(x_path) {
                                paths.push(x_path.clone());
                            }
                            used[*i] = true;
                            used[j] = true;
                        }
                    }
                }
            }
        }
    }
    if paths.is_empty() || used.iter().any(|u| !u) {
        None
    } else {
        Some((cx, paths))
    }
}

/// Extract Skolem-style object keys (for the *target* side of a program) from
/// a set of constraint clauses. Used to drive normalisation (Section 4.1: key
/// constraints "must be combined ... to completely specify an object").
pub fn extract_object_keys(clauses: &[&Clause]) -> BTreeMap<ClassName, ObjectKey> {
    let mut out = BTreeMap::new();
    for clause in clauses {
        if let ConstraintClass::SkolemKey(key) = classify_constraint(clause) {
            out.entry(key.class.clone()).or_insert(key);
        }
    }
    out
}

/// Extract merge-style keys (for the *source* side) from a set of constraint
/// clauses. Used by the optimiser (Section 4.2, Example 4.1).
pub fn extract_merge_keys(clauses: &[&Clause]) -> BTreeMap<ClassName, Vec<Path>> {
    let mut out = BTreeMap::new();
    for clause in clauses {
        if let ConstraintClass::MergeKey { class, paths } = classify_constraint(clause) {
            out.entry(class).or_insert(paths);
        }
    }
    out
}

/// A single constraint violation, for reporting.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Label of the violated clause (or `<unlabelled>`).
    pub clause: String,
    /// Description of the binding that has no head witness.
    pub detail: String,
    /// Object identities participating in the violating binding, in binding
    /// order, deduplicated. Empty when the violation involves no objects.
    pub oids: Vec<Oid>,
}

/// Object identities occurring directly in the given values, deduplicated,
/// preserving first-occurrence order.
fn oid_witnesses<'a>(values: impl IntoIterator<Item = &'a Value>) -> Vec<Oid> {
    let mut out: Vec<Oid> = Vec::new();
    for value in values {
        if let Value::Oid(oid) = value {
            if !out.contains(oid) {
                out.push(oid.clone());
            }
        }
    }
    out
}

/// Check a single constraint clause against the given databases.
pub fn check_constraint(clause: &Clause, dbs: &Databases<'_>) -> Result<Vec<Violation>> {
    Ok(check_constraint_counted(clause, dbs)?.0)
}

/// [`check_constraint`], also reporting how many body bindings were examined
/// (the work metric recorded in constraint certificates).
pub(crate) fn check_constraint_counted(
    clause: &Clause,
    dbs: &Databases<'_>,
) -> Result<(Vec<Violation>, u64)> {
    let mut skolem = SkolemFactory::new();
    let clause_name = clause
        .label
        .clone()
        .unwrap_or_else(|| "<unlabelled>".to_string());
    let mut violations = Vec::new();

    // Split the head: equalities with a Skolem side are interpreted as
    // functional/injective key requirements; the rest need a witness.
    let mut key_atoms = Vec::new();
    let mut witness_atoms = Vec::new();
    for atom in &clause.head {
        match atom {
            Atom::Eq(s, t)
                if matches!(s, Term::Skolem(_, _)) || matches!(t, Term::Skolem(_, _)) =>
            {
                key_atoms.push(atom.clone())
            }
            _ => witness_atoms.push(atom.clone()),
        }
    }

    // Functionality/injectivity state for Skolem key atoms across all bindings.
    let mut key_to_obj: BTreeMap<(ClassName, Value), Value> = BTreeMap::new();
    let mut obj_to_key: BTreeMap<(ClassName, Value), Value> = BTreeMap::new();

    let body_bindings = match_body(&clause.body, dbs, &mut skolem, Bindings::new())?;
    let mut checked: u64 = 0;
    for binding in body_bindings {
        checked += 1;
        // 1. Skolem key atoms.
        for atom in &key_atoms {
            let Atom::Eq(s, t) = atom else { unreachable!() };
            let (object_term, class, args) = match (s, t) {
                (Term::Skolem(c, a), other) => (other, c, a),
                (other, Term::Skolem(c, a)) => (other, c, a),
                _ => unreachable!(),
            };
            let key_value =
                crate::env::eval_skolem_key(args, &binding, dbs, &mut skolem).map_err(|e| {
                    EngineError::Eval(format!("cannot evaluate Skolem key in {clause_name}: {e}"))
                })?;
            let Some(object_value) = try_eval_term(object_term, &binding, dbs, &mut skolem) else {
                // The object is existential: the Skolem function always
                // provides a witness, so nothing to check.
                continue;
            };
            let class_key = (class.clone(), key_value.clone());
            if let Some(previous) = key_to_obj.get(&class_key) {
                if previous != &object_value {
                    violations.push(Violation {
                        clause: clause_name.clone(),
                        detail: format!(
                            "key {key_value:?} of class `{class}` is associated with two distinct objects"
                        ),
                        oids: oid_witnesses([previous, &object_value]),
                    });
                    continue;
                }
            }
            key_to_obj.insert(class_key, object_value.clone());
            let obj_key = (class.clone(), object_value);
            if let Some(previous) = obj_to_key.get(&obj_key) {
                if previous != &key_value {
                    violations.push(Violation {
                        clause: clause_name.clone(),
                        detail: format!(
                            "an object of class `{class}` has two distinct key values ({previous:?} and {key_value:?})"
                        ),
                        oids: oid_witnesses([&obj_key.1]),
                    });
                    continue;
                }
            }
            obj_to_key.insert(obj_key, key_value);
        }
        // 2. Witness atoms: there must exist an extension of the binding
        //    satisfying all of them.
        if witness_atoms.is_empty() {
            continue;
        }
        let witnesses = match_body(&witness_atoms, dbs, &mut skolem, binding.clone());
        let satisfied = match witnesses {
            Ok(list) => !list.is_empty(),
            Err(_) => false,
        };
        if !satisfied {
            violations.push(Violation {
                clause: clause_name.clone(),
                detail: format!("no head witness for binding {}", describe_binding(&binding)),
                oids: oid_witnesses(binding.iter().map(|(_, v)| v)),
            });
        }
    }
    Ok((violations, checked))
}

/// Check several constraints; returns all violations found.
pub fn check_constraints(clauses: &[&Clause], dbs: &Databases<'_>) -> Result<Vec<Violation>> {
    let mut out = Vec::new();
    for clause in clauses {
        out.extend(check_constraint(clause, dbs)?);
    }
    Ok(out)
}

/// Check constraints and fail if any are violated. The error carries the
/// *full* violation list in the deterministic order of
/// [`check_constraints`] (clause order, then binding order), so callers and
/// reports can show every violation instead of just the first.
pub fn enforce_constraints(clauses: &[&Clause], dbs: &Databases<'_>) -> Result<()> {
    let violations = check_constraints(clauses, dbs)?;
    if violations.is_empty() {
        Ok(())
    } else {
        Err(EngineError::ConstraintsViolated { violations })
    }
}

fn describe_binding(binding: &Bindings) -> String {
    let parts: Vec<String> = binding
        .iter()
        .map(|(k, v)| format!("{k} = {}", wol_model::display::render_value(v)))
        .collect();
    format!("[{}]", parts.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::parse_clause;
    use wol_model::{Instance, Oid};

    /// Build the European Cities and Countries instance from Example 2.2,
    /// optionally leaving France without a capital or giving the UK two.
    fn euro_instance(france_capital: bool, uk_double_capital: bool) -> Instance {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        let mut add_city = |name: &str, capital: bool, country: &Oid| {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        };
        add_city("London", true, &uk);
        add_city("Manchester", uk_double_capital, &uk);
        add_city("Paris", france_capital, &fr);
        inst
    }

    /// Clause (C4): every country has a capital city.
    fn clause_c4() -> Clause {
        parse_clause("C4: Y in CityE, Y.country = X, Y.is_capital = true <= X in CountryE").unwrap()
    }

    /// Clause (C5): at most one capital city per country.
    fn clause_c5() -> Clause {
        parse_clause(
            "C5: X = Y <= X in CityE, Y in CityE, X.country = Y.country, \
             X.is_capital = true, Y.is_capital = true",
        )
        .unwrap()
    }

    /// Clause (C8): name is a key for CountryE.
    fn clause_c8() -> Clause {
        parse_clause("C8: X = Y <= X in CountryE, Y in CountryE, X.name = Y.name").unwrap()
    }

    /// Clause (C3): key constraint on CountryT via a Skolem function.
    fn clause_c3() -> Clause {
        parse_clause("C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name").unwrap()
    }

    /// Clause (C2): composite key on CityT.
    fn clause_c2() -> Clause {
        parse_clause(
            "C2: X = Mk_CityT(name = N, country = C) <= X in CityT, N = X.name, C = X.country",
        )
        .unwrap()
    }

    #[test]
    fn c4_holds_when_every_country_has_a_capital() {
        let inst = euro_instance(true, false);
        let dbs = Databases::new(&[&inst][..]);
        assert!(check_constraint(&clause_c4(), &dbs).unwrap().is_empty());
    }

    #[test]
    fn c4_violated_when_a_country_lacks_a_capital() {
        let inst = euro_instance(false, false);
        let dbs = Databases::new(&[&inst][..]);
        let violations = check_constraint(&clause_c4(), &dbs).unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].clause, "C4");
        assert!(enforce_constraints(&[&clause_c4()], &dbs).is_err());
    }

    #[test]
    fn c5_violated_by_two_capitals() {
        let good = euro_instance(true, false);
        let bad = euro_instance(true, true);
        let dbs_good = Databases::new(&[&good][..]);
        let dbs_bad = Databases::new(&[&bad][..]);
        assert!(check_constraint(&clause_c5(), &dbs_good)
            .unwrap()
            .is_empty());
        let violations = check_constraint(&clause_c5(), &dbs_bad).unwrap();
        assert!(!violations.is_empty());
    }

    #[test]
    fn c8_detects_duplicate_country_names() {
        let mut inst = euro_instance(true, false);
        let dbs_holder = inst.clone();
        let dbs = Databases::new(&[&dbs_holder][..]);
        assert!(check_constraint(&clause_c8(), &dbs).unwrap().is_empty());
        inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("euro")),
            ]),
        );
        let dbs = Databases::new(&[&inst][..]);
        assert!(!check_constraint(&clause_c8(), &dbs).unwrap().is_empty());
    }

    #[test]
    fn skolem_key_constraint_checks_injectivity() {
        // Two CountryT objects with the same name violate the C3 key.
        let mut inst = Instance::new("target");
        inst.insert_fresh(
            &ClassName::new("CountryT"),
            Value::record([("name", Value::str("France"))]),
        );
        let ok_dbs_holder = inst.clone();
        let ok = Databases::new(&[&ok_dbs_holder][..]);
        assert!(check_constraint(&clause_c3(), &ok).unwrap().is_empty());
        inst.insert_fresh(
            &ClassName::new("CountryT"),
            Value::record([("name", Value::str("France"))]),
        );
        let dbs = Databases::new(&[&inst][..]);
        let violations = check_constraint(&clause_c3(), &dbs).unwrap();
        assert!(!violations.is_empty());
        assert!(violations[0].detail.contains("two distinct objects"));
    }

    #[test]
    fn classify_skolem_keys() {
        match classify_constraint(&clause_c3()) {
            ConstraintClass::SkolemKey(key) => {
                assert_eq!(key.class, ClassName::new("CountryT"));
                assert_eq!(key.parts.len(), 1);
                assert_eq!(key.parts[0].1, Path::parse("name"));
            }
            other => panic!("expected SkolemKey, got {other:?}"),
        }
        match classify_constraint(&clause_c2()) {
            ConstraintClass::SkolemKey(key) => {
                assert_eq!(key.class, ClassName::new("CityT"));
                assert_eq!(key.parts.len(), 2);
                assert_eq!(key.parts[0], ("name".to_string(), Path::parse("name")));
                assert_eq!(
                    key.parts[1],
                    ("country".to_string(), Path::parse("country"))
                );
                assert_eq!(
                    key.leading_attributes(),
                    vec!["name".to_string(), "country".to_string()]
                );
            }
            other => panic!("expected SkolemKey, got {other:?}"),
        }
    }

    #[test]
    fn classify_merge_keys_and_existence() {
        match classify_constraint(&clause_c8()) {
            ConstraintClass::MergeKey { class, paths } => {
                assert_eq!(class, ClassName::new("CountryE"));
                assert_eq!(paths, vec![Path::parse("name")]);
            }
            other => panic!("expected MergeKey, got {other:?}"),
        }
        // C5 is a *conditional* dependency (only among capital cities), so it
        // is checked as a constraint but not used as an unconditional key.
        assert_eq!(classify_constraint(&clause_c5()), ConstraintClass::General);
        match classify_constraint(&clause_c4()) {
            ConstraintClass::Existence { class } => assert_eq!(class, ClassName::new("CityE")),
            other => panic!("expected Existence, got {other:?}"),
        }
        let general = parse_clause("X.name = Y.name <= X in CityE, Y in CityE").unwrap();
        assert_eq!(classify_constraint(&general), ConstraintClass::General);
    }

    #[test]
    fn extract_key_maps() {
        let c2 = clause_c2();
        let c3 = clause_c3();
        let c8 = clause_c8();
        let keys = extract_object_keys(&[&c2, &c3, &c8]);
        assert_eq!(keys.len(), 2);
        assert!(keys.contains_key(&ClassName::new("CityT")));
        assert!(keys.contains_key(&ClassName::new("CountryT")));
        let merge = extract_merge_keys(&[&c2, &c3, &c8]);
        assert_eq!(merge.len(), 1);
        assert_eq!(
            merge[&ClassName::new("CountryE")],
            vec![Path::parse("name")]
        );
    }

    #[test]
    fn object_key_constructors() {
        let single = ObjectKey::single("CountryT", "name");
        assert_eq!(single.parts.len(), 1);
        let composite =
            ObjectKey::composite("CityT", [("name", "name"), ("country", "country.name")]);
        assert_eq!(composite.parts[1].1, Path::parse("country.name"));
    }

    #[test]
    fn constraint_c1_on_us_schema() {
        // (C1): X.state = Y <= Y in StateA, X = Y.capital — the capital of a
        // state must belong to that state.
        let mut inst = Instance::new("us");
        let pa = inst.insert_fresh(
            &ClassName::new("StateA"),
            Value::record([("name", Value::str("Pennsylvania"))]),
        );
        let phl = inst.insert_fresh(
            &ClassName::new("CityA"),
            Value::record([
                ("name", Value::str("Philadelphia")),
                ("state", Value::oid(pa.clone())),
            ]),
        );
        let mut with_capital = inst.value(&pa).unwrap().clone();
        if let Value::Record(ref mut fields) = with_capital {
            fields.insert("capital".into(), Value::oid(phl.clone()));
        }
        inst.update(&pa, with_capital).unwrap();
        let c1 = parse_clause("C1: X.state = Y <= Y in StateA, X = Y.capital").unwrap();
        let dbs_holder = inst.clone();
        let dbs = Databases::new(&[&dbs_holder][..]);
        assert!(check_constraint(&c1, &dbs).unwrap().is_empty());

        // Break it: make the capital a city of a different state.
        let ny = inst.insert_fresh(
            &ClassName::new("StateA"),
            Value::record([("name", Value::str("New York"))]),
        );
        let mut broken = inst.value(&phl).unwrap().clone();
        if let Value::Record(ref mut fields) = broken {
            fields.insert("state".into(), Value::oid(ny));
        }
        inst.update(&phl, broken).unwrap();
        let dbs = Databases::new(&[&inst][..]);
        assert!(!check_constraint(&c1, &dbs).unwrap().is_empty());
    }

    #[test]
    fn check_constraints_aggregates() {
        let inst = euro_instance(false, true);
        let dbs = Databases::new(&[&inst][..]);
        let c4 = clause_c4();
        let c5 = clause_c5();
        let violations = check_constraints(&[&c4, &c5], &dbs).unwrap();
        assert!(violations.len() >= 2);
    }
}
