//! CSV import/export for flat classes, RFC-4180 style.
//!
//! The paper's introduction motivates transformations partly by "uploading
//! certain file formats into a relational database". This module provides
//! that format: a header line of column names followed by comma-separated
//! rows. Fields containing commas, double quotes or newlines are quoted with
//! `"` and embedded quotes are doubled (`""`), so any string round-trips.
//!
//! Typing rules:
//!
//! * **Quoted fields are always strings**, verbatim — `"123"` stays a string.
//! * **Unquoted fields** are trimmed and inferred as integers (`i64`),
//!   booleans (`true`/`false`, capitalized accepted) or strings.
//! * [`to_csv`] quotes every string field, so column types survive a
//!   `to_csv` → [`parse_csv`] round trip.
//! * Column types are unified over **all** rows: the first row fixes each
//!   column's type and any later mismatch is rejected with a line-accurate
//!   [`StorageError::Corrupt`] rather than silently coerced.
//!
//! [`CsvReader`] exposes the decoder as a streaming record iterator (quoted
//! fields may span lines), used by the federated scan provider to ingest
//! large files chunk-at-a-time without materializing a [`Table`].

use wol_model::Value;

use crate::error::StorageError;
use crate::relational::{Column, ColumnType, Table, TableSchema};
use crate::Result;

/// One field of a CSV record: the decoded text plus whether it was quoted in
/// the source. Quoted fields are strings verbatim; unquoted fields are
/// trimmed and subject to integer/boolean inference.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsvField {
    /// Decoded field text (escape sequences resolved; trimmed if unquoted).
    pub text: String,
    /// True if the source wrapped the field in double quotes.
    pub quoted: bool,
}

impl CsvField {
    /// The model value this field denotes.
    pub fn value(&self) -> Value {
        if self.quoted {
            Value::str(&self.text)
        } else {
            infer_unquoted(&self.text)
        }
    }
}

/// A decoded record: the 1-based line number its first character occupies
/// (blank lines counted) and its fields.
#[derive(Clone, Debug)]
pub struct CsvRecord {
    /// 1-based line of the record's first character in the source text.
    pub line: usize,
    /// The record's fields, in column order.
    pub fields: Vec<CsvField>,
}

/// A streaming RFC-4180 decoder: parses the header eagerly, then yields data
/// records one at a time. Blank lines between records are skipped (but still
/// counted for error line numbers); quoted fields may span lines.
pub struct CsvReader<'a> {
    source: String,
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: usize,
    columns: Vec<String>,
}

#[derive(PartialEq)]
enum State {
    FieldStart,
    Unquoted,
    InQuotes,
    AfterQuotes,
}

fn finish_field(cur: &mut String, quoted: &mut bool) -> CsvField {
    let raw = std::mem::take(cur);
    let q = std::mem::replace(quoted, false);
    CsvField {
        text: if q { raw } else { raw.trim().to_string() },
        quoted: q,
    }
}

impl<'a> CsvReader<'a> {
    /// Open a reader over `text`, attributing errors to `source` (a file
    /// path or pseudo-path). Parses the header line immediately.
    pub fn new(source: &str, text: &'a str) -> Result<CsvReader<'a>> {
        let mut reader = CsvReader {
            source: source.to_string(),
            chars: text.chars().peekable(),
            line: 1,
            columns: Vec::new(),
        };
        let header = reader.next_record()?.ok_or_else(|| {
            StorageError::corrupt_at_line(
                source,
                1,
                "a header line of column names",
                "end of input",
            )
        })?;
        let names: Vec<String> = header
            .fields
            .iter()
            .map(|f| f.text.trim().to_string())
            .collect();
        if names.iter().any(|n| n.is_empty()) {
            return Err(StorageError::corrupt_at_line(
                source,
                header.line,
                "comma-separated non-empty column names",
                format!("`{}`", names.join(",")),
            ));
        }
        reader.columns = names;
        Ok(reader)
    }

    /// The header's column names.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Decode the next non-blank record, or `None` at end of input.
    pub fn next_record(&mut self) -> Result<Option<CsvRecord>> {
        loop {
            match self.raw_record()? {
                None => return Ok(None),
                Some(record) => {
                    let blank = record.fields.len() == 1
                        && !record.fields[0].quoted
                        && record.fields[0].text.is_empty();
                    if !blank {
                        return Ok(Some(record));
                    }
                }
            }
        }
    }

    fn raw_record(&mut self) -> Result<Option<CsvRecord>> {
        if self.chars.peek().is_none() {
            return Ok(None);
        }
        let start_line = self.line;
        let mut fields: Vec<CsvField> = Vec::new();
        let mut cur = String::new();
        let mut cur_quoted = false;
        let mut state = State::FieldStart;
        while let Some(c) = self.chars.next() {
            match state {
                State::FieldStart => match c {
                    '"' => {
                        cur_quoted = true;
                        state = State::InQuotes;
                    }
                    ',' => fields.push(finish_field(&mut cur, &mut cur_quoted)),
                    '\n' => {
                        self.line += 1;
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        return Ok(Some(CsvRecord {
                            line: start_line,
                            fields,
                        }));
                    }
                    '\r' if self.chars.peek() == Some(&'\n') => {
                        self.chars.next();
                        self.line += 1;
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        return Ok(Some(CsvRecord {
                            line: start_line,
                            fields,
                        }));
                    }
                    other => {
                        cur.push(other);
                        state = State::Unquoted;
                    }
                },
                State::Unquoted => match c {
                    ',' => {
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        state = State::FieldStart;
                    }
                    '\n' => {
                        self.line += 1;
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        return Ok(Some(CsvRecord {
                            line: start_line,
                            fields,
                        }));
                    }
                    '\r' if self.chars.peek() == Some(&'\n') => {
                        self.chars.next();
                        self.line += 1;
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        return Ok(Some(CsvRecord {
                            line: start_line,
                            fields,
                        }));
                    }
                    '"' => {
                        return Err(StorageError::corrupt_at_line(
                            &self.source,
                            start_line,
                            "no double quote inside an unquoted field",
                            format!("`\"` after `{cur}`"),
                        ));
                    }
                    other => cur.push(other),
                },
                State::InQuotes => match c {
                    '"' => {
                        if self.chars.peek() == Some(&'"') {
                            self.chars.next();
                            cur.push('"');
                        } else {
                            state = State::AfterQuotes;
                        }
                    }
                    '\n' => {
                        self.line += 1;
                        cur.push('\n');
                    }
                    other => cur.push(other),
                },
                State::AfterQuotes => match c {
                    ',' => {
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        state = State::FieldStart;
                    }
                    '\n' => {
                        self.line += 1;
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        return Ok(Some(CsvRecord {
                            line: start_line,
                            fields,
                        }));
                    }
                    '\r' if self.chars.peek() == Some(&'\n') => {
                        self.chars.next();
                        self.line += 1;
                        fields.push(finish_field(&mut cur, &mut cur_quoted));
                        return Ok(Some(CsvRecord {
                            line: start_line,
                            fields,
                        }));
                    }
                    other => {
                        return Err(StorageError::corrupt_at_line(
                            &self.source,
                            start_line,
                            "`,` or end of record after closing quote",
                            format!("`{other}`"),
                        ));
                    }
                },
            }
        }
        if state == State::InQuotes {
            return Err(StorageError::corrupt_at_line(
                &self.source,
                start_line,
                "closing `\"` before end of input",
                "unterminated quoted field",
            ));
        }
        fields.push(finish_field(&mut cur, &mut cur_quoted));
        Ok(Some(CsvRecord {
            line: start_line,
            fields,
        }))
    }
}

/// Parse CSV text into a [`Table`]. The first column is used as the key
/// column; column types are unified over all data rows.
///
/// Parse failures come back as [`StorageError::Corrupt`] with the source
/// labelled `"<memory>"`; use [`parse_csv_from`] to attach a real file path.
pub fn parse_csv(name: &str, text: &str) -> Result<Table> {
    parse_csv_from(name, "<memory>", text)
}

/// Read and parse a CSV file into a [`Table`] named after the file stem.
/// I/O and parse errors both carry the file path.
pub fn load_csv_file(path: &std::path::Path) -> Result<Table> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| StorageError::io(path.display().to_string(), e))?;
    let name = path
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "csv".to_string());
    parse_csv_from(&name, &path.display().to_string(), &text)
}

/// Parse CSV text into a [`Table`], attributing errors to `source` (a file
/// path or pseudo-path). Line numbers in errors are 1-based positions in
/// `text`, counting blank lines. Every data row is validated against the
/// column type fixed by the first row; the first mismatching row is rejected
/// with its line number.
pub fn parse_csv_from(name: &str, source: &str, text: &str) -> Result<Table> {
    let mut reader = CsvReader::new(source, text)?;
    let names = reader.columns().to_vec();
    let mut types: Vec<Option<ColumnType>> = vec![None; names.len()];
    let mut rows: Vec<Vec<Value>> = Vec::new();
    while let Some(record) = reader.next_record()? {
        if record.fields.len() != names.len() {
            return Err(StorageError::corrupt_at_line(
                source,
                record.line,
                format!("{} fields", names.len()),
                format!("{} fields", record.fields.len()),
            ));
        }
        let mut row = Vec::with_capacity(record.fields.len());
        for (i, field) in record.fields.iter().enumerate() {
            let value = field.value();
            let ty = value_column_type(&value);
            match types[i] {
                None => types[i] = Some(ty),
                Some(expected) if expected != ty => {
                    return Err(StorageError::corrupt_at_line(
                        source,
                        record.line,
                        format!("a {} value in column `{}`", type_name(expected), names[i]),
                        format!("{} `{}`", type_name(ty), field.text),
                    ));
                }
                Some(_) => {}
            }
            row.push(value);
        }
        rows.push(row);
    }
    let columns = names
        .iter()
        .enumerate()
        .map(|(i, n)| match types[i] {
            Some(ColumnType::Int) => Column::int(n.clone()),
            Some(ColumnType::Bool) => Column::bool(n.clone()),
            _ => Column::str(n.clone()),
        })
        .collect();
    let mut table = Table::new(TableSchema {
        name: name.to_string(),
        key_column: names[0].clone(),
        columns,
    });
    for row in rows {
        table.push_row(row)?;
    }
    Ok(table)
}

/// Render a table as CSV text (header plus one line per row). Every string
/// field is quoted (embedded `"` doubled), so commas, quotes and newlines in
/// data survive a re-parse and string-typed numerics stay strings.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    let header: Vec<String> = table
        .schema
        .columns
        .iter()
        .map(|c| render_header(&c.name))
        .collect();
    out.push_str(&header.join(","));
    out.push('\n');
    for row in &table.rows {
        let fields: Vec<String> = row.iter().map(render_field).collect();
        out.push_str(&fields.join(","));
        out.push('\n');
    }
    out
}

fn infer_unquoted(field: &str) -> Value {
    if let Ok(i) = field.parse::<i64>() {
        return Value::Int(i);
    }
    match field {
        "true" | "True" => Value::Bool(true),
        "false" | "False" => Value::Bool(false),
        other => Value::str(other),
    }
}

fn value_column_type(value: &Value) -> ColumnType {
    match value {
        Value::Int(_) => ColumnType::Int,
        Value::Bool(_) => ColumnType::Bool,
        _ => ColumnType::Str,
    }
}

fn type_name(ty: ColumnType) -> &'static str {
    match ty {
        ColumnType::Str => "string",
        ColumnType::Int => "integer",
        ColumnType::Bool => "boolean",
        ColumnType::Ref => "reference",
    }
}

fn quote(s: &str) -> String {
    format!("\"{}\"", s.replace('"', "\"\""))
}

fn render_header(name: &str) -> String {
    if name.contains([',', '"', '\n', '\r']) || name != name.trim() {
        quote(name)
    } else {
        name.to_string()
    }
}

fn render_field(value: &Value) -> String {
    match value {
        Value::Str(s) => quote(s),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => quote(&wol_model::display::render_value(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relational::load_tables;
    use wol_model::ClassName;

    const CITIES: &str = "name,is_capital,population\nParis,true,2148000\nLyon,false,513000\n";

    #[test]
    fn parse_and_infer_types() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        assert_eq!(table.len(), 2);
        assert_eq!(table.schema.key_column, "name");
        assert_eq!(table.rows[0][1], Value::Bool(true));
        assert_eq!(table.rows[0][2], Value::Int(2_148_000));
        assert_eq!(table.rows[1][0], Value::str("Lyon"));
    }

    #[test]
    fn round_trip_through_csv() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        let text = to_csv(&table);
        let reparsed = parse_csv("CityCsv", &text).unwrap();
        assert_eq!(table.rows, reparsed.rows);
        assert_eq!(table.schema.columns, reparsed.schema.columns);
    }

    /// Fields containing commas, quotes and newlines are quoted/escaped on
    /// output and decoded back verbatim; a string `"123"` stays a string.
    #[test]
    fn quoting_round_trips_awkward_fields() {
        let mut table = Table::new(TableSchema {
            name: "T".to_string(),
            key_column: "k".to_string(),
            columns: vec![Column::str("k"), Column::str("v"), Column::int("n")],
        });
        table
            .push_row(vec![
                Value::str("a,b"),
                Value::str("he said \"hi\""),
                Value::int(1),
            ])
            .unwrap();
        table
            .push_row(vec![
                Value::str("line\nbreak"),
                Value::str("123"),
                Value::int(2),
            ])
            .unwrap();
        table
            .push_row(vec![
                Value::str(""),
                Value::str("crlf\r\nok"),
                Value::int(-3),
            ])
            .unwrap();
        let text = to_csv(&table);
        let reparsed = parse_csv("T", &text).unwrap();
        assert_eq!(table.rows, reparsed.rows);
        assert_eq!(table.schema.columns, reparsed.schema.columns);
        // The string "123" did not silently become an integer.
        assert_eq!(reparsed.rows[1][1], Value::str("123"));
    }

    /// A quoted field spanning a newline keeps later error line numbers
    /// anchored to true source lines.
    #[test]
    fn multiline_quoted_field_keeps_line_numbers() {
        let text = "a,b\n\"x\ny\",1\nshort\n";
        let err = parse_csv_from("T", "t.csv", text).unwrap_err();
        // The bad record starts on line 4: header(1), record spanning 2-3.
        assert_eq!(
            err,
            StorageError::corrupt_at_line("t.csv", 4, "2 fields", "1 fields")
        );
    }

    /// Column types are unified over every row, not just the first: the
    /// first mismatching row is rejected with its line number.
    #[test]
    fn mixed_type_columns_rejected_with_line() {
        let text = "name,n\nParis,1\nLyon,2\nNice,oops\n";
        let err = parse_csv_from("T", "t.csv", text).unwrap_err();
        assert_eq!(
            err,
            StorageError::corrupt_at_line(
                "t.csv",
                4,
                "a integer value in column `n`",
                "string `oops`"
            )
        );
        // Widening the other way (string column, later integer) is also rejected.
        let text = "name,v\nParis,hello\nLyon,7\n";
        let err = parse_csv_from("T", "t.csv", text).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
    }

    #[test]
    fn unterminated_quote_rejected() {
        let err = parse_csv("T", "a,b\n\"open,1\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
        let err = parse_csv("T", "a,b\nx\"y,1\n").unwrap_err();
        assert!(err.to_string().contains("unquoted"), "{err}");
    }

    #[test]
    fn csv_feeds_the_relational_adapter() {
        let table = parse_csv("CityCsv", CITIES).unwrap();
        let instance = load_tables(&[table], "csv_import").unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("CityCsv")), 2);
        let paris = instance
            .find_by_field(&ClassName::new("CityCsv"), "name", &Value::str("Paris"))
            .unwrap();
        assert_eq!(
            instance.value(paris).unwrap().project("population"),
            Some(&Value::int(2_148_000))
        );
    }

    #[test]
    fn malformed_inputs_rejected() {
        assert!(parse_csv("T", "").is_err());
        assert!(parse_csv("T", "a,b\n1\n").is_err());
        assert!(parse_csv("T", "a,,c\n1,2,3\n").is_err());
    }

    /// A truncated row reports the source, the true (blank-line-aware) line
    /// number, and expected-vs-found field counts.
    #[test]
    fn truncated_row_reports_position_context() {
        let text = "name,is_capital,population\nParis,true,2148000\n\nLyon,false\n";
        let err = parse_csv_from("CityCsv", "cities.csv", text).unwrap_err();
        assert_eq!(
            err,
            StorageError::corrupt_at_line("cities.csv", 4, "3 fields", "2 fields")
        );
        let rendered = err.to_string();
        assert!(rendered.contains("cities.csv"), "{rendered}");
        assert!(rendered.contains("line 4"), "{rendered}");
        // The in-memory entry point labels its source.
        let err = parse_csv("CityCsv", "a,b\n1\n").unwrap_err();
        assert!(matches!(
            err,
            StorageError::Corrupt { ref path, .. } if path == "<memory>"
        ));
    }

    #[test]
    fn load_csv_file_reads_and_attributes_errors_to_the_path() {
        let dir = std::env::temp_dir().join(format!("wol-csv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let good = dir.join("cities.csv");
        std::fs::write(&good, CITIES).unwrap();
        let table = load_csv_file(&good).unwrap();
        assert_eq!(table.schema.name, "cities");
        assert_eq!(table.len(), 2);

        let bad = dir.join("short.csv");
        std::fs::write(&bad, "a,b,c\n1,2\n").unwrap();
        let err = load_csv_file(&bad).unwrap_err();
        assert!(err.to_string().contains("short.csv"), "{err}");

        let err = load_csv_file(&dir.join("absent.csv")).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
