//! Secondary attribute indexes over instances.
//!
//! Clause-body matching and hash-join execution both repeatedly ask the same
//! question of an instance: *which objects of class `C` have attribute `a`
//! equal to value `v`?* Answering it by scanning the whole extent makes every
//! join quadratic. This module provides the answer in (amortised) constant
//! time: a per-`(class, attribute)` hash index from the attribute's value to
//! the object identities carrying it.
//!
//! Design:
//!
//! * **Lazy** — an index is built the first time `(class, attribute)` is
//!   probed, by one pass over the class's extent. Workloads that never join on
//!   an attribute never pay for indexing it.
//! * **Maintained across single-object mutations** — insert / update /
//!   remove adjust the affected entries of every built index of the class
//!   in place, keeping buckets in ascending identity order so a maintained
//!   index is bit-identical to a fresh rebuild. This keeps the standing
//!   pipeline's per-batch delta joins O(batch) instead of O(extent). Bulk
//!   loads still invalidate wholesale, and histograms / columns / row
//!   indexes are always invalidated on any mutation (they are planner
//!   statistics and batch projections, rebuilt lazily).
//! * **Hash buckets, exact verification** — buckets are keyed by a 64-bit
//!   hash of the attribute value; probes re-check candidates against the live
//!   value, so hash collisions cost time but never correctness.
//!
//! The cache lives behind an `RwLock` inside [`Instance`](crate::Instance):
//! probing takes `&self`, so the read path of the engine stays
//! borrow-friendly, and shared references can be handed to scoped worker
//! threads (the parallel executors probe one instance from many workers at
//! once). Equality and cloning of instances deliberately ignore the cache (it
//! is derived data).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::column::{AttrColumn, StringInterner};
use crate::histogram::AttrHistogram;
use crate::oid::Oid;
use crate::types::{ClassName, Label};
use crate::values::Value;

/// Hash of an attribute value, as used by the index buckets.
pub fn value_hash(value: &Value) -> u64 {
    let mut hasher = DefaultHasher::new();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A single `(class, attribute)` index: value-hash → object identities whose
/// attribute carries a value with that hash.
#[derive(Clone, Debug, Default)]
pub struct AttrIndex {
    buckets: HashMap<u64, Vec<Oid>>,
    entries: usize,
}

impl AttrIndex {
    /// Record that `oid`'s attribute value hashes to `hash`.
    pub fn add(&mut self, hash: u64, oid: Oid) {
        self.buckets.entry(hash).or_default().push(oid);
        self.entries += 1;
    }

    /// The candidate identities for a value hash. Candidates must be verified
    /// against the live attribute value by the caller.
    pub fn candidates(&self, hash: u64) -> &[Oid] {
        self.buckets.get(&hash).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Insert `oid` into `hash`'s bucket, keeping the bucket in ascending
    /// identity order — the order a fresh extent-order build produces, so a
    /// maintained index stays bit-identical to a rebuilt one. A no-op if the
    /// identity is already present.
    pub fn insert_sorted(&mut self, hash: u64, oid: Oid) {
        let bucket = self.buckets.entry(hash).or_default();
        if let Err(pos) = bucket.binary_search(&oid) {
            bucket.insert(pos, oid);
            self.entries += 1;
        }
    }

    /// Remove `oid` from `hash`'s bucket. Emptied buckets are dropped so
    /// [`distinct`](AttrIndex::distinct) matches a fresh rebuild.
    pub fn remove_entry(&mut self, hash: u64, oid: &Oid) {
        if let Some(bucket) = self.buckets.get_mut(&hash) {
            if let Ok(pos) = bucket.binary_search(oid) {
                bucket.remove(pos);
                self.entries -= 1;
                if bucket.is_empty() {
                    self.buckets.remove(&hash);
                }
            }
        }
    }

    /// Number of indexed `(value, oid)` entries.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Number of distinct value hashes present. Hash collisions can only
    /// merge buckets, so this is a (tight in practice) *lower bound* on the
    /// attribute's number of distinct values — exactly the quantity the query
    /// planner's `1/ndv` equality selectivities need.
    pub fn distinct(&self) -> usize {
        self.buckets.len()
    }

    /// True if nothing is indexed.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }
}

/// The per-instance cache of attribute indexes, histograms, **and columnar
/// projections** (row indexes + attribute columns, see [`crate::column`]),
/// keyed by class and attribute label. The nesting (class, then label) lets
/// probes — the hot path — look up with borrowed keys, allocation-free. All
/// derived structures ride in the same cache so one `invalidate_class` drops
/// them together: a mutation can never leave a stale histogram or column
/// behind an up-to-date index or vice versa. The string interner is the one
/// exception — it is append-only (codes never change meaning), so
/// invalidation keeps it and rebuilt columns re-derive the same codes.
#[derive(Debug, Default)]
pub struct IndexCache {
    indexes: BTreeMap<ClassName, BTreeMap<Label, AttrIndex>>,
    histograms: BTreeMap<ClassName, BTreeMap<Label, AttrHistogram>>,
    columns: BTreeMap<ClassName, BTreeMap<Label, Arc<AttrColumn>>>,
    row_indexes: BTreeMap<ClassName, Arc<Vec<Oid>>>,
    interner: StringInterner,
}

impl IndexCache {
    /// The index for `(class, attr)`, if it has been built.
    pub fn get(&self, class: &ClassName, attr: &str) -> Option<&AttrIndex> {
        self.indexes.get(class)?.get(attr)
    }

    /// Whether an index for `(class, attr)` exists.
    pub fn contains(&self, class: &ClassName, attr: &str) -> bool {
        self.get(class, attr).is_some()
    }

    /// Install a freshly built index.
    pub fn insert(&mut self, class: ClassName, attr: Label, index: AttrIndex) {
        self.indexes.entry(class).or_default().insert(attr, index);
    }

    /// The histogram for `(class, attr)`, if it has been built.
    pub fn get_histogram(&self, class: &ClassName, attr: &str) -> Option<&AttrHistogram> {
        self.histograms.get(class)?.get(attr)
    }

    /// Whether a histogram for `(class, attr)` exists.
    pub fn contains_histogram(&self, class: &ClassName, attr: &str) -> bool {
        self.get_histogram(class, attr).is_some()
    }

    /// Install a freshly built histogram.
    pub fn insert_histogram(&mut self, class: ClassName, attr: Label, histogram: AttrHistogram) {
        self.histograms
            .entry(class)
            .or_default()
            .insert(attr, histogram);
    }

    /// The columnar projection of `(class, attr)`, if it has been built.
    pub fn get_column(&self, class: &ClassName, attr: &str) -> Option<&Arc<AttrColumn>> {
        self.columns.get(class)?.get(attr)
    }

    /// Whether a column for `(class, attr)` exists.
    pub fn contains_column(&self, class: &ClassName, attr: &str) -> bool {
        self.get_column(class, attr).is_some()
    }

    /// Install a freshly built column.
    pub fn insert_column(&mut self, class: ClassName, attr: Label, column: Arc<AttrColumn>) {
        self.columns.entry(class).or_default().insert(attr, column);
    }

    /// The row index (extent identities in extent order) of `class`, if built.
    pub fn get_row_index(&self, class: &ClassName) -> Option<&Arc<Vec<Oid>>> {
        self.row_indexes.get(class)
    }

    /// Install a freshly built row index.
    pub fn insert_row_index(&mut self, class: ClassName, rows: Arc<Vec<Oid>>) {
        self.row_indexes.insert(class, rows);
    }

    /// The shared string dictionary of the columnar cache.
    pub fn interner(&self) -> &StringInterner {
        &self.interner
    }

    /// Mutable access to the dictionary (column builds intern through this).
    pub fn interner_mut(&mut self) -> &mut StringInterner {
        &mut self.interner
    }

    /// Drop every index, histogram, column, and row index of `class` (called
    /// on bulk mutations of the class). The string dictionary survives: it is
    /// append-only, so stale codes cannot be re-read wrongly.
    pub fn invalidate_class(&mut self, class: &ClassName) {
        self.indexes.remove(class);
        self.histograms.remove(class);
        self.columns.remove(class);
        self.row_indexes.remove(class);
    }

    /// Drop the *derived statistics* of `class` — histograms, columns, and
    /// the row index — but keep its attribute indexes. Single-object
    /// mutations maintain the indexes in place (see
    /// [`Instance`](crate::Instance)); the statistics are rebuilt lazily.
    pub fn invalidate_stats(&mut self, class: &ClassName) {
        self.histograms.remove(class);
        self.columns.remove(class);
        self.row_indexes.remove(class);
    }

    /// Mutable access to the built attribute indexes of `class`, if any have
    /// been built — the hook single-object mutations maintain them through.
    pub fn indexes_mut(&mut self, class: &ClassName) -> Option<&mut BTreeMap<Label, AttrIndex>> {
        self.indexes.get_mut(class)
    }

    /// Drop everything, dictionary included.
    pub fn clear(&mut self) {
        self.indexes.clear();
        self.histograms.clear();
        self.columns.clear();
        self.row_indexes.clear();
        self.interner = StringInterner::new();
    }

    /// Number of built `(class, attribute)` indexes.
    pub fn len(&self) -> usize {
        self.indexes.values().map(BTreeMap::len).sum()
    }

    /// True if no index has been built.
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_and_report() {
        let mut idx = AttrIndex::default();
        assert!(idx.is_empty());
        let class = ClassName::new("C");
        let h = value_hash(&Value::str("x"));
        idx.add(h, Oid::new(class.clone(), 0));
        idx.add(h, Oid::new(class.clone(), 1));
        assert_eq!(idx.candidates(h).len(), 2);
        assert_eq!(idx.len(), 2);
        assert!(idx.candidates(h ^ 1).is_empty());
    }

    #[test]
    fn cache_invalidation_is_per_class() {
        let mut cache = IndexCache::default();
        let a = ClassName::new("A");
        let b = ClassName::new("B");
        cache.insert(a.clone(), "name".to_string(), AttrIndex::default());
        cache.insert(b.clone(), "name".to_string(), AttrIndex::default());
        assert_eq!(cache.len(), 2);
        cache.invalidate_class(&a);
        assert!(!cache.contains(&a, "name"));
        assert!(cache.contains(&b, "name"));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn histograms_share_the_per_class_invalidation() {
        let mut cache = IndexCache::default();
        let a = ClassName::new("A");
        let b = ClassName::new("B");
        cache.insert_histogram(a.clone(), "x".to_string(), AttrHistogram::default());
        cache.insert_histogram(b.clone(), "x".to_string(), AttrHistogram::default());
        assert!(cache.contains_histogram(&a, "x"));
        cache.invalidate_class(&a);
        assert!(!cache.contains_histogram(&a, "x"));
        assert!(cache.contains_histogram(&b, "x"));
        cache.clear();
        assert!(!cache.contains_histogram(&b, "x"));
    }

    #[test]
    fn columns_share_invalidation_but_the_dictionary_survives() {
        let mut cache = IndexCache::default();
        let a = ClassName::new("A");
        let code = cache.interner_mut().intern("hot").unwrap();
        let values = [Some(Value::str("hot"))];
        let refs: Vec<Option<&Value>> = values.iter().map(Option::as_ref).collect();
        let col = Arc::new(AttrColumn::build(&refs, cache.interner_mut()));
        cache.insert_column(a.clone(), "t".to_string(), col);
        cache.insert_row_index(a.clone(), Arc::new(vec![Oid::new(a.clone(), 0)]));
        assert!(cache.contains_column(&a, "t"));
        assert!(cache.get_row_index(&a).is_some());
        cache.invalidate_class(&a);
        assert!(!cache.contains_column(&a, "t"));
        assert!(cache.get_row_index(&a).is_none());
        // Append-only dictionary survives invalidation: same string, same code.
        assert_eq!(cache.interner().code_of("hot"), Some(code));
        cache.clear();
        assert!(cache.interner().is_empty());
    }

    #[test]
    fn equal_values_hash_equal() {
        let a = Value::record([("x", Value::int(1))]);
        let b = Value::record([("x", Value::int(1))]);
        assert_eq!(value_hash(&a), value_hash(&b));
    }
}
