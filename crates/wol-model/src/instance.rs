//! Database instances.
//!
//! An instance of a schema consists of a finite set of object identities for
//! each class and a mapping from each identity to its associated value, such
//! that every identity occurring inside a value belongs to one of the
//! instance's extents (Section 2.1).

use std::collections::{BTreeMap, BTreeSet};

use crate::error::ModelError;
use crate::oid::{Oid, OidGen};
use crate::types::ClassName;
use crate::values::Value;
use crate::Result;

/// A database instance: extents of object identities per class, plus the value
/// associated with each identity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Instance {
    schema_name: String,
    extents: BTreeMap<ClassName, BTreeSet<Oid>>,
    values: BTreeMap<Oid, Value>,
    oid_gen: OidGen,
}

impl Instance {
    /// Create an empty instance labelled with the name of the schema it is an
    /// instance of.
    pub fn new(schema_name: impl Into<String>) -> Self {
        Instance {
            schema_name: schema_name.into(),
            extents: BTreeMap::new(),
            values: BTreeMap::new(),
            oid_gen: OidGen::new(),
        }
    }

    /// The name of the schema this instance belongs to.
    pub fn schema_name(&self) -> &str {
        &self.schema_name
    }

    /// Insert an object with a caller-provided identity.
    ///
    /// The identity's class must match the extent it is inserted into, and the
    /// identity must not already be present.
    pub fn insert(&mut self, oid: Oid, value: Value) -> Result<()> {
        let class = oid.class().clone();
        if self.values.contains_key(&oid) {
            return Err(ModelError::DuplicateOid(oid.to_string()));
        }
        self.extents.entry(class).or_default().insert(oid.clone());
        self.values.insert(oid, value);
        Ok(())
    }

    /// Insert an object with a freshly generated identity, returning it.
    pub fn insert_fresh(&mut self, class: &ClassName, value: Value) -> Oid {
        let oid = self.oid_gen.fresh(class);
        self.extents.entry(class.clone()).or_default().insert(oid.clone());
        self.values.insert(oid.clone(), value);
        oid
    }

    /// Replace the value of an existing object.
    pub fn update(&mut self, oid: &Oid, value: Value) -> Result<()> {
        match self.values.get_mut(oid) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(ModelError::DanglingOid(oid.to_string())),
        }
    }

    /// The value associated with an identity.
    pub fn value(&self, oid: &Oid) -> Option<&Value> {
        self.values.get(oid)
    }

    /// The value associated with an identity, or an error if it is unknown.
    pub fn value_or_err(&self, oid: &Oid) -> Result<&Value> {
        self.values
            .get(oid)
            .ok_or_else(|| ModelError::DanglingOid(oid.to_string()))
    }

    /// Whether the identity is present in this instance.
    pub fn contains(&self, oid: &Oid) -> bool {
        self.values.contains_key(oid)
    }

    /// The extent (set of identities) of a class; empty if the class has no
    /// objects.
    pub fn extent(&self, class: &ClassName) -> impl Iterator<Item = &Oid> {
        self.extents.get(class).into_iter().flatten()
    }

    /// The number of objects in a class's extent.
    pub fn extent_size(&self, class: &ClassName) -> usize {
        self.extents.get(class).map(BTreeSet::len).unwrap_or(0)
    }

    /// Iterate over `(oid, value)` pairs of a class's extent.
    pub fn objects(&self, class: &ClassName) -> impl Iterator<Item = (&Oid, &Value)> {
        self.extent(class).map(move |oid| {
            let value = self
                .values
                .get(oid)
                .expect("extent oid always has a value");
            (oid, value)
        })
    }

    /// Iterate over every `(oid, value)` pair in the instance.
    pub fn all_objects(&self) -> impl Iterator<Item = (&Oid, &Value)> {
        self.values.iter()
    }

    /// The classes that have a (possibly empty) extent recorded.
    pub fn populated_classes(&self) -> Vec<ClassName> {
        self.extents.keys().cloned().collect()
    }

    /// Total number of objects across all classes.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the instance holds no objects.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Remove an object from the instance. Dangling references left behind are
    /// detected by [`validate::check_instance`](crate::validate::check_instance).
    pub fn remove(&mut self, oid: &Oid) -> Option<Value> {
        if let Some(ext) = self.extents.get_mut(oid.class()) {
            ext.remove(oid);
        }
        self.values.remove(oid)
    }

    /// Look up an object of `class` by a projected field value, e.g. find the
    /// `CountryE` whose `name` is `"France"`. Linear scan; convenience for
    /// tests, examples and adapters.
    pub fn find_by_field(&self, class: &ClassName, field: &str, value: &Value) -> Option<&Oid> {
        self.objects(class)
            .find(|(_, v)| v.project(field) == Some(value))
            .map(|(oid, _)| oid)
    }

    /// Merge another instance into this one. Identities must be disjoint.
    pub fn absorb(&mut self, other: &Instance) -> Result<()> {
        for (oid, value) in other.all_objects() {
            self.insert(oid.clone(), value.clone())?;
        }
        Ok(())
    }

    /// Total number of value-tree nodes stored; a rough size metric used by
    /// the benchmark harness.
    pub fn size_nodes(&self) -> usize {
        self.values.values().map(Value::size).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassName;

    fn city(name: &str, capital: bool, country: &Oid) -> Value {
        Value::record([
            ("name", Value::str(name)),
            ("is_capital", Value::bool(capital)),
            ("country", Value::oid(country.clone())),
        ])
    }

    /// Build (a fragment of) the Example 2.2 instance.
    fn euro_instance() -> (Instance, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let country_class = ClassName::new("CountryE");
        let city_class = ClassName::new("CityE");
        let uk = inst.insert_fresh(
            &country_class,
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &country_class,
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        inst.insert_fresh(&city_class, city("London", true, &uk));
        inst.insert_fresh(&city_class, city("Manchester", false, &uk));
        inst.insert_fresh(&city_class, city("Paris", true, &fr));
        (inst, uk, fr)
    }

    #[test]
    fn insert_and_lookup() {
        let (inst, uk, _) = euro_instance();
        assert_eq!(inst.schema_name(), "euro");
        assert_eq!(inst.len(), 5);
        assert!(!inst.is_empty());
        assert_eq!(inst.extent_size(&ClassName::new("CityE")), 3);
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 2);
        assert_eq!(inst.extent_size(&ClassName::new("Nope")), 0);
        let uk_val = inst.value(&uk).unwrap();
        assert_eq!(uk_val.project("currency"), Some(&Value::str("sterling")));
        assert!(inst.contains(&uk));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut inst = Instance::new("euro");
        let oid = Oid::new(ClassName::new("CountryE"), 0);
        inst.insert(oid.clone(), Value::record([("name", Value::str("UK"))]))
            .unwrap();
        let err = inst
            .insert(oid, Value::record([("name", Value::str("FR"))]))
            .unwrap_err();
        assert!(matches!(err, ModelError::DuplicateOid(_)));
    }

    #[test]
    fn update_value() {
        let (mut inst, uk, _) = euro_instance();
        let mut new_val = inst.value(&uk).unwrap().clone();
        if let Value::Record(ref mut fields) = new_val {
            fields.insert("currency".into(), Value::str("pound"));
        }
        inst.update(&uk, new_val).unwrap();
        assert_eq!(
            inst.value(&uk).unwrap().project("currency"),
            Some(&Value::str("pound"))
        );
        let missing = Oid::new(ClassName::new("CountryE"), 999);
        assert!(inst.update(&missing, Value::Unit).is_err());
    }

    #[test]
    fn find_by_field() {
        let (inst, _, fr) = euro_instance();
        let found = inst
            .find_by_field(&ClassName::new("CountryE"), "name", &Value::str("France"))
            .unwrap();
        assert_eq!(found, &fr);
        assert!(inst
            .find_by_field(&ClassName::new("CountryE"), "name", &Value::str("Atlantis"))
            .is_none());
    }

    #[test]
    fn objects_iterate_with_values() {
        let (inst, _, _) = euro_instance();
        let capitals: Vec<&Value> = inst
            .objects(&ClassName::new("CityE"))
            .filter(|(_, v)| v.project("is_capital") == Some(&Value::bool(true)))
            .map(|(_, v)| v.project("name").unwrap())
            .collect();
        assert_eq!(capitals.len(), 2);
    }

    #[test]
    fn remove_object() {
        let (mut inst, uk, _) = euro_instance();
        let removed = inst.remove(&uk).unwrap();
        assert_eq!(removed.project("name"), Some(&Value::str("United Kingdom")));
        assert!(!inst.contains(&uk));
        assert_eq!(inst.extent_size(&ClassName::new("CountryE")), 1);
        assert!(inst.remove(&uk).is_none());
    }

    #[test]
    fn absorb_disjoint_instances() {
        let (mut inst, _, _) = euro_instance();
        let mut other = Instance::new("us");
        other.insert(
            Oid::new(ClassName::new("StateA"), 0),
            Value::record([("name", Value::str("Pennsylvania"))]),
        )
        .unwrap();
        inst.absorb(&other).unwrap();
        assert_eq!(inst.extent_size(&ClassName::new("StateA")), 1);
    }

    #[test]
    fn absorb_conflicting_instances_fails() {
        let (mut inst, _, _) = euro_instance();
        let copy = inst.clone();
        assert!(inst.absorb(&copy).is_err());
    }

    #[test]
    fn populated_classes_and_size() {
        let (inst, _, _) = euro_instance();
        assert_eq!(
            inst.populated_classes(),
            vec![ClassName::new("CityE"), ClassName::new("CountryE")]
        );
        assert!(inst.size_nodes() > inst.len());
    }
}
