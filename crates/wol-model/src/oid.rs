//! Object identities.
//!
//! Object identities are opaque handles: they are "not considered to be
//! directly visible and are typically unrelated between databases"
//! (Section 2.2). Each identity records the class it belongs to and a
//! numeric discriminator that is unique within the creating context.

use std::fmt;

use crate::types::ClassName;

/// An object identity of a particular class.
///
/// Two identities are equal iff they have the same class and the same
/// discriminator. Equality of identities never inspects the associated value;
/// value-based identification goes through surrogate keys
/// ([`KeySpec`](crate::KeySpec)).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid {
    class: ClassName,
    id: u64,
}

impl Oid {
    /// Create an identity of `class` with discriminator `id`.
    pub fn new(class: ClassName, id: u64) -> Self {
        Oid { class, id }
    }

    /// The class this identity belongs to.
    pub fn class(&self) -> &ClassName {
        &self.class
    }

    /// The numeric discriminator.
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}:{}", self.class, self.id)
    }
}

impl fmt::Debug for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A simple monotonic generator of fresh object identities, one counter per
/// class. Used when loading data from sources that do not come with explicit
/// identities (flat files, relational rows, tree databases).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct OidGen {
    counters: std::collections::BTreeMap<ClassName, u64>,
}

impl OidGen {
    /// Create a generator whose counters all start at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produce a fresh identity of `class`.
    pub fn fresh(&mut self, class: &ClassName) -> Oid {
        let counter = self.counters.entry(class.clone()).or_insert(0);
        let id = *counter;
        *counter += 1;
        Oid::new(class.clone(), id)
    }

    /// Number of identities generated so far for `class`.
    pub fn count(&self, class: &ClassName) -> u64 {
        self.counters.get(class).copied().unwrap_or(0)
    }

    /// Iterate over the per-class counters. Used by the persistence layer to
    /// snapshot generator state so recovered instances mint the same fresh
    /// identities an uncrashed run would.
    pub fn counters(&self) -> impl Iterator<Item = (&ClassName, u64)> {
        self.counters.iter().map(|(class, n)| (class, *n))
    }

    /// Raise the counter of `class` to at least `count`. Counters only move
    /// forward: restoring a smaller count would let `fresh` re-mint a live
    /// identity. A `count` of zero is a no-op (no entry is created), so
    /// restoring an exported counter map onto a fresh generator reproduces it
    /// exactly.
    pub fn restore_count(&mut self, class: &ClassName, count: u64) {
        if count > self.count(class) {
            self.counters.insert(class.clone(), count);
        }
    }

    /// Lower the counter of `class` back to `count` — the inverse of a run
    /// of [`fresh`](Self::fresh) calls whose identities were all removed
    /// again (a batch revert). The caller must guarantee no live identity of
    /// `class` has a discriminator at or above `count`; lowering below that
    /// would let `fresh` re-mint a live identity. Raising is a no-op (that
    /// is [`restore_count`](Self::restore_count)'s job). Rewinding to zero
    /// drops the entry, matching a generator that never minted the class.
    pub fn rewind_count(&mut self, class: &ClassName, count: u64) {
        if count < self.count(class) {
            if count == 0 {
                self.counters.remove(class);
            } else {
                self.counters.insert(class.clone(), count);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_equality_and_display() {
        let c = ClassName::new("CityE");
        let a = Oid::new(c.clone(), 0);
        let b = Oid::new(c.clone(), 0);
        let d = Oid::new(c.clone(), 1);
        assert_eq!(a, b);
        assert_ne!(a, d);
        assert_eq!(a.to_string(), "#CityE:0");
        assert_eq!(format!("{a:?}"), "#CityE:0");
        assert_eq!(a.class(), &c);
        assert_eq!(d.id(), 1);
    }

    #[test]
    fn oids_of_different_classes_differ() {
        let a = Oid::new(ClassName::new("CityE"), 7);
        let b = Oid::new(ClassName::new("CountryE"), 7);
        assert_ne!(a, b);
    }

    #[test]
    fn generator_is_monotonic_per_class() {
        let mut gen = OidGen::new();
        let city = ClassName::new("CityE");
        let country = ClassName::new("CountryE");
        let a = gen.fresh(&city);
        let b = gen.fresh(&city);
        let c = gen.fresh(&country);
        assert_eq!(a.id(), 0);
        assert_eq!(b.id(), 1);
        assert_eq!(c.id(), 0);
        assert_ne!(a, b);
        assert_eq!(gen.count(&city), 2);
        assert_eq!(gen.count(&country), 1);
        assert_eq!(gen.count(&ClassName::new("Other")), 0);
    }

    #[test]
    fn restore_count_is_monotonic_and_exact() {
        let mut gen = OidGen::new();
        let city = ClassName::new("CityE");
        gen.fresh(&city);
        gen.fresh(&city);
        // Restoring a smaller (or zero) count never rewinds.
        gen.restore_count(&city, 1);
        assert_eq!(gen.count(&city), 2);
        gen.restore_count(&ClassName::new("Ghost"), 0);
        assert_eq!(gen, {
            let mut g = OidGen::new();
            g.fresh(&city);
            g.fresh(&city);
            g
        });
        // Restoring every exported counter reproduces the generator exactly.
        let mut restored = OidGen::new();
        for (class, n) in gen.counters() {
            restored.restore_count(class, n);
        }
        assert_eq!(restored, gen);
        assert_eq!(restored.fresh(&city).id(), 2);
    }

    #[test]
    fn oids_are_ordered() {
        let c = ClassName::new("C");
        let a = Oid::new(c.clone(), 1);
        let b = Oid::new(c.clone(), 2);
        assert!(a < b);
    }
}
