//! Incremental view maintenance: the standing [`MaterializedPipeline`].
//!
//! A [`crate::Morphase`] run is a one-shot function from source instances to
//! a target instance. This module keeps that function's output *standing*:
//! after an initial build, the pipeline accepts
//! [`MutationBatch`](wol_model::MutationBatch)es against its sources and
//! repairs the target in place, guaranteeing at every batch boundary that
//! the maintained target is **bit-identical** (object identities included)
//! to what a from-scratch run over the mutated sources would produce.
//!
//! # Maintenance semantics
//!
//! The guarantee rests on three pillars, each with a fallback that degrades
//! cost but never correctness.
//!
//! **Delta propagation.** Every compiled query is analysed once per
//! (re-)compile:
//!
//! * [`cpl::scan_order_trace`] must describe the plan's output as the
//!   lexicographic order of a tuple of scanned object identities — the
//!   *trace key*. The key is unique per row and stable across runs (source
//!   identities are never reused), so a `BTreeMap` over trace keys *is* the
//!   fresh run's row stream, in order.
//! * The plan is split at the deepest `Map` operator carrying a Skolem
//!   binding: everything below (the *stripped* plan) must be Skolem-free and
//!   is re-runnable at will; the Skolem-bearing `Map` levels above are
//!   *deferred* and replayed per cached row.
//! * A schema-typed walk over every expression classifies each projection:
//!   a dereference of a scanned variable is covered by the trace key; a
//!   dereference reaching another class's objects makes that class a
//!   *foreign read*; a projection whose base type cannot be resolved marks
//!   the query *opaque*.
//!
//! When a batch lands, rows to **remove** are found by identity: any cached
//! row whose trace key contains a stale (updated or removed) identity, or —
//! when a foreign-read class saw staleness, or the query is opaque and
//! anything was stale — every row of the query (*churn*). Rows to **add**
//! come from [`wol_engine::delta_rotations`]: one semi-naive evaluation of
//! the stripped plan per changed slot, with scan restrictions partitioning
//! exactly the rows that bind at least one changed identity. Programs where
//! some query defeats the analysis (or scans the target) fall back to
//! [`MaintainMode::Rerun`]: every batch is a full re-run, still correct.
//!
//! **Repair identity.** Skolem keys make repair well-defined — a target
//! object is identified by its `(class, key)`, not by allocation order — but
//! bit-identity also demands the *numbering* of identities match a fresh
//! run. The pipeline therefore keeps a ledger: for every target identity,
//! the exact position of its first mint in the canonical evaluation order
//! (query rank in the schedule, deferred-map level, trace key, evaluation
//! slot), plus a support count of every `(object, attribute, value)`
//! contribution. Replaying added rows re-derives mints at their canonical
//! positions; removing rows decrements supports and *displaces* first mints.
//! If, after a batch, any invariant that ties the standing state to a fresh
//! run cannot be re-established locally — a displaced first mint is not
//! restored at the same position, a fresh mint would not be the class's
//! latest, an object loses all contributions, or two rows disagree on an
//! attribute — the pipeline **rebuilds**: it recompiles against the mutated
//! sources (fresh statistics, exactly like a fresh run) and replays
//! everything with a fresh Skolem factory. A rebuild is bit-identical to the
//! oracle by construction; in-place batches preserve the factory/ledger
//! equivalence, so the standing state always equals the rebuilt state.
//!
//! **Reader consistency.** The pipeline itself is single-writer; the
//! concurrent front end ([`crate::PipelineService`]) runs it on a maintainer
//! thread and publishes an immutable snapshot (`Arc<Instance>`) after each
//! successful batch. Readers clone the `Arc` under a read lock — they never
//! observe a half-repaired target, and a panicked maintainer propagates at
//! shutdown instead of hanging its clients.
//!
//! Durability reuses [`storage::persist::PipelineJournal`], journalling the
//! *source*: batch 0 is a full dump, every applied batch appends its
//! mutations, and recovery rebuilds the pipeline from the recovered source —
//! valid precisely because the standing state is always equivalent to a
//! rebuild from current sources.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use cpl::exec::{run_plan, scan_order_trace, ExecStats};
use cpl::expr::{eval, EvalCtx};
use cpl::{CplError, Expr, Plan, Query, Row};
use storage::persist::PipelineJournal;
use wol_engine::rotation::{delta_rotations, Slot};
use wol_engine::{check_batch, BatchCheck, Databases, EngineError};
use wol_lang::program::Program;
use wol_lang::Clause;
use wol_model::{
    BatchDelta, ClassName, Instance, Label, Mutation, MutationBatch, Oid, Schema, SkolemFactory,
    SkolemState, SourceOp, Type, Value,
};

use crate::pipeline::{
    compile_stages, verify_target_instance, BatchConstraintMode, DurableOptions, Morphase,
    MorphaseRun, PipelineOptions,
};
use crate::schedule::plan_schedule;
use crate::{MorphaseError, Result};

/// How the pipeline maintains its target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaintainMode {
    /// Every query passed capability analysis: batches repair the target in
    /// place, falling back to a rebuild when a repair invariant trips.
    Incremental,
    /// Some query defeats the analysis (or reads the target): every batch is
    /// a full from-scratch re-run.
    Rerun,
}

/// What one applied batch cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// Stale rows swept, delta rows replayed, touched objects repaired.
    InPlace,
    /// A repair invariant tripped: recompiled and replayed from scratch.
    Rebuild,
    /// The pipeline is in [`MaintainMode::Rerun`].
    FullRerun,
}

/// Per-batch report returned by [`MaterializedPipeline::apply_batch`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchReport {
    /// How the batch was absorbed.
    pub outcome: BatchOutcome,
    /// Cached query rows swept by the batch.
    pub rows_removed: u64,
    /// Query rows (re-)derived and replayed for the batch.
    pub rows_added: u64,
    /// Target objects whose record was written (inserted or updated).
    pub objects_repaired: u64,
    /// Why the batch escalated to a rebuild, when it did.
    pub rebuild_reason: Option<String>,
    /// The batch's constraint check and certificate, when
    /// [`BatchConstraintMode`] is not `Off`. In `Report` mode a committed
    /// batch may carry violations here; in `Enforce` mode a violating batch
    /// is rejected instead of reported.
    pub constraints: Option<BatchCheck>,
}

/// Cumulative maintenance statistics. Deterministic for a given program,
/// sources, and batch stream — independent of worker-pool size.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Batches applied (including empty ones).
    pub batches: u64,
    /// Batches absorbed in place.
    pub inplace_batches: u64,
    /// Batches that escalated to a rebuild.
    pub rebuild_batches: u64,
    /// Batches absorbed by a full re-run ([`MaintainMode::Rerun`]).
    pub full_reruns: u64,
    /// Cached query rows swept across all batches.
    pub rows_removed: u64,
    /// Query rows replayed across all batches.
    pub rows_added: u64,
    /// Target objects written across all in-place batches.
    pub objects_repaired: u64,
    /// Batches rejected by [`BatchConstraintMode::Enforce`] (not counted in
    /// `batches`; sources and target were reverted to the pre-batch state).
    pub rejected_batches: u64,
    /// Constraints validated (delta or full mode) across all checked batches,
    /// including rejected ones.
    pub constraints_checked: u64,
    /// Constraints skipped by read-set analysis across all checked batches.
    pub constraints_skipped: u64,
    /// Objects/bindings examined by constraint checks across all batches.
    pub constraint_objects: u64,
    /// Attribute-index probes issued by constraint checks across all batches.
    pub constraint_probes: u64,
    /// Constraint violations found across all checked batches (reported or
    /// rejected).
    pub constraint_violations: u64,
    /// Execution statistics of all maintenance plan evaluations (initial
    /// fills, rotations, churn refills, rebuilds, and full re-runs).
    pub delta_exec: ExecStats,
}

/// The exact position of an evaluation unit in the canonical (fresh-run)
/// evaluation order. `Ord` is the fresh run's chronology: queries run in
/// schedule order; within a query, deferred `Map` levels run bottom-up with
/// each level sweeping all rows in trace-key order; the insert phase
/// (`stage == u32::MAX`) then visits rows in trace-key order, and within a
/// row its actions' key/mk/attribute units left to right.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct MintPos {
    /// Query rank in the schedule's apply order.
    query: usize,
    /// Deferred-map level (bottom-up), or `u32::MAX` for the insert phase.
    stage: u32,
    /// Trace key of the row being evaluated.
    key: Vec<Oid>,
    /// Evaluation unit within the stage: the binding index for a deferred
    /// level; `action*1000 + {0: key, 1: mk, 2+i: attr i}` for inserts.
    slot: u32,
    /// Index among one unit's fresh mints of the same class.
    sub: u32,
}

/// Reference-counted contributions to one target object: how many rows
/// assert its existence, and how many assert each `(attribute, value)`.
#[derive(Clone, Debug, Default)]
struct Support {
    keyed: u64,
    attrs: BTreeMap<Label, BTreeMap<Value, u64>>,
}

/// What a target object's support settles to.
enum Settled {
    /// No row asserts the object any more.
    Gone,
    /// Two rows assert different values for the label.
    Conflicting(Label),
    /// The unique merged record.
    Record(Value),
}

/// First-mint positions and contribution supports for every target identity.
#[derive(Clone, Debug, Default)]
struct TargetLedger {
    positions: BTreeMap<Oid, MintPos>,
    class_mints: BTreeMap<ClassName, BTreeMap<MintPos, Oid>>,
    supports: BTreeMap<Oid, Support>,
}

impl TargetLedger {
    fn record_mint(&mut self, oid: &Oid, pos: MintPos) {
        self.class_mints
            .entry(oid.class().clone())
            .or_default()
            .insert(pos.clone(), oid.clone());
        self.positions.insert(oid.clone(), pos);
    }

    fn displace(&mut self, oid: &Oid) -> Option<MintPos> {
        let pos = self.positions.remove(oid)?;
        if let Some(mints) = self.class_mints.get_mut(oid.class()) {
            mints.remove(&pos);
        }
        Some(pos)
    }

    fn class_max(&self, class: &ClassName) -> Option<&MintPos> {
        self.class_mints
            .get(class)
            .and_then(|m| m.keys().next_back())
    }

    fn add_support(&mut self, oid: &Oid, record: &Value) {
        let support = self.supports.entry(oid.clone()).or_default();
        support.keyed += 1;
        if let Value::Record(fields) = record {
            for (label, value) in fields {
                *support
                    .attrs
                    .entry(label.clone())
                    .or_default()
                    .entry(value.clone())
                    .or_insert(0) += 1;
            }
        }
    }

    fn remove_support(&mut self, oid: &Oid, record: &Value) -> Result<()> {
        let underflow =
            || MorphaseError::Execution(format!("support underflow for target object {oid}"));
        let support = self.supports.get_mut(oid).ok_or_else(underflow)?;
        support.keyed = support.keyed.checked_sub(1).ok_or_else(underflow)?;
        if let Value::Record(fields) = record {
            for (label, value) in fields {
                let per_value = support.attrs.get_mut(label).ok_or_else(underflow)?;
                let count = per_value.get_mut(value).ok_or_else(underflow)?;
                *count = count.checked_sub(1).ok_or_else(underflow)?;
                if *count == 0 {
                    per_value.remove(value);
                    if per_value.is_empty() {
                        support.attrs.remove(label);
                    }
                }
            }
        }
        Ok(())
    }

    fn settled(&self, oid: &Oid) -> Settled {
        let Some(support) = self.supports.get(oid) else {
            return Settled::Gone;
        };
        if support.keyed == 0 {
            return Settled::Gone;
        }
        let mut fields = BTreeMap::new();
        for (label, per_value) in &support.attrs {
            if per_value.len() > 1 {
                return Settled::Conflicting(label.clone());
            }
            if let Some(value) = per_value.keys().next() {
                fields.insert(label.clone(), value.clone());
            }
        }
        Settled::Record(Value::Record(fields))
    }
}

/// Per-query capability analysis (see the module docs).
#[derive(Clone, Debug)]
struct QueryAnalysis {
    /// Scan slots in trace order; the row key is their identity tuple.
    slots: Vec<Slot>,
    /// The Skolem-free plan below the deepest Skolem-bearing `Map`.
    stripped: Plan,
    /// Skolem-bearing `Map` levels peeled off the root, bottom-up.
    deferred: Vec<Vec<(String, Expr)>>,
    /// Classes read through dereferences not covered by the trace key.
    foreign: BTreeSet<ClassName>,
    /// True when some projection's base type is unresolvable: the query may
    /// read arbitrary objects, so any staleness churns it.
    opaque: bool,
}

/// Statically inferred expression type, precise only where it matters.
#[derive(Clone, Debug)]
enum Ty {
    Known(Type),
    /// Definitely not an object identity (booleans, comparisons, scalars).
    Scalar,
    Unknown,
}

/// Schema-typed projection classifier (see module docs: delta propagation).
struct DerefScan<'a> {
    schemas: &'a [&'a Schema],
    scan_vars: BTreeSet<String>,
    env: BTreeMap<String, Ty>,
    foreign: BTreeSet<ClassName>,
    opaque: bool,
}

impl DerefScan<'_> {
    fn class_value_type(&self, class: &ClassName) -> Option<&Type> {
        self.schemas.iter().find_map(|s| s.class_type(class))
    }

    fn type_of_value(&self, value: &Value) -> Ty {
        match value {
            Value::Oid(oid) => Ty::Known(Type::Class(oid.class().clone())),
            Value::Record(fields) => {
                let mut tys = Vec::new();
                for (label, v) in fields {
                    match self.type_of_value(v) {
                        Ty::Known(t) => tys.push((label.clone(), t)),
                        _ => return Ty::Unknown,
                    }
                }
                Ty::Known(Type::Record(tys))
            }
            Value::Bool(_) | Value::Int(_) | Value::Real(_) | Value::Str(_) | Value::Unit => {
                Ty::Scalar
            }
            Value::Set(_) | Value::List(_) | Value::Variant(..) | Value::Absent => Ty::Unknown,
        }
    }

    fn visit(&mut self, expr: &Expr) -> Ty {
        match expr {
            Expr::Var(v) => self.env.get(v).cloned().unwrap_or(Ty::Unknown),
            Expr::Const(v) => self.type_of_value(v),
            Expr::Proj(base, label) => {
                let base_ty = self.visit(base);
                self.project(base_ty, base, label)
            }
            Expr::Record(fields) => {
                let mut tys = Vec::new();
                let mut all_known = true;
                for (label, fe) in fields {
                    match self.visit(fe) {
                        Ty::Known(t) => tys.push((label.clone(), t)),
                        _ => all_known = false,
                    }
                }
                if all_known {
                    Ty::Known(Type::Record(tys))
                } else {
                    Ty::Unknown
                }
            }
            Expr::Variant(_, inner) => {
                self.visit(inner);
                Ty::Unknown
            }
            Expr::Skolem(class, inner) => {
                self.visit(inner);
                Ty::Known(Type::Class(class.clone()))
            }
            Expr::Eq(a, b) | Expr::Neq(a, b) | Expr::Lt(a, b) | Expr::Leq(a, b) => {
                self.visit(a);
                self.visit(b);
                Ty::Scalar
            }
            Expr::And(es) => {
                for e in es {
                    self.visit(e);
                }
                Ty::Scalar
            }
            Expr::Not(inner) => {
                self.visit(inner);
                Ty::Scalar
            }
        }
    }

    /// Classify the dereferences a projection performs while resolving its
    /// base down to a record, and return the projected field's type.
    fn project(&mut self, base_ty: Ty, base: &Expr, label: &Label) -> Ty {
        let mut ty = base_ty;
        // Only the base expression's *own* identity is covered by the trace
        // key, and only when it is literally a scanned variable.
        let mut covered = matches!(base, Expr::Var(v) if self.scan_vars.contains(v));
        loop {
            match ty {
                Ty::Known(Type::Optional(inner)) => ty = Ty::Known(*inner),
                Ty::Known(Type::Class(class)) => {
                    if !covered {
                        self.foreign.insert(class.clone());
                    }
                    covered = false;
                    match self.class_value_type(&class) {
                        Some(t) => ty = Ty::Known(t.clone()),
                        None => {
                            self.opaque = true;
                            return Ty::Unknown;
                        }
                    }
                }
                Ty::Known(Type::Record(fields)) => {
                    return match fields.iter().find(|(l, _)| l == label) {
                        Some((_, t)) => Ty::Known(t.clone()),
                        None => {
                            self.opaque = true;
                            Ty::Unknown
                        }
                    };
                }
                Ty::Known(_) | Ty::Scalar | Ty::Unknown => {
                    self.opaque = true;
                    return Ty::Unknown;
                }
            }
        }
    }

    /// Walk a plan in evaluation order, binding scan variables and `Map`
    /// bindings into the typing environment as they come into scope.
    fn walk_plan(&mut self, plan: &Plan) {
        match plan {
            Plan::Scan { class, var } => {
                self.env
                    .insert(var.clone(), Ty::Known(Type::Class(class.clone())));
            }
            Plan::Filter { input, predicate } => {
                self.walk_plan(input);
                self.visit(predicate);
            }
            Plan::Map { input, bindings } => {
                self.walk_plan(input);
                for (var, expr) in bindings {
                    let ty = self.visit(expr);
                    self.env.insert(var.clone(), ty);
                }
            }
            Plan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                self.walk_plan(left);
                self.walk_plan(right);
                if let Some(p) = predicate {
                    self.visit(p);
                }
            }
            Plan::HashJoin { left, right, keys } => {
                self.walk_plan(left);
                self.walk_plan(right);
                for (l, r) in keys {
                    self.visit(l);
                    self.visit(r);
                }
            }
            Plan::CrossJoin { left, right } => {
                self.walk_plan(left);
                self.walk_plan(right);
            }
            Plan::Distinct { input } => self.walk_plan(input),
        }
    }
}

/// Split a plan at the deepest root-contiguous `Map` carrying a Skolem
/// binding: `(deferred levels bottom-up, plan below)`.
fn peel_deferred(plan: &Plan) -> (Vec<Vec<(String, Expr)>>, &Plan) {
    let mut maps: Vec<&Vec<(String, Expr)>> = Vec::new();
    let mut cur = plan;
    while let Plan::Map { input, bindings } = cur {
        maps.push(bindings);
        cur = input;
    }
    let Some(deepest) = maps
        .iter()
        .rposition(|b| b.iter().any(|(_, e)| e.contains_skolem()))
    else {
        return (Vec::new(), plan);
    };
    let deferred = maps[..=deepest]
        .iter()
        .rev()
        .map(|b| (*b).clone())
        .collect();
    let mut below = plan;
    for _ in 0..=deepest {
        if let Plan::Map { input, .. } = below {
            below = input;
        }
    }
    (deferred, below)
}

/// Analyse one query for incremental capability. `None` means the query
/// defeats the analysis and forces [`MaintainMode::Rerun`].
fn analyze_query(query: &Query, schemas: &[&Schema]) -> Option<QueryAnalysis> {
    let trace = scan_order_trace(&query.plan)?;
    let (deferred, stripped) = peel_deferred(&query.plan);
    // Mints below a row-dropping operator would be invisible to the row
    // cache: the replayable part must be entirely Skolem-free.
    if stripped.expressions().iter().any(|e| e.contains_skolem()) {
        return None;
    }
    let mut scan_classes: BTreeMap<String, ClassName> = BTreeMap::new();
    collect_scans(&query.plan, &mut scan_classes);
    let slots: Vec<Slot> = trace
        .iter()
        .map(|var| {
            scan_classes
                .get(var)
                .map(|class| Slot::new(var.clone(), class.clone()))
        })
        .collect::<Option<_>>()?;
    let mut scan = DerefScan {
        schemas,
        scan_vars: trace.into_iter().collect(),
        env: BTreeMap::new(),
        foreign: BTreeSet::new(),
        opaque: false,
    };
    scan.walk_plan(stripped);
    for level in &deferred {
        for (var, expr) in level {
            let ty = scan.visit(expr);
            scan.env.insert(var.clone(), ty);
        }
    }
    for action in &query.inserts {
        scan.visit(&action.key);
        for (_, expr) in &action.attrs {
            scan.visit(expr);
        }
    }
    Some(QueryAnalysis {
        slots,
        stripped: stripped.clone(),
        deferred,
        foreign: scan.foreign,
        opaque: scan.opaque,
    })
}

fn collect_scans(plan: &Plan, out: &mut BTreeMap<String, ClassName>) {
    match plan {
        Plan::Scan { class, var } => {
            out.insert(var.clone(), class.clone());
        }
        Plan::Filter { input, .. } | Plan::Map { input, .. } | Plan::Distinct { input } => {
            collect_scans(input, out)
        }
        Plan::NestedLoopJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::CrossJoin { left, right } => {
            collect_scans(left, out);
            collect_scans(right, out);
        }
    }
}

/// One cached row of one query's stripped plan.
#[derive(Clone, Debug, Default)]
struct CachedRow {
    /// The stripped plan's output row (no deferred bindings).
    row: Row,
    /// Target contributions this row's inserts performed, in action order.
    contribs: Vec<(Oid, Value)>,
    /// Target identities whose *first* mint this row performed.
    first_mints: Vec<(Oid, MintPos)>,
}

/// Working state of one row being replayed.
struct RowWork {
    key: Vec<Oid>,
    /// The stripped row, preserved for the cache entry.
    base: Row,
    /// Working copy, extended by deferred bindings.
    row: Row,
    dropped: bool,
    contribs: Vec<(Oid, Value)>,
    first_mints: Vec<(Oid, MintPos)>,
}

impl RowWork {
    fn seed(key: Vec<Oid>, row: Row) -> RowWork {
        RowWork {
            key,
            base: row.clone(),
            row,
            dropped: false,
            contribs: Vec::new(),
            first_mints: Vec::new(),
        }
    }
}

/// Repair-mode extras: positional safety checks and touched-object tracking.
struct Repair<'a> {
    displaced: &'a mut BTreeMap<Oid, MintPos>,
    touched: &'a mut BTreeSet<Oid>,
    trigger: &'a mut Option<String>,
}

/// Replays rows through deferred bindings and insert actions, mirroring the
/// executor's evaluation order and Skolem numbering exactly.
struct Replayer<'a, 'e> {
    ctx: &'a mut EvalCtx<'e>,
    ledger: &'a mut TargetLedger,
    target_classes: &'a BTreeSet<ClassName>,
    /// Rebuild mode: write contributions straight into this fresh target.
    target: Option<&'a mut Instance>,
    /// Repair mode: check positions instead of writing the target.
    repair: Option<Repair<'a>>,
}

impl Replayer<'_, '_> {
    fn triggered(&self) -> bool {
        self.repair.as_ref().is_some_and(|r| r.trigger.is_some())
    }

    fn trip(&mut self, reason: String) {
        if let Some(rep) = self.repair.as_mut() {
            if rep.trigger.is_none() {
                *rep.trigger = Some(reason);
            }
        }
    }

    /// Replay `work` through one query: deferred levels bottom-up (each
    /// level sweeping all rows in key order), then the insert phase.
    fn replay_query(
        &mut self,
        rank: usize,
        query: &Query,
        analysis: &QueryAnalysis,
        work: &mut [RowWork],
    ) -> Result<()> {
        for (level, bindings) in analysis.deferred.iter().enumerate() {
            for w in work.iter_mut() {
                if w.dropped {
                    continue;
                }
                for (slot, (var, expr)) in bindings.iter().enumerate() {
                    let pos = MintPos {
                        query: rank,
                        stage: level as u32,
                        key: w.key.clone(),
                        slot: slot as u32,
                        sub: 0,
                    };
                    match self.eval_unit(expr, &w.row, pos, &mut w.first_mints) {
                        Ok(v) => {
                            w.row.insert(var.clone(), v);
                        }
                        // The executor's `Map` drops rows on BadValue.
                        Err(CplError::BadValue(_)) => {
                            w.dropped = true;
                            break;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                if self.triggered() {
                    return Ok(());
                }
            }
        }
        for w in work.iter_mut() {
            if w.dropped {
                continue;
            }
            for (ai, action) in query.inserts.iter().enumerate() {
                let base = (ai as u32) * 1000;
                let at = |slot: u32| MintPos {
                    query: rank,
                    stage: u32::MAX,
                    key: w.key.clone(),
                    slot,
                    sub: 0,
                };
                // The executor's insert loop propagates every error,
                // BadValue included.
                let key_val = self
                    .eval_unit(&action.key, &w.row, at(base), &mut w.first_mints)
                    .map_err(MorphaseError::from)?;
                let counter_before = self.ctx.factory.counter(&action.class);
                let oid = self.ctx.mk_skolem(&action.class, &key_val);
                let fresh = self.ctx.factory.counter(&action.class) > counter_before;
                self.note_identity(&oid, fresh, at(base + 1), &mut w.first_mints);
                let mut fields = BTreeMap::new();
                for (i, (label, expr)) in action.attrs.iter().enumerate() {
                    let v = self
                        .eval_unit(expr, &w.row, at(base + 2 + i as u32), &mut w.first_mints)
                        .map_err(MorphaseError::from)?;
                    fields.insert(label.clone(), v);
                }
                let record = Value::Record(fields);
                self.ledger.add_support(&oid, &record);
                if let Some(target) = self.target.as_deref_mut() {
                    write_contribution(target, &oid, &record, &query.name)?;
                }
                if let Some(rep) = self.repair.as_mut() {
                    rep.touched.insert(oid.clone());
                }
                w.contribs.push((oid, record));
            }
            if self.triggered() {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Evaluate one unit, recording (and in repair mode checking) the fresh
    /// Skolem mints it performs and the target identities it references.
    fn eval_unit(
        &mut self,
        expr: &Expr,
        row: &Row,
        pos: MintPos,
        first_mints: &mut Vec<(Oid, MintPos)>,
    ) -> std::result::Result<Value, CplError> {
        let minting = expr.contains_skolem();
        let before = minting.then(|| self.ctx.factory.counter_snapshot());
        let value = eval(expr, row, self.ctx)?;
        if let Some(before) = &before {
            let mut subs: BTreeMap<ClassName, u32> = BTreeMap::new();
            for (class, _key, oid) in self.ctx.factory.assignments_since(before) {
                let sub = subs.entry(class).or_insert(0);
                let p = MintPos {
                    sub: *sub,
                    ..pos.clone()
                };
                *sub += 1;
                self.record_fresh(&oid, p, first_mints);
            }
        }
        self.check_value(&value, &pos);
        Ok(value)
    }

    /// A brand-new identity was minted at `pos`. In repair mode it must sort
    /// after every existing first mint of its class, or the fresh run's
    /// numbering would interleave differently.
    fn record_fresh(&mut self, oid: &Oid, pos: MintPos, first_mints: &mut Vec<(Oid, MintPos)>) {
        if self.repair.is_some() {
            if let Some(max) = self.ledger.class_max(oid.class()) {
                if pos < *max {
                    self.trip(format!(
                        "fresh identity {oid} minted before the class's latest first mint"
                    ));
                }
            }
        }
        self.ledger.record_mint(oid, pos.clone());
        first_mints.push((oid.clone(), pos));
    }

    /// The mk unit of an insert action resolved to `oid`.
    fn note_identity(
        &mut self,
        oid: &Oid,
        fresh: bool,
        pos: MintPos,
        first_mints: &mut Vec<(Oid, MintPos)>,
    ) {
        if fresh {
            return self.record_fresh(oid, pos, first_mints);
        }
        if self.repair.is_none() {
            return;
        }
        if let Some(existing) = self.ledger.positions.get(oid) {
            if *existing > pos {
                self.trip(format!("first mint of {oid} would move earlier"));
            }
            return;
        }
        let Some(rep) = self.repair.as_mut() else {
            return;
        };
        if let Some(old_pos) = rep.displaced.get(oid).cloned() {
            // A swept row re-derived with the same key restores its first
            // mint at the exact same position — the in-place update path.
            if old_pos.query == pos.query
                && old_pos.stage == pos.stage
                && old_pos.key == pos.key
                && old_pos.slot == pos.slot
            {
                rep.displaced.remove(oid);
                rep.touched.insert(oid.clone());
                self.ledger.record_mint(oid, old_pos.clone());
                first_mints.push((oid.clone(), old_pos));
            } else {
                self.trip(format!(
                    "displaced identity {oid} re-minted at a different position"
                ));
            }
            return;
        }
        self.trip(format!("identity {oid} has unknown provenance"));
    }

    /// Walk an evaluated value for references to target identities: every
    /// referenced identity must already have its first mint at or before
    /// `pos`, or the incremental numbering diverges from a fresh run.
    fn check_value(&mut self, value: &Value, pos: &MintPos) {
        if self.repair.is_none() {
            return;
        }
        let mut stack = vec![value];
        while let Some(v) = stack.pop() {
            match v {
                Value::Oid(oid) if self.target_classes.contains(oid.class()) => {
                    match self.ledger.positions.get(oid) {
                        Some(existing) if *existing <= *pos => {}
                        Some(_) => self.trip(format!("row references {oid} before its first mint")),
                        None => self.trip(format!(
                            "row references {oid}, whose first mint is displaced or unknown"
                        )),
                    }
                }
                Value::Set(xs) => stack.extend(xs),
                Value::List(xs) => stack.extend(xs),
                Value::Record(fields) => stack.extend(fields.values()),
                Value::Variant(_, inner) => stack.push(inner),
                _ => {}
            }
        }
    }
}

/// Mirror of the executor's insert-or-merge object write.
fn write_contribution(
    target: &mut Instance,
    oid: &Oid,
    record: &Value,
    query_name: &str,
) -> Result<()> {
    match target.value(oid) {
        None => target.insert(oid.clone(), record.clone())?,
        Some(existing) => {
            let merged = existing.merge_records(record).ok_or_else(|| {
                MorphaseError::Execution(format!(
                    "object {oid} receives conflicting values from query `{query_name}`"
                ))
            })?;
            target.update(oid, merged)?;
        }
    }
    Ok(())
}

fn trace_key(slots: &[Slot], row: &Row) -> Result<Vec<Oid>> {
    slots
        .iter()
        .map(|s| match row.get(&s.var) {
            Some(Value::Oid(oid)) => Ok(oid.clone()),
            _ => Err(MorphaseError::Execution(format!(
                "scan variable `{}` missing from a produced row",
                s.var
            ))),
        })
        .collect()
}

/// The standing state of an incrementally maintained pipeline.
struct Core {
    queries: Vec<Query>,
    analyses: Vec<QueryAnalysis>,
    /// Schedule apply order (indices into `queries`).
    order: Vec<usize>,
    /// Per-query row caches, parallel to `queries`.
    caches: Vec<BTreeMap<Vec<Oid>, CachedRow>>,
    ledger: TargetLedger,
    factory: SkolemFactory,
    target: Instance,
    target_classes: BTreeSet<ClassName>,
}

enum CoreState {
    Incremental(Box<Core>),
    Rerun { target: Box<Instance> },
}

/// Compile against the current sources and build the standing state from
/// scratch: the one entry point for initial builds *and* rebuilds, so a
/// rebuilt pipeline is a fresh run by construction. Also returns the
/// augmented program's source constraints — the clauses per-batch
/// validation checks.
fn build_state(
    program: &Program,
    options: PipelineOptions,
    sources: &[Instance],
    exec: &mut ExecStats,
) -> Result<(CoreState, Vec<Clause>)> {
    let refs: Vec<&Instance> = sources.iter().collect();
    let compiled = compile_stages(options, program, &refs)?;
    let augmented = compiled.augmented;
    let constraints: Vec<Clause> = augmented
        .source_constraints()
        .into_iter()
        .map(|(_, c)| c.clone())
        .collect();
    let queries = compiled.queries;
    let target_classes: BTreeSet<ClassName> =
        augmented.target.schema.class_names().into_iter().collect();
    let schemas: Vec<&Schema> = augmented.sources.iter().map(|b| &b.schema).collect();
    let mut analyses = Vec::with_capacity(queries.len());
    let mut capable = true;
    for query in &queries {
        if query
            .plan
            .scanned_classes()
            .iter()
            .any(|c| target_classes.contains(c))
        {
            capable = false;
            break;
        }
        match analyze_query(query, &schemas) {
            Some(a) => analyses.push(a),
            None => {
                capable = false;
                break;
            }
        }
    }
    if !capable {
        let run = Morphase::with_options(options).transform(program, &refs)?;
        exec.absorb(run.exec);
        return Ok((
            CoreState::Rerun {
                target: Box::new(run.target),
            },
            constraints,
        ));
    }
    let schedule = plan_schedule(&queries);
    let order: Vec<usize> = schedule.stages.iter().flatten().copied().collect();

    // Fill the row caches from unrestricted stripped-plan runs, then replay
    // everything against a fresh factory and target.
    let mut caches: Vec<BTreeMap<Vec<Oid>, CachedRow>> = Vec::with_capacity(queries.len());
    let mut ledger = TargetLedger::default();
    let mut target = Instance::new(augmented.target.schema.name());
    let factory;
    {
        let mut ctx = EvalCtx::new(&refs).with_parallelism(options.parallelism);
        for analysis in &analyses {
            let rows = run_plan(&analysis.stripped, &mut ctx, exec)?;
            let mut cache = BTreeMap::new();
            for row in rows {
                let key = trace_key(&analysis.slots, &row)?;
                cache.insert(
                    key,
                    CachedRow {
                        row,
                        ..CachedRow::default()
                    },
                );
            }
            caches.push(cache);
        }
        // The fill runs above never mint (stripped plans are Skolem-free);
        // replay starts from a pristine factory regardless.
        ctx.factory = SkolemFactory::new();
        for (rank, &qi) in order.iter().enumerate() {
            let mut work: Vec<RowWork> = caches[qi]
                .iter()
                .map(|(k, c)| RowWork::seed(k.clone(), c.row.clone()))
                .collect();
            let mut replayer = Replayer {
                ctx: &mut ctx,
                ledger: &mut ledger,
                target_classes: &target_classes,
                target: Some(&mut target),
                repair: None,
            };
            replayer.replay_query(rank, &queries[qi], &analyses[qi], &mut work)?;
            for w in work {
                let entry = caches[qi].get_mut(&w.key).expect("seeded from this cache");
                entry.contribs = w.contribs;
                entry.first_mints = w.first_mints;
            }
        }
        factory = std::mem::replace(&mut ctx.factory, SkolemFactory::new());
    }
    if options.verify_target {
        verify_target_instance(&augmented, &target)?;
    }
    Ok((
        CoreState::Incremental(Box::new(Core {
            queries,
            analyses,
            order,
            caches,
            ledger,
            factory,
            target,
            target_classes,
        })),
        constraints,
    ))
}

enum RepairOutcome {
    InPlace {
        rows_removed: u64,
        rows_added: u64,
        objects_repaired: u64,
    },
    Rebuild(String),
}

/// Absorb one applied batch into the standing state, or report that a
/// rebuild is required. On `Ok(Rebuild)` the core is stale and must be
/// replaced; on `Err` the pipeline must be poisoned.
fn repair_incremental(
    sources: &[Instance],
    mutated: usize,
    options: PipelineOptions,
    core: &mut Core,
    delta: &BatchDelta,
    exec: &mut ExecStats,
) -> Result<RepairOutcome> {
    let refs: Vec<&Instance> = sources.iter().collect();
    let mut displaced: BTreeMap<Oid, MintPos> = BTreeMap::new();
    let mut touched: BTreeSet<Oid> = BTreeSet::new();
    let mut rows_removed = 0u64;
    let mut rows_added = 0u64;
    let mut trigger: Option<String> = None;

    // Phase A: sweep stale rows, in schedule order.
    let mut churns = vec![false; core.queries.len()];
    for &qi in &core.order {
        let analysis = &core.analyses[qi];
        let churn = (analysis.opaque && delta.has_stale())
            || analysis
                .foreign
                .iter()
                .any(|c| delta.class(c).is_some_and(|d| !d.stale().is_empty()));
        churns[qi] = churn;
        let victims: Vec<Vec<Oid>> = if churn {
            core.caches[qi].keys().cloned().collect()
        } else {
            let stale: Vec<Option<BTreeSet<Oid>>> = analysis
                .slots
                .iter()
                .map(|s| delta.class(&s.class).map(|d| d.stale()))
                .collect();
            if stale
                .iter()
                .all(|s| s.as_ref().is_none_or(|s| s.is_empty()))
            {
                Vec::new()
            } else {
                core.caches[qi]
                    .keys()
                    .filter(|key| {
                        key.iter()
                            .zip(&stale)
                            .any(|(oid, s)| s.as_ref().is_some_and(|s| s.contains(oid)))
                    })
                    .cloned()
                    .collect()
            }
        };
        for key in victims {
            let entry = core.caches[qi].remove(&key).expect("victim key from cache");
            rows_removed += 1;
            for (oid, record) in &entry.contribs {
                core.ledger.remove_support(oid, record)?;
                touched.insert(oid.clone());
            }
            for (oid, _) in &entry.first_mints {
                if let Some(pos) = core.ledger.displace(oid) {
                    displaced.insert(oid.clone(), pos);
                }
                touched.insert(oid.clone());
            }
        }
    }

    // Phase B: derive and replay the added rows, in schedule order.
    {
        let mut ctx = EvalCtx::new(&refs).with_parallelism(options.parallelism);
        ctx.factory = std::mem::replace(&mut core.factory, SkolemFactory::new());
        let result = (|| -> Result<()> {
            for (rank, &qi) in core.order.iter().enumerate() {
                let analysis = &core.analyses[qi];
                let mut added: BTreeMap<Vec<Oid>, Row> = BTreeMap::new();
                if churns[qi] {
                    for row in run_plan(&analysis.stripped, &mut ctx, exec)? {
                        added.insert(trace_key(&analysis.slots, &row)?, row);
                    }
                } else {
                    for rotation in delta_rotations(&analysis.slots, delta, &sources[mutated]) {
                        for (var, set) in &rotation.restrictions {
                            ctx.restrict_scan(var.clone(), Arc::clone(set));
                        }
                        let rows = run_plan(&analysis.stripped, &mut ctx, exec);
                        ctx.clear_scan_restrictions();
                        for row in rows? {
                            added.insert(trace_key(&analysis.slots, &row)?, row);
                        }
                    }
                }
                if let Some(key) = added.keys().find(|k| core.caches[qi].contains_key(*k)) {
                    trigger = Some(format!(
                        "derived row {key:?} collides with a surviving cached row"
                    ));
                    return Ok(());
                }
                let mut work: Vec<RowWork> = added
                    .into_iter()
                    .map(|(key, row)| RowWork::seed(key, row))
                    .collect();
                rows_added += work.len() as u64;
                let mut replayer = Replayer {
                    ctx: &mut ctx,
                    ledger: &mut core.ledger,
                    target_classes: &core.target_classes,
                    target: None,
                    repair: Some(Repair {
                        displaced: &mut displaced,
                        touched: &mut touched,
                        trigger: &mut trigger,
                    }),
                };
                replayer.replay_query(rank, &core.queries[qi], analysis, &mut work)?;
                if trigger.is_some() {
                    return Ok(());
                }
                for w in work {
                    core.caches[qi].insert(
                        w.key.clone(),
                        CachedRow {
                            row: w.base,
                            contribs: w.contribs,
                            first_mints: w.first_mints,
                        },
                    );
                }
            }
            Ok(())
        })();
        core.factory = std::mem::replace(&mut ctx.factory, SkolemFactory::new());
        result?;
    }

    // Phase C: finalise. Any unrestored invariant escalates to a rebuild.
    if trigger.is_none() && !displaced.is_empty() {
        trigger = Some(format!(
            "{} first-minted identities were not restored",
            displaced.len()
        ));
    }
    if let Some(reason) = trigger {
        return Ok(RepairOutcome::Rebuild(reason));
    }
    let mut objects_repaired = 0u64;
    for oid in &touched {
        match core.ledger.settled(oid) {
            Settled::Gone => {
                return Ok(RepairOutcome::Rebuild(format!(
                    "object {oid} lost all contributions"
                )))
            }
            Settled::Conflicting(label) => {
                return Ok(RepairOutcome::Rebuild(format!(
                    "object {oid} has conflicting contributions for `{label}`"
                )))
            }
            Settled::Record(record) => match core.target.value(oid) {
                Some(existing) if *existing == record => {}
                Some(_) => {
                    core.target.update(oid, record)?;
                    objects_repaired += 1;
                }
                None => {
                    core.target.insert(oid.clone(), record)?;
                    objects_repaired += 1;
                }
            },
        }
    }
    Ok(RepairOutcome::InPlace {
        rows_removed,
        rows_added,
        objects_repaired,
    })
}

/// Fingerprint identifying which program a maintenance journal belongs to.
/// The journal stores *source* data, so only the dataset-shaping inputs are
/// hashed: program name, schema names, and clause count.
fn maintenance_fingerprint(program: &Program) -> u64 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut hash: u64 = 0xCBF2_9CE4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        }
        hash ^= 0xFF;
        hash = hash.wrapping_mul(PRIME);
    };
    eat(b"maintenance");
    eat(program.name.as_bytes());
    eat(program.target.schema.name().as_bytes());
    for binding in &program.sources {
        eat(binding.schema.name().as_bytes());
    }
    eat(&(program.clauses.len() as u64).to_le_bytes());
    hash
}

/// A standing, incrementally maintained Morphase pipeline (see the module
/// docs for the maintenance semantics).
pub struct MaterializedPipeline {
    program: Program,
    options: PipelineOptions,
    sources: Vec<Instance>,
    state: CoreState,
    stats: MaintainStats,
    source_classes: BTreeSet<ClassName>,
    /// The augmented program's source constraints, validated per batch when
    /// [`BatchConstraintMode`] is not `Off`.
    constraints: Vec<Clause>,
    /// Indices into `constraints` whose pre-batch cleanliness is unknown:
    /// a committed (`Report`-mode) batch left them violated, so the next
    /// check runs them in full until they come back clean.
    suspects: BTreeSet<usize>,
    journal: Option<PipelineJournal>,
    next_batch: u64,
    recovered: u64,
    poisoned: bool,
}

impl MaterializedPipeline {
    /// Build the pipeline: run the program over `sources` and stand up the
    /// maintenance state.
    pub fn new(
        program: &Program,
        sources: Vec<Instance>,
        options: PipelineOptions,
    ) -> Result<MaterializedPipeline> {
        let mut stats = MaintainStats::default();
        let (state, constraints) = build_state(program, options, &sources, &mut stats.delta_exec)?;
        Ok(MaterializedPipeline {
            source_classes: Self::source_classes(program),
            program: program.clone(),
            options,
            sources,
            state,
            stats,
            constraints,
            suspects: BTreeSet::new(),
            journal: None,
            next_batch: 0,
            recovered: 0,
            poisoned: false,
        })
    }

    /// Build a durable pipeline journalling its (single) source into
    /// `durable.dir`. A journal left by a crashed pipeline for the same
    /// program is recovered: the source is rebuilt from the batch-0 dump
    /// plus every committed batch, and the pipeline stands up over it —
    /// callers re-apply only what [`Self::recovered_batches`] reports
    /// missing. The instance passed in `sources` seeds the journal on first
    /// open and is ignored when recovering.
    pub fn new_durable(
        program: &Program,
        sources: Vec<Instance>,
        options: PipelineOptions,
        durable: &DurableOptions,
    ) -> Result<MaterializedPipeline> {
        if sources.len() != 1 {
            return Err(MorphaseError::Durability(
                "durable maintenance supports exactly one source instance".into(),
            ));
        }
        let source_schema = program
            .sources
            .first()
            .map(|b| b.schema.name().to_string())
            .ok_or_else(|| MorphaseError::Durability("program binds no source schema".into()))?;
        let fingerprint = maintenance_fingerprint(program);
        let (mut journal, recovery) =
            PipelineJournal::open(&durable.dir, fingerprint, &source_schema, durable.fault)?;
        let (mut source, recovered, next_batch) = if recovery.completed > 0 {
            (
                recovery.instance,
                recovery.completed - 1,
                recovery.completed,
            )
        } else {
            let source = sources.into_iter().next().expect("length checked above");
            let dump: Vec<Mutation> = source
                .all_objects()
                .map(|(oid, value)| Mutation::Insert(oid.clone(), value.clone()))
                .collect();
            journal.record_query(0, dump, Vec::new(), &source)?;
            (source, 0, 1)
        };
        source.begin_mutation_log();
        let sources = vec![source];
        let mut stats = MaintainStats::default();
        let (state, constraints) = build_state(program, options, &sources, &mut stats.delta_exec)?;
        Ok(MaterializedPipeline {
            source_classes: Self::source_classes(program),
            program: program.clone(),
            options,
            sources,
            state,
            stats,
            constraints,
            suspects: BTreeSet::new(),
            journal: Some(journal),
            next_batch,
            recovered,
            poisoned: false,
        })
    }

    fn source_classes(program: &Program) -> BTreeSet<ClassName> {
        program
            .sources
            .iter()
            .flat_map(|b| b.schema.class_names())
            .collect()
    }

    /// Apply a mutation batch to source 0 and repair the target.
    pub fn apply_batch(&mut self, batch: &MutationBatch) -> Result<BatchReport> {
        self.apply_batch_to(0, batch)
    }

    /// Apply a mutation batch to the given source and repair the target.
    /// Validation failures and constraint rejections
    /// ([`BatchConstraintMode::Enforce`]) leave the pipeline untouched; any
    /// failure after the source mutated poisons the pipeline (its state may
    /// no longer be consistent), and every later call errors.
    pub fn apply_batch_to(&mut self, source: usize, batch: &MutationBatch) -> Result<BatchReport> {
        if self.poisoned {
            return Err(MorphaseError::Execution(
                "materialized pipeline is poisoned by an earlier failure".into(),
            ));
        }
        self.validate_batch(source, batch)?;
        let mode = self.options.batch_constraints;
        let preimages = if mode == BatchConstraintMode::Enforce {
            self.sources[source].batch_preimages(batch)
        } else {
            Vec::new()
        };
        let delta = match self.sources[source].apply_batch(batch) {
            Ok(delta) => delta,
            Err(e) => {
                self.poisoned = true;
                return Err(e.into());
            }
        };
        let constraints = if mode == BatchConstraintMode::Off {
            None
        } else {
            self.check_batch_constraints(source, &delta, mode, &preimages)?
        };
        self.stats.batches += 1;
        let report = match self.maintain(source, &delta) {
            Ok(report) => report,
            Err(e) => {
                self.poisoned = true;
                return Err(e);
            }
        };
        if let Some(journal) = self.journal.as_mut() {
            let mutations = self.sources[source].take_mutation_log();
            if let Err(e) = journal.record_query(
                self.next_batch,
                mutations,
                Vec::new(),
                &self.sources[source],
            ) {
                self.poisoned = true;
                return Err(e.into());
            }
            self.next_batch += 1;
        }
        Ok(BatchReport {
            constraints,
            ..report
        })
    }

    /// Run the incremental constraint check for an applied batch. In
    /// `Enforce` mode a violating batch is reverted (sources back to the
    /// pre-batch state, bit-exact) and rejected with the full deterministic
    /// violation list — the pipeline stays healthy. Internal failures
    /// (check or revert errors) poison the pipeline.
    fn check_batch_constraints(
        &mut self,
        source: usize,
        delta: &BatchDelta,
        mode: BatchConstraintMode,
        preimages: &[(Oid, Value)],
    ) -> Result<Option<BatchCheck>> {
        let check = {
            let clause_refs: Vec<&Clause> = self.constraints.iter().collect();
            let refs: Vec<&Instance> = self.sources.iter().collect();
            let dbs = Databases::new(&refs);
            match check_batch(
                &clause_refs,
                &dbs,
                delta,
                self.options.parallelism,
                &self.suspects,
            ) {
                Ok(check) => check,
                Err(e) => {
                    self.poisoned = true;
                    return Err(MorphaseError::Verification(e.to_string()));
                }
            }
        };
        self.stats.constraints_checked += check.certificate.validated();
        self.stats.constraints_skipped += check.certificate.skipped();
        self.stats.constraint_objects += check.certificate.checked();
        self.stats.constraint_probes += check.certificate.probes();
        self.stats.constraint_violations += check.certificate.violation_count();
        if !check.violations.is_empty() && mode == BatchConstraintMode::Enforce {
            if let Err(e) = self.sources[source].revert_batch(delta, preimages) {
                self.poisoned = true;
                return Err(e.into());
            }
            if self.journal.is_some() {
                // The journal must never see the rejected ops or their
                // reverts — drop them from the mutation log.
                let _ = self.sources[source].take_mutation_log();
            }
            self.stats.rejected_batches += 1;
            return Err(MorphaseError::Verification(
                EngineError::ConstraintsViolated {
                    violations: check.violations,
                }
                .to_string(),
            ));
        }
        // The committed state satisfies every constraint that checked clean;
        // ones still violated (Report mode commits them anyway) lose the
        // pre-clean contract and stay on full re-check until they recover.
        self.suspects = check
            .certificate
            .entries
            .iter()
            .enumerate()
            .filter(|(_, entry)| !entry.violations.is_empty())
            .map(|(idx, _)| idx)
            .collect();
        Ok(Some(check))
    }

    /// Reject malformed batches before mutating anything: unknown classes,
    /// and updates/removes of identities absent from the source (net of
    /// earlier removes in the same batch).
    fn validate_batch(&self, source: usize, batch: &MutationBatch) -> Result<()> {
        let instance = self.sources.get(source).ok_or_else(|| {
            MorphaseError::Execution(format!("no source instance at index {source}"))
        })?;
        let mut removed: BTreeSet<&Oid> = BTreeSet::new();
        for op in &batch.ops {
            match op {
                SourceOp::Insert { class, .. } => {
                    if !self.source_classes.contains(class) {
                        return Err(MorphaseError::Model(format!(
                            "insert into unknown source class `{class}`"
                        )));
                    }
                }
                SourceOp::Update { oid, .. } => {
                    if removed.contains(oid) || !instance.contains(oid) {
                        return Err(MorphaseError::Model(format!(
                            "update of unknown object {oid}"
                        )));
                    }
                }
                SourceOp::Remove { oid } => {
                    if removed.contains(oid) || !instance.contains(oid) {
                        return Err(MorphaseError::Model(format!(
                            "remove of unknown object {oid}"
                        )));
                    }
                    removed.insert(oid);
                }
            }
        }
        Ok(())
    }

    fn maintain(&mut self, source: usize, delta: &BatchDelta) -> Result<BatchReport> {
        if matches!(self.state, CoreState::Rerun { .. }) {
            let refs: Vec<&Instance> = self.sources.iter().collect();
            let run = Morphase::with_options(self.options).transform(&self.program, &refs)?;
            self.stats.full_reruns += 1;
            self.stats.delta_exec.absorb(run.exec);
            self.state = CoreState::Rerun {
                target: Box::new(run.target),
            };
            return Ok(BatchReport {
                outcome: BatchOutcome::FullRerun,
                rows_removed: 0,
                rows_added: 0,
                objects_repaired: 0,
                rebuild_reason: None,
                constraints: None,
            });
        }
        let CoreState::Incremental(core) = &mut self.state else {
            unreachable!("checked above");
        };
        let outcome = repair_incremental(
            &self.sources,
            source,
            self.options,
            core,
            delta,
            &mut self.stats.delta_exec,
        )?;
        match outcome {
            RepairOutcome::InPlace {
                rows_removed,
                rows_added,
                objects_repaired,
            } => {
                self.stats.inplace_batches += 1;
                self.stats.rows_removed += rows_removed;
                self.stats.rows_added += rows_added;
                self.stats.objects_repaired += objects_repaired;
                Ok(BatchReport {
                    outcome: BatchOutcome::InPlace,
                    rows_removed,
                    rows_added,
                    objects_repaired,
                    rebuild_reason: None,
                    constraints: None,
                })
            }
            RepairOutcome::Rebuild(reason) => {
                let (state, constraints) = build_state(
                    &self.program,
                    self.options,
                    &self.sources,
                    &mut self.stats.delta_exec,
                )?;
                self.state = state;
                self.constraints = constraints;
                self.stats.rebuild_batches += 1;
                Ok(BatchReport {
                    outcome: BatchOutcome::Rebuild,
                    rows_removed: 0,
                    rows_added: 0,
                    objects_repaired: 0,
                    rebuild_reason: Some(reason),
                    constraints: None,
                })
            }
        }
    }

    /// The maintained target instance.
    pub fn target(&self) -> &Instance {
        match &self.state {
            CoreState::Incremental(core) => &core.target,
            CoreState::Rerun { target } => target,
        }
    }

    /// A source instance, as currently mutated.
    pub fn source(&self, index: usize) -> Option<&Instance> {
        self.sources.get(index)
    }

    /// Cumulative maintenance statistics.
    pub fn stats(&self) -> &MaintainStats {
        &self.stats
    }

    /// The augmented program's source constraints, in check order — the
    /// clause list a batch's [`ConstraintCertificate`] entries parallel
    /// (pass these to [`wol_engine::recheck`] to audit a certificate).
    ///
    /// [`ConstraintCertificate`]: wol_engine::ConstraintCertificate
    pub fn constraints(&self) -> &[Clause] {
        &self.constraints
    }

    /// The maintenance mode the current compile landed in.
    pub fn mode(&self) -> MaintainMode {
        match self.state {
            CoreState::Incremental(_) => MaintainMode::Incremental,
            CoreState::Rerun { .. } => MaintainMode::Rerun,
        }
    }

    /// True once a failure after a source mutation left the pipeline
    /// inconsistent; every later [`Self::apply_batch`] errors.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned
    }

    /// How many applied batches a durable open recovered from the journal.
    pub fn recovered_batches(&self) -> u64 {
        self.recovered
    }

    /// Durable epilogue: fold the journal's WAL into a compact source
    /// snapshot. The pipeline keeps accepting batches afterwards.
    pub fn checkpoint(&mut self) -> Result<()> {
        if let Some(journal) = self.journal.as_mut() {
            journal.finish(&self.sources[0], &SkolemState::default())?;
        }
        Ok(())
    }

    /// Run the program from scratch over the current sources — the oracle
    /// the maintained target is bit-identical to.
    pub fn rerun_oracle(&self) -> Result<MorphaseRun> {
        let refs: Vec<&Instance> = self.sources.iter().collect();
        Morphase::with_options(self.options).transform(&self.program, &refs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::genome::{self, GenomeParams};

    fn genome_pipeline(params: &GenomeParams) -> MaterializedPipeline {
        let program = genome::program();
        let source = genome::generate_source(params);
        MaterializedPipeline::new(&program, vec![source], PipelineOptions::default()).unwrap()
    }

    fn assert_matches_oracle(pipeline: &MaterializedPipeline) {
        let oracle = pipeline.rerun_oracle().unwrap();
        if let Some(report) = pipeline.target().deep_eq_report(&oracle.target) {
            panic!("maintained target diverged from the oracle: {report}");
        }
    }

    #[test]
    fn genome_program_is_incrementally_capable() {
        let pipeline = genome_pipeline(&GenomeParams::default());
        assert_eq!(pipeline.mode(), MaintainMode::Incremental);
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn initial_build_matches_fresh_transform_exactly() {
        let pipeline = genome_pipeline(&GenomeParams::default());
        let fresh = Morphase::new()
            .transform(
                &genome::program(),
                &[&genome::generate_source(&GenomeParams::default())][..],
            )
            .unwrap();
        if let Some(report) = pipeline.target().deep_eq_report(&fresh.target) {
            panic!("replayed initial build must equal a fresh transform: {report}");
        }
    }

    #[test]
    fn insert_batches_stay_in_place_and_match_the_oracle() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let clone_s = ClassName::new("CloneS");
        let marker_s = ClassName::new("MarkerS");
        let batch = MutationBatch::new()
            .insert(
                clone_s,
                Value::record([
                    ("name", Value::from("fresh-clone")),
                    ("length", Value::int(1234)),
                ]),
            )
            .insert(
                marker_s,
                Value::record([
                    ("name", Value::from("fresh-marker")),
                    ("position", Value::int(77)),
                ]),
            );
        let report = pipeline.apply_batch(&batch).unwrap();
        assert_eq!(report.outcome, BatchOutcome::InPlace);
        assert!(report.rows_added > 0);
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn update_batches_stay_in_place_and_match_the_oracle() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let marker_s = ClassName::new("MarkerS");
        let victim = pipeline
            .source(0)
            .unwrap()
            .extent(&marker_s)
            .next()
            .cloned()
            .unwrap();
        let mut value = pipeline.source(0).unwrap().value(&victim).unwrap().clone();
        if let Value::Record(fields) = &mut value {
            fields.insert("position".into(), Value::int(999_999));
        }
        let report = pipeline
            .apply_batch(&MutationBatch::new().update(victim, value))
            .unwrap();
        assert_eq!(report.outcome, BatchOutcome::InPlace);
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn removing_a_minted_key_escalates_to_a_rebuild() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let clone_s = ClassName::new("CloneS");
        let victim = pipeline
            .source(0)
            .unwrap()
            .extent(&clone_s)
            .next()
            .cloned()
            .unwrap();
        let report = pipeline
            .apply_batch(&MutationBatch::new().remove(victim))
            .unwrap();
        assert_eq!(report.outcome, BatchOutcome::Rebuild);
        assert!(report.rebuild_reason.is_some());
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn renaming_a_minted_key_escalates_to_a_rebuild() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let clone_s = ClassName::new("CloneS");
        let victim = pipeline
            .source(0)
            .unwrap()
            .extent(&clone_s)
            .next()
            .cloned()
            .unwrap();
        let mut value = pipeline.source(0).unwrap().value(&victim).unwrap().clone();
        if let Value::Record(fields) = &mut value {
            fields.insert("name".into(), Value::from("renamed-clone"));
        }
        let report = pipeline
            .apply_batch(&MutationBatch::new().update(victim, value))
            .unwrap();
        assert_eq!(report.outcome, BatchOutcome::Rebuild);
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn empty_batches_are_cheap_no_ops() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let report = pipeline.apply_batch(&MutationBatch::new()).unwrap();
        assert_eq!(report.outcome, BatchOutcome::InPlace);
        assert_eq!(report.rows_added, 0);
        assert_eq!(report.rows_removed, 0);
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn validation_failures_leave_the_pipeline_healthy() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let bogus = MutationBatch::new().insert(ClassName::new("NoSuchClass"), Value::int(1));
        assert!(pipeline.apply_batch(&bogus).is_err());
        assert!(!pipeline.is_poisoned());
        // A well-formed batch still applies.
        let clone_s = ClassName::new("CloneS");
        let ok = MutationBatch::new().insert(
            clone_s,
            Value::record([("name", Value::from("post-error-clone"))]),
        );
        assert_eq!(
            pipeline.apply_batch(&ok).unwrap().outcome,
            BatchOutcome::InPlace
        );
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn batched_remove_then_update_of_the_same_object_is_rejected() {
        let mut pipeline = genome_pipeline(&GenomeParams::default());
        let clone_s = ClassName::new("CloneS");
        let victim = pipeline
            .source(0)
            .unwrap()
            .extent(&clone_s)
            .next()
            .cloned()
            .unwrap();
        let batch = MutationBatch::new()
            .remove(victim.clone())
            .update(victim, Value::record([("name", Value::from("zombie"))]));
        assert!(pipeline.apply_batch(&batch).is_err());
        assert!(!pipeline.is_poisoned());
    }

    #[test]
    fn cities_t3_falls_back_to_rerun_mode_and_stays_correct() {
        use workloads::cities::{generate_euro, CitiesWorkload};
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let source = generate_euro(6, 4, 7);
        let mut pipeline =
            MaterializedPipeline::new(&program, vec![source], PipelineOptions::default()).unwrap();
        assert_matches_oracle(&pipeline);
        if pipeline.mode() == MaintainMode::Rerun {
            let class = pipeline.source(0).unwrap().populated_classes()[0].clone();
            let victim = pipeline
                .source(0)
                .unwrap()
                .extent(&class)
                .next()
                .cloned()
                .unwrap();
            let report = pipeline
                .apply_batch(&MutationBatch::new().remove(victim))
                .unwrap();
            assert_eq!(report.outcome, BatchOutcome::FullRerun);
            assert_matches_oracle(&pipeline);
        }
    }

    #[test]
    fn mixed_streams_converge_batch_by_batch() {
        let mut pipeline = genome_pipeline(&GenomeParams {
            clones: 12,
            markers: 30,
            density: 0.7,
            seed: 5,
        });
        let clone_s = ClassName::new("CloneS");
        let marker_s = ClassName::new("MarkerS");
        for round in 0..6 {
            let mut batch = MutationBatch::new().insert(
                clone_s.clone(),
                Value::record([
                    ("name", Value::from(format!("round-{round}-clone"))),
                    ("length", Value::int(round)),
                ]),
            );
            if round % 2 == 0 {
                let victim = pipeline
                    .source(0)
                    .unwrap()
                    .extent(&marker_s)
                    .nth(round as usize)
                    .cloned()
                    .unwrap();
                let mut value = pipeline.source(0).unwrap().value(&victim).unwrap().clone();
                if let Value::Record(fields) = &mut value {
                    fields.insert("position".into(), Value::int(round * 1000));
                }
                batch = batch.update(victim, value);
            }
            if round == 3 {
                let victim = pipeline
                    .source(0)
                    .unwrap()
                    .extent(&clone_s)
                    .next()
                    .cloned()
                    .unwrap();
                batch = batch.remove(victim);
            }
            pipeline.apply_batch(&batch).unwrap();
            assert_matches_oracle(&pipeline);
        }
        assert!(pipeline.stats().batches == 6);
        assert!(pipeline.stats().inplace_batches >= 3);
        assert!(pipeline.stats().rebuild_batches >= 1);
    }

    fn constrained_pipeline(mode: BatchConstraintMode) -> MaterializedPipeline {
        use workloads::constrained::{self, ConstrainedParams};
        let program = constrained::program();
        let source = constrained::generate_source(&ConstrainedParams::default());
        let options = PipelineOptions {
            batch_constraints: mode,
            ..PipelineOptions::default()
        };
        MaterializedPipeline::new(&program, vec![source], options).unwrap()
    }

    #[test]
    fn enforcing_pipeline_rejects_violations_without_poisoning() {
        use workloads::constrained;
        let mut pipeline = constrained_pipeline(BatchConstraintMode::Enforce);
        let mut gen = constrained::ConstrainedGen::new(pipeline.source(0).unwrap(), 3);
        // Clean traffic commits with a certificate and no violations.
        let report = pipeline.apply_batch(&gen.next_batch(5)).unwrap();
        let check = report.constraints.expect("enforce mode attaches a check");
        assert!(check.violations.is_empty());
        assert_eq!(check.certificate.entries.len(), 3);
        // A duplicate email is rejected: the error carries the violation,
        // sources and target revert bit-exactly, nothing is poisoned.
        let before_source = pipeline.source(0).unwrap().clone();
        let before_target = pipeline.target().clone();
        let before_batches = pipeline.stats().batches;
        let err = pipeline.apply_batch(&gen.violating_batch()).unwrap_err();
        assert!(
            matches!(&err, MorphaseError::Verification(m) if m.contains("S1")),
            "unexpected rejection error: {err}"
        );
        assert!(!pipeline.is_poisoned());
        assert!(pipeline
            .source(0)
            .unwrap()
            .deep_eq_report(&before_source)
            .is_none());
        assert!(pipeline.target().deep_eq_report(&before_target).is_none());
        assert_eq!(pipeline.stats().batches, before_batches);
        assert_eq!(pipeline.stats().rejected_batches, 1);
        assert!(pipeline.stats().constraint_violations > 0);
        // The pipeline keeps absorbing clean traffic and matches the oracle.
        pipeline.apply_batch(&gen.next_batch(5)).unwrap();
        assert_matches_oracle(&pipeline);
    }

    #[test]
    fn reporting_pipeline_commits_violations_and_recovers() {
        use workloads::constrained;
        let mut pipeline = constrained_pipeline(BatchConstraintMode::Report);
        let mut gen = constrained::ConstrainedGen::new(pipeline.source(0).unwrap(), 4);
        // The violating batch commits; the report carries the violations.
        let report = pipeline.apply_batch(&gen.violating_batch()).unwrap();
        let check = report.constraints.expect("report mode attaches a check");
        assert!(check.violations.iter().any(|v| v.clause == "S1"));
        assert!(!pipeline.is_poisoned());
        assert_matches_oracle(&pipeline);
        // While the violation stands, S1's pre-clean contract is void: the
        // next batch re-checks it in full and still reports it.
        let user_s = ClassName::new("UserS");
        let next = pipeline.apply_batch(&MutationBatch::new()).unwrap();
        let next_check = next.constraints.expect("still checking");
        let s1 = &next_check.certificate.entries[0];
        assert_eq!(s1.constraint, "S1");
        assert!(!s1.violations.is_empty());
        // Removing the imposter clears the violation; the constraint
        // returns to delta checking afterwards.
        let imposter = pipeline
            .source(0)
            .unwrap()
            .objects(&user_s)
            .find(|(_, v)| v.project("tier") == Some(&Value::int(constrained::IMPOSTER_TIER)))
            .map(|(oid, _)| oid.clone())
            .expect("the committed imposter is live");
        let cleared = pipeline
            .apply_batch(&MutationBatch::new().remove(imposter))
            .unwrap();
        assert!(cleared.constraints.unwrap().violations.is_empty());
        assert_matches_oracle(&pipeline);
        assert_eq!(pipeline.stats().rejected_batches, 0);
        assert!(pipeline.stats().constraint_violations >= 2);
    }

    #[test]
    fn off_mode_attaches_no_check_and_counts_no_constraints() {
        use workloads::constrained;
        let mut pipeline = constrained_pipeline(BatchConstraintMode::Off);
        let mut gen = constrained::ConstrainedGen::new(pipeline.source(0).unwrap(), 6);
        let report = pipeline.apply_batch(&gen.next_batch(4)).unwrap();
        assert!(report.constraints.is_none());
        assert_eq!(pipeline.stats().constraints_checked, 0);
        assert_eq!(pipeline.stats().constraints_skipped, 0);
    }
}
