//! Types of the WOL data model (Section 2.1 of the paper).
//!
//! Types are built from base types, class types (references to object
//! identities of a class), set types, record types, variant types, lists and
//! optional fields. Records and variants may have arbitrarily many labelled
//! fields and may be nested arbitrarily deep.

use std::fmt;
use std::sync::Arc;

use crate::error::ModelError;
use crate::Result;

/// An attribute label used in record and variant types.
pub type Label = String;

/// The name of a class (an extent of object identities) in a schema.
///
/// `ClassName` is cheap to clone (it shares its string storage) and has a
/// total order so it can be used as a map key.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ClassName(Arc<str>);

impl ClassName {
    /// Create a class name.
    pub fn new(name: impl AsRef<str>) -> Self {
        ClassName(Arc::from(name.as_ref()))
    }

    /// The class name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ClassName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ClassName({})", &self.0)
    }
}

impl From<&str> for ClassName {
    fn from(s: &str) -> Self {
        ClassName::new(s)
    }
}

impl From<String> for ClassName {
    fn from(s: String) -> Self {
        ClassName::new(s)
    }
}

/// The base (atomic) types of the model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum BaseType {
    /// Boolean values.
    Bool,
    /// 64-bit signed integers.
    Int,
    /// Double-precision reals (with a total order imposed on values).
    Real,
    /// Unicode strings.
    Str,
}

impl fmt::Display for BaseType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaseType::Bool => write!(f, "bool"),
            BaseType::Int => write!(f, "int"),
            BaseType::Real => write!(f, "real"),
            BaseType::Str => write!(f, "str"),
        }
    }
}

/// A type of the WOL data model.
///
/// Following the paper, the type associated with a class in a schema must not
/// itself be a class type (see [`Schema::validate`](crate::Schema::validate)),
/// but class types may appear nested anywhere inside records, variants, sets
/// and lists.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Type {
    /// A base type.
    Base(BaseType),
    /// Object identities of the named class.
    Class(ClassName),
    /// Finite sets of elements of the given type.
    Set(Box<Type>),
    /// Finite lists of elements of the given type.
    List(Box<Type>),
    /// A record type `(a1: t1, ..., ak: tk)`.
    Record(Vec<(Label, Type)>),
    /// A variant type `<| a1: t1, ..., ak: tk |>`.
    Variant(Vec<(Label, Type)>),
    /// An optional field (the paper notes that fields may be optional).
    Optional(Box<Type>),
    /// The unit type, used for variant alternatives carrying no data
    /// (e.g. `ins_male()` in the paper's Person example).
    Unit,
}

impl Type {
    /// Shorthand for the boolean base type.
    pub fn bool() -> Type {
        Type::Base(BaseType::Bool)
    }

    /// Shorthand for the integer base type.
    pub fn int() -> Type {
        Type::Base(BaseType::Int)
    }

    /// Shorthand for the real base type.
    pub fn real() -> Type {
        Type::Base(BaseType::Real)
    }

    /// Shorthand for the string base type.
    pub fn str() -> Type {
        Type::Base(BaseType::Str)
    }

    /// Shorthand for a class type.
    pub fn class(name: impl AsRef<str>) -> Type {
        Type::Class(ClassName::new(name))
    }

    /// Shorthand for a set type.
    pub fn set(elem: Type) -> Type {
        Type::Set(Box::new(elem))
    }

    /// Shorthand for a list type.
    pub fn list(elem: Type) -> Type {
        Type::List(Box::new(elem))
    }

    /// Shorthand for an optional type.
    pub fn optional(elem: Type) -> Type {
        Type::Optional(Box::new(elem))
    }

    /// Build a record type from `(label, type)` pairs.
    pub fn record<I, L>(fields: I) -> Type
    where
        I: IntoIterator<Item = (L, Type)>,
        L: Into<Label>,
    {
        Type::Record(fields.into_iter().map(|(l, t)| (l.into(), t)).collect())
    }

    /// Build a variant type from `(label, type)` pairs.
    pub fn variant<I, L>(alts: I) -> Type
    where
        I: IntoIterator<Item = (L, Type)>,
        L: Into<Label>,
    {
        Type::Variant(alts.into_iter().map(|(l, t)| (l.into(), t)).collect())
    }

    /// True if this is a class type.
    pub fn is_class(&self) -> bool {
        matches!(self, Type::Class(_))
    }

    /// If this is a record type, look up the type of field `label`.
    pub fn field(&self, label: &str) -> Option<&Type> {
        match self {
            Type::Record(fields) => fields.iter().find(|(l, _)| l == label).map(|(_, t)| t),
            _ => None,
        }
    }

    /// If this is a variant type, look up the type of alternative `label`.
    pub fn alternative(&self, label: &str) -> Option<&Type> {
        match self {
            Type::Variant(alts) => alts.iter().find(|(l, _)| l == label).map(|(_, t)| t),
            _ => None,
        }
    }

    /// All class names referenced (transitively) inside this type.
    pub fn referenced_classes(&self) -> Vec<ClassName> {
        let mut out = Vec::new();
        self.collect_classes(&mut out);
        out.sort();
        out.dedup();
        out
    }

    fn collect_classes(&self, out: &mut Vec<ClassName>) {
        match self {
            Type::Base(_) | Type::Unit => {}
            Type::Class(c) => out.push(c.clone()),
            Type::Set(t) | Type::List(t) | Type::Optional(t) => t.collect_classes(out),
            Type::Record(fields) | Type::Variant(fields) => {
                for (_, t) in fields {
                    t.collect_classes(out);
                }
            }
        }
    }

    /// True if any class type appears (transitively) inside this type.
    pub fn mentions_class(&self) -> bool {
        !self.referenced_classes().is_empty()
    }

    /// Structural well-formedness: record/variant labels must be distinct and
    /// variants must have at least one alternative.
    pub fn check_well_formed(&self, context: &str) -> Result<()> {
        match self {
            Type::Base(_) | Type::Class(_) | Type::Unit => Ok(()),
            Type::Set(t) | Type::List(t) | Type::Optional(t) => t.check_well_formed(context),
            Type::Record(fields) => {
                check_distinct_labels(fields, context)?;
                for (l, t) in fields {
                    t.check_well_formed(&format!("{context}.{l}"))?;
                }
                Ok(())
            }
            Type::Variant(alts) => {
                if alts.is_empty() {
                    return Err(ModelError::MalformedType(format!(
                        "variant type with no alternatives in {context}"
                    )));
                }
                check_distinct_labels(alts, context)?;
                for (l, t) in alts {
                    t.check_well_formed(&format!("{context}<{l}>"))?;
                }
                Ok(())
            }
        }
    }

    /// The maximum nesting depth of the type (a base or class type has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Type::Base(_) | Type::Class(_) | Type::Unit => 1,
            Type::Set(t) | Type::List(t) | Type::Optional(t) => 1 + t.depth(),
            Type::Record(fs) | Type::Variant(fs) => {
                1 + fs.iter().map(|(_, t)| t.depth()).max().unwrap_or(0)
            }
        }
    }
}

fn check_distinct_labels(fields: &[(Label, Type)], context: &str) -> Result<()> {
    let mut seen = std::collections::BTreeSet::new();
    for (l, _) in fields {
        if !seen.insert(l.clone()) {
            return Err(ModelError::DuplicateLabel {
                label: l.clone(),
                context: context.to_string(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_name_equality_and_order() {
        let a = ClassName::new("CityA");
        let b = ClassName::new("CityA");
        let c = ClassName::new("StateA");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a < c);
        assert_eq!(a.as_str(), "CityA");
        assert_eq!(a.to_string(), "CityA");
    }

    #[test]
    fn record_field_lookup() {
        let t = Type::record([("name", Type::str()), ("state", Type::class("StateA"))]);
        assert_eq!(t.field("name"), Some(&Type::str()));
        assert_eq!(t.field("state"), Some(&Type::class("StateA")));
        assert_eq!(t.field("missing"), None);
        assert_eq!(t.alternative("name"), None);
    }

    #[test]
    fn variant_alternative_lookup() {
        let t = Type::variant([
            ("euro_city", Type::class("CityE")),
            ("us_city", Type::class("CityA")),
        ]);
        assert_eq!(t.alternative("euro_city"), Some(&Type::class("CityE")));
        assert_eq!(t.alternative("nope"), None);
        assert_eq!(t.field("euro_city"), None);
    }

    #[test]
    fn referenced_classes_are_collected_and_deduped() {
        let t = Type::record([
            ("a", Type::class("C1")),
            ("b", Type::set(Type::class("C2"))),
            (
                "c",
                Type::variant([("x", Type::class("C1")), ("y", Type::int())]),
            ),
        ]);
        let classes = t.referenced_classes();
        assert_eq!(classes, vec![ClassName::new("C1"), ClassName::new("C2")]);
        assert!(t.mentions_class());
        assert!(!Type::int().mentions_class());
    }

    #[test]
    fn duplicate_labels_rejected() {
        let t = Type::record([("a", Type::int()), ("a", Type::str())]);
        let err = t.check_well_formed("T").unwrap_err();
        assert!(matches!(err, ModelError::DuplicateLabel { .. }));
    }

    #[test]
    fn empty_variant_rejected() {
        let t = Type::Variant(vec![]);
        assert!(t.check_well_formed("T").is_err());
    }

    #[test]
    fn nested_well_formed_ok() {
        let t = Type::record([
            ("name", Type::str()),
            (
                "place",
                Type::variant([
                    ("state", Type::class("StateT")),
                    ("country", Type::class("CountryT")),
                ]),
            ),
            ("tags", Type::set(Type::str())),
            ("population", Type::optional(Type::int())),
        ]);
        assert!(t.check_well_formed("CityT").is_ok());
        assert_eq!(t.depth(), 3);
    }

    #[test]
    fn display_base_types() {
        assert_eq!(BaseType::Bool.to_string(), "bool");
        assert_eq!(BaseType::Int.to_string(), "int");
        assert_eq!(BaseType::Real.to_string(), "real");
        assert_eq!(BaseType::Str.to_string(), "str");
    }

    #[test]
    fn depth_of_flat_types() {
        assert_eq!(Type::int().depth(), 1);
        assert_eq!(Type::set(Type::int()).depth(), 2);
        assert_eq!(Type::class("C").depth(), 1);
    }
}
