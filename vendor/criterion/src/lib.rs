//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion's API the bench suite uses —
//! `Criterion::benchmark_group`, `BenchmarkGroup::{sample_size,
//! measurement_time, warm_up_time, bench_function, bench_with_input, finish}`,
//! `BenchmarkId`, `Bencher::iter` and the `criterion_group!` /
//! `criterion_main!` macros — with a plain wall-clock harness. Each benchmark
//! runs its closure for a short warm-up, then collects per-iteration timings
//! and prints min / median / max to stderr. There is no statistical analysis,
//! plotting or history; the point is that `cargo bench` compiles and produces
//! comparable numbers without the network.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendering (e.g. an input size).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark id with a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark id without a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.name.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.name, p),
            None => self.name.clone(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// The timing harness handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, recording one timing sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget is spent (at least once).
        let warm_start = Instant::now();
        loop {
            black_box(f());
            if warm_start.elapsed() >= self.warm_up_time {
                break;
            }
        }
        // Measurement: up to `sample_size` samples within the time budget,
        // always at least one.
        let budget_start = Instant::now();
        for done in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
            if done > 0 && budget_start.elapsed() >= self.measurement_time {
                break;
            }
        }
    }
}

/// A named group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up_time = d;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
        };
        f(&mut bencher);
        report(&self.name, &id.render(), &mut bencher.samples);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// End the group (purely cosmetic in this stand-in).
    pub fn finish(&mut self) {}
}

fn report(group: &str, bench: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        eprintln!("{group}/{bench}: no samples");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    eprintln!(
        "{group}/{bench}: min {:?}  median {:?}  max {:?}  (n={})",
        samples[0],
        median,
        samples[samples.len() - 1],
        samples.len()
    );
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
            _criterion: self,
        }
    }

    /// Run a single benchmark outside of any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a group function running the listed bench functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        let mut runs = 0usize;
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(1))
            .bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, n| {
                b.iter(|| {
                    runs += 1;
                    n + 1
                })
            });
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("a", 3).render(), "a/3");
        assert_eq!(BenchmarkId::from("plain").render(), "plain");
    }
}
