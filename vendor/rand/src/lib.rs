//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides the (tiny) API surface the workspace actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and the [`Rng`] extension
//! methods `gen_range` / `gen_bool`. The generator is SplitMix64, which is
//! plenty for workload synthesis; it is *not* cryptographically secure and
//! does not reproduce upstream `rand`'s value streams.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli sample: `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can be sampled uniformly to produce a `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample. Panics on an empty range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $ty
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for std::ops::Range<$ty> {
            fn sample(self, rng: &mut dyn RngCore) -> $ty {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_sample_range_signed!(i64, i32, i16, i8, isize);

/// Generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A deterministic 64-bit generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng {
                // Scramble the seed so nearby seeds give unrelated streams.
                state: state.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5851_F42D_4C95_7F2D,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
