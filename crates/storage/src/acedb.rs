//! An ACeDB-like tagged-tree store.
//!
//! "ACeDB represents data in tree-like structures with object identities, and
//! is well suited for representing 'sparsely populated' data" (Section 6).
//! This module provides a small stand-in: a store of named objects, each a
//! tree of *tags* holding either atomic values, lists of values, or references
//! to other objects. The importer maps a selection of tags onto record
//! attributes of a model [`Instance`], leaving unmentioned tags out and
//! producing `Absent` for missing optional attributes — exactly the
//! sparsely-populated shape the genome workloads exercise.

use std::collections::BTreeMap;

use wol_model::{ClassName, Instance, Label, Value};

use crate::error::StorageError;
use crate::Result;

/// A value held under a tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AceValue {
    /// A text value.
    Text(String),
    /// An integer value.
    Int(i64),
    /// A reference to another object, by class and name.
    ObjectRef(String, String),
    /// A list of values (ACeDB columns).
    Many(Vec<AceValue>),
}

/// An ACeDB-like object: a class, a name (its identity), and a sparse tree of
/// tagged values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AceObject {
    /// The object's class (ACeDB "class").
    pub class: String,
    /// The object's name (ACeDB objects are identified by name).
    pub name: String,
    /// The tags present on this object.
    pub tags: BTreeMap<String, AceValue>,
}

impl AceObject {
    /// Create an object with no tags.
    pub fn new(class: impl Into<String>, name: impl Into<String>) -> Self {
        AceObject {
            class: class.into(),
            name: name.into(),
            tags: BTreeMap::new(),
        }
    }

    /// Builder-style tag insertion.
    pub fn with_tag(mut self, tag: impl Into<String>, value: AceValue) -> Self {
        self.tags.insert(tag.into(), value);
        self
    }
}

/// A store of ACeDB-like objects.
#[derive(Clone, Debug, Default)]
pub struct AceStore {
    objects: Vec<AceObject>,
}

impl AceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an object.
    pub fn add(&mut self, object: AceObject) {
        self.objects.push(object);
    }

    /// All objects of a class.
    pub fn of_class(&self, class: &str) -> Vec<&AceObject> {
        self.objects.iter().filter(|o| o.class == class).collect()
    }

    /// Total number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Import the store into a model instance.
    ///
    /// `mappings` lists, per ACeDB class, the target model class and the tags
    /// to import as attributes (tag name → attribute label). The object's name
    /// always becomes the `name` attribute. Tags missing on an object simply
    /// do not produce an attribute (sparse data); `ObjectRef` tags resolve to
    /// object identities of the referenced class, failing if the referenced
    /// object is not part of the import.
    pub fn import(&self, mappings: &[AceMapping], instance_name: &str) -> Result<Instance> {
        let mut instance = Instance::new(instance_name);
        // Pass 1: create every object so references can be resolved.
        let mut oids: BTreeMap<(String, String), wol_model::Oid> = BTreeMap::new();
        for mapping in mappings {
            let class = ClassName::new(&mapping.model_class);
            for object in self.of_class(&mapping.ace_class) {
                let oid = instance.insert_fresh(&class, Value::Record(BTreeMap::new()));
                oids.insert((object.class.clone(), object.name.clone()), oid);
            }
        }
        // Pass 2: fill in attribute records.
        for mapping in mappings {
            for object in self.of_class(&mapping.ace_class) {
                let oid = oids[&(object.class.clone(), object.name.clone())].clone();
                let mut fields: BTreeMap<Label, Value> = BTreeMap::new();
                fields.insert("name".to_string(), Value::str(&object.name));
                for (tag, label) in &mapping.tags {
                    if let Some(value) = object.tags.get(tag) {
                        fields.insert(label.clone(), convert(value, &oids)?);
                    }
                }
                instance.update(&oid, Value::Record(fields))?;
            }
        }
        Ok(instance)
    }
}

fn convert(value: &AceValue, oids: &BTreeMap<(String, String), wol_model::Oid>) -> Result<Value> {
    Ok(match value {
        AceValue::Text(s) => Value::str(s.clone()),
        AceValue::Int(i) => Value::Int(*i),
        AceValue::ObjectRef(class, name) => {
            let oid = oids.get(&(class.clone(), name.clone())).ok_or_else(|| {
                StorageError::UnresolvedReference(format!(
                    "{class}:{name} is not part of the import"
                ))
            })?;
            Value::Oid(oid.clone())
        }
        AceValue::Many(items) => Value::Set(
            items
                .iter()
                .map(|i| convert(i, oids))
                .collect::<Result<std::collections::BTreeSet<Value>>>()?,
        ),
    })
}

/// Parse `.ace`-style text into an [`AceStore`], attributing errors to
/// `source` (a file path or pseudo-path).
///
/// The accepted format is a simplification of ACeDB's dump format:
///
/// ```text
/// Clone : "cE22-1"
/// Length 40000
/// Sequenced_by "Sanger"
///
/// Marker : "D22S1"
/// Clone Clone:"cE22-1"
/// Aliases "M1" "M1b"
/// ```
///
/// An object starts with a `Class : "Name"` header; the following lines each
/// hold a tag with one or more values (quoted text, integers, or
/// `Class:"name"` object references; multiple values become
/// [`AceValue::Many`]). A blank line ends the object. Malformed or truncated
/// input — an unterminated quote, a tag before any header, a header without a
/// name — is reported as [`StorageError::Corrupt`] with the 1-based line
/// number and expected-vs-found context; short input never panics.
pub fn parse_ace(source: &str, text: &str) -> Result<AceStore> {
    let mut store = AceStore::new();
    let mut current: Option<AceObject> = None;
    for (line_no, raw) in text.lines().enumerate() {
        let line_no = line_no + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with("//") {
            if let Some(object) = current.take() {
                store.add(object);
            }
            continue;
        }
        if let Some((class, rest)) = line.split_once(':') {
            let class = class.trim();
            // A header's class is a bare word; `Tag Class:"name"` lines also
            // contain a colon but their first token has a value after it.
            if !class.contains(char::is_whitespace) && !class.is_empty() {
                let name = rest.trim();
                let name = name
                    .strip_prefix('"')
                    .and_then(|n| n.strip_suffix('"'))
                    .ok_or_else(|| {
                        StorageError::corrupt_at_line(
                            source,
                            line_no,
                            "a quoted object name after `:`",
                            format!("`{name}`"),
                        )
                    })?;
                if let Some(object) = current.take() {
                    store.add(object);
                }
                current = Some(AceObject::new(class, name));
                continue;
            }
        }
        // A tag line: `Tag value...`.
        let Some(object) = current.as_mut() else {
            return Err(StorageError::corrupt_at_line(
                source,
                line_no,
                "an object header `Class : \"Name\"`",
                format!("tag line `{line}`"),
            ));
        };
        let (tag, rest) = match line.split_once(char::is_whitespace) {
            Some((tag, rest)) => (tag, rest.trim()),
            None => (line, ""),
        };
        let values = parse_ace_values(source, line_no, rest)?;
        let value = match values.len() {
            0 => {
                return Err(StorageError::corrupt_at_line(
                    source,
                    line_no,
                    format!("a value after tag `{tag}`"),
                    "end of line",
                ));
            }
            1 => values.into_iter().next().expect("length checked"),
            _ => AceValue::Many(values),
        };
        object.tags.insert(tag.to_string(), value);
    }
    if let Some(object) = current.take() {
        store.add(object);
    }
    Ok(store)
}

/// Read and parse an `.ace` file (see [`parse_ace`]); I/O and parse errors
/// both carry the file path.
pub fn load_ace_file(path: &std::path::Path) -> Result<AceStore> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| StorageError::io(path.display().to_string(), e))?;
    parse_ace(&path.display().to_string(), &text)
}

/// Tokenize the value part of a tag line: quoted strings, integers, and
/// `Class:"name"` object references.
fn parse_ace_values(source: &str, line_no: usize, rest: &str) -> Result<Vec<AceValue>> {
    let mut values = Vec::new();
    let mut chars = rest.char_indices().peekable();
    while let Some(&(start, c)) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
            continue;
        }
        if c == '"' {
            chars.next();
            let mut text = String::new();
            let mut closed = false;
            for (_, c) in chars.by_ref() {
                if c == '"' {
                    closed = true;
                    break;
                }
                text.push(c);
            }
            if !closed {
                return Err(StorageError::corrupt_at_line(
                    source,
                    line_no,
                    "a closing `\"`",
                    "end of line",
                ));
            }
            values.push(AceValue::Text(text));
            continue;
        }
        // A bare token runs to the next whitespace; `Class:"name"` keeps the
        // quoted part attached.
        let mut end = rest.len();
        let mut in_quotes = false;
        for (i, c) in rest[start..].char_indices() {
            match c {
                '"' => in_quotes = !in_quotes,
                c if c.is_whitespace() && !in_quotes => {
                    end = start + i;
                    break;
                }
                _ => {}
            }
        }
        if in_quotes {
            return Err(StorageError::corrupt_at_line(
                source,
                line_no,
                "a closing `\"`",
                "end of line",
            ));
        }
        let token = &rest[start..end];
        while chars.peek().is_some_and(|&(i, _)| i < end) {
            chars.next();
        }
        if let Some((class, name)) = token.split_once(':') {
            let name = name
                .strip_prefix('"')
                .and_then(|n| n.strip_suffix('"'))
                .ok_or_else(|| {
                    StorageError::corrupt_at_line(
                        source,
                        line_no,
                        "an object reference `Class:\"name\"`",
                        format!("`{token}`"),
                    )
                })?;
            values.push(AceValue::ObjectRef(class.to_string(), name.to_string()));
        } else if let Ok(i) = token.parse::<i64>() {
            values.push(AceValue::Int(i));
        } else {
            return Err(StorageError::corrupt_at_line(
                source,
                line_no,
                "a quoted string, integer, or `Class:\"name\"` reference",
                format!("`{token}`"),
            ));
        }
    }
    Ok(values)
}

/// How one ACeDB class maps onto a model class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AceMapping {
    /// The ACeDB class to import.
    pub ace_class: String,
    /// The model class to create objects in.
    pub model_class: String,
    /// Tag → attribute label pairs to import.
    pub tags: Vec<(String, Label)>,
}

impl AceMapping {
    /// Convenience constructor.
    pub fn new(
        ace_class: impl Into<String>,
        model_class: impl Into<String>,
        tags: &[(&str, &str)],
    ) -> Self {
        AceMapping {
            ace_class: ace_class.into(),
            model_class: model_class.into(),
            tags: tags
                .iter()
                .map(|(t, l)| (t.to_string(), l.to_string()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome_store() -> AceStore {
        let mut store = AceStore::new();
        store.add(
            AceObject::new("Clone", "cE22-1")
                .with_tag("Length", AceValue::Int(40_000))
                .with_tag("Sequenced_by", AceValue::Text("Sanger".to_string())),
        );
        // A sparsely populated clone: no length recorded.
        store.add(AceObject::new("Clone", "cE22-2"));
        store.add(
            AceObject::new("Marker", "D22S1")
                .with_tag("Position", AceValue::Int(17))
                .with_tag(
                    "Clone",
                    AceValue::ObjectRef("Clone".to_string(), "cE22-1".to_string()),
                )
                .with_tag(
                    "Aliases",
                    AceValue::Many(vec![
                        AceValue::Text("M1".to_string()),
                        AceValue::Text("M1b".to_string()),
                    ]),
                ),
        );
        store
    }

    fn mappings() -> Vec<AceMapping> {
        vec![
            AceMapping::new(
                "Clone",
                "CloneS",
                &[("Length", "length"), ("Sequenced_by", "lab")],
            ),
            AceMapping::new(
                "Marker",
                "MarkerS",
                &[
                    ("Position", "position"),
                    ("Clone", "clone"),
                    ("Aliases", "aliases"),
                ],
            ),
        ]
    }

    #[test]
    fn import_creates_sparse_records() {
        let store = genome_store();
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        let instance = store.import(&mappings(), "ace22").unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("CloneS")), 2);
        assert_eq!(instance.extent_size(&ClassName::new("MarkerS")), 1);

        let full = instance
            .find_by_field(&ClassName::new("CloneS"), "name", &Value::str("cE22-1"))
            .unwrap();
        assert_eq!(
            instance.value(full).unwrap().project("length"),
            Some(&Value::int(40_000))
        );

        // The sparse clone has a name but no length attribute at all.
        let sparse = instance
            .find_by_field(&ClassName::new("CloneS"), "name", &Value::str("cE22-2"))
            .unwrap();
        assert_eq!(instance.value(sparse).unwrap().project("length"), None);
    }

    #[test]
    fn references_and_sets_resolved() {
        let instance = genome_store().import(&mappings(), "ace22").unwrap();
        let marker = instance
            .find_by_field(&ClassName::new("MarkerS"), "name", &Value::str("D22S1"))
            .unwrap();
        let value = instance.value(marker).unwrap();
        let clone_oid = value.project("clone").and_then(|v| v.as_oid()).unwrap();
        assert_eq!(
            instance.value(clone_oid).unwrap().project("name"),
            Some(&Value::str("cE22-1"))
        );
        let aliases = value.project("aliases").and_then(|v| v.as_set()).unwrap();
        assert_eq!(aliases.len(), 2);
    }

    #[test]
    fn unresolved_reference_reported() {
        let mut store = AceStore::new();
        store.add(AceObject::new("Marker", "D22S9").with_tag(
            "Clone",
            AceValue::ObjectRef("Clone".to_string(), "ghost".to_string()),
        ));
        let err = store
            .import(
                &[AceMapping::new("Marker", "MarkerS", &[("Clone", "clone")])],
                "x",
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::UnresolvedReference(_)));
    }

    #[test]
    fn parse_ace_round_trips_the_genome_store_shape() {
        let text = r#"
Clone : "cE22-1"
Length 40000
Sequenced_by "Sanger"

Clone : "cE22-2"

Marker : "D22S1"
Position 17
Clone Clone:"cE22-1"
Aliases "M1" "M1b"
"#;
        let store = parse_ace("genome.ace", text).unwrap();
        assert_eq!(store.len(), 3);
        let clones = store.of_class("Clone");
        assert_eq!(clones.len(), 2);
        assert_eq!(clones[0].tags.get("Length"), Some(&AceValue::Int(40_000)));
        assert!(clones[1].tags.is_empty());
        let marker = store.of_class("Marker")[0];
        assert_eq!(
            marker.tags.get("Clone"),
            Some(&AceValue::ObjectRef(
                "Clone".to_string(),
                "cE22-1".to_string()
            ))
        );
        assert_eq!(
            marker.tags.get("Aliases"),
            Some(&AceValue::Many(vec![
                AceValue::Text("M1".to_string()),
                AceValue::Text("M1b".to_string()),
            ]))
        );
        // The parsed store imports exactly like the hand-built one.
        let instance = store.import(&mappings(), "ace22").unwrap();
        let reference = genome_store().import(&mappings(), "ace22").unwrap();
        assert_eq!(instance.deep_eq_report(&reference), None);
    }

    /// Truncated `.ace` input — cut mid-quote, as a partial download or crash
    /// during a dump would leave it — reports the line and what was expected,
    /// and never panics.
    #[test]
    fn truncated_ace_input_reports_position_context() {
        let err = parse_ace("genome.ace", "Clone : \"cE22-1\"\nSequenced_by \"San").unwrap_err();
        assert_eq!(
            err,
            StorageError::corrupt_at_line("genome.ace", 2, "a closing `\"`", "end of line")
        );
        // A header whose name is cut off.
        let err = parse_ace("genome.ace", "Clone : \"cE22").unwrap_err();
        assert!(
            matches!(err, StorageError::Corrupt { line: Some(1), .. }),
            "{err}"
        );
        // A tag with its value truncated away.
        let err = parse_ace("genome.ace", "Clone : \"c1\"\nLength").unwrap_err();
        assert!(
            err.to_string().contains("a value after tag `Length`"),
            "{err}"
        );
        // A tag line with no preceding object header.
        let err = parse_ace("genome.ace", "Length 40000").unwrap_err();
        assert!(err.to_string().contains("object header"), "{err}");
    }

    #[test]
    fn load_ace_file_attributes_errors_to_the_path() {
        let dir = std::env::temp_dir().join(format!("wol-ace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("genome.ace");
        std::fs::write(&path, "Clone : \"c1\"\nLength 40000\n").unwrap();
        let store = load_ace_file(&path).unwrap();
        assert_eq!(store.len(), 1);
        let err = load_ace_file(&dir.join("absent.ace")).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unmapped_classes_are_ignored() {
        let store = genome_store();
        let instance = store
            .import(
                &[AceMapping::new("Clone", "CloneS", &[("Length", "length")])],
                "x",
            )
            .unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("MarkerS")), 0);
        assert_eq!(instance.extent_size(&ClassName::new("CloneS")), 2);
    }
}
