//! # morphase
//!
//! The Morphase system (Section 5, Figure 6): "an enzyme (-ase) for morphing
//! data". Morphase takes a WOL transformation program, source database
//! instances and meta-data, and produces the target database:
//!
//! ```text
//! WOL transformation program + meta-data
//!        │  (metadata: auto-generate key constraints)          [metadata]
//!        ▼
//! Translator to snf                                             [wol_engine::snf]
//!        ▼
//! Normalization                                                 [wol_engine::normalize]
//!        ▼
//! Translator to CPL                                             [compile]
//!        ▼
//! CPL execution against the source DBs → target DB              [cpl]
//!        ▼
//! Verification of target constraints and keys                   [pipeline]
//! ```
//!
//! The [`pipeline::Morphase`] driver runs these stages, timing each one and
//! reporting program-size metrics — the quantities the paper's evaluation
//! discusses (compile time of normalised vs non-normalised programs, size of
//! the resulting normal-form program, effect of omitting constraints).
//!
//! ## Maintenance semantics
//!
//! A one-shot run can also be kept *standing*: [`MaterializedPipeline`]
//! accepts [`wol_model::MutationBatch`]es against its sources and repairs
//! the target in place, guaranteeing the maintained target is bit-identical
//! (object identities included) to a from-scratch re-run over the mutated
//! sources. The contract rests on three pillars, detailed in the
//! [`maintain`] module docs:
//!
//! * **Delta propagation** — per-query read/write analysis (scan-order
//!   traces, foreign-dereference classification) picks the affected queries;
//!   [`wol_engine::delta_rotations`] derives exactly the new rows
//!   semi-naively, and stale rows are swept by identity.
//! * **Repair identity** — a mint-position ledger and per-object support
//!   counts tie the standing state to the fresh run's Skolem numbering; any
//!   batch that cannot be absorbed while preserving that tie escalates to a
//!   rebuild (recompile + full replay), which is bit-identical by
//!   construction. Incremental in-place repairs skip per-batch target
//!   verification; verification re-runs at every full-build boundary.
//! * **Reader consistency** — [`PipelineService`] runs the pipeline on a
//!   maintainer thread and publishes immutable `Arc<Instance>` snapshots at
//!   batch boundaries, so concurrent readers never observe a half-repaired
//!   target and a panicked maintainer surfaces at shutdown.

pub mod compile;
pub mod error;
pub mod federate;
pub mod maintain;
pub mod metadata;
pub mod pipeline;
pub mod report;
pub mod schedule;
pub mod service;

pub use compile::{compile_program, compile_program_pushdown, compile_program_with, PlanMode};
pub use error::MorphaseError;
pub use maintain::{BatchOutcome, BatchReport, MaintainMode, MaintainStats, MaterializedPipeline};
pub use metadata::generate_key_clauses;
pub use pipeline::{
    pushdown_default, BatchConstraintMode, DurabilityStats, DurableOptions, JoinStat, Morphase,
    MorphaseRun, PipelineOptions, QueryStat, StageTimings,
};
pub use report::{render_maintenance_report, render_report};
pub use schedule::{plan_schedule, QueryNode, QuerySchedule};
pub use service::PipelineService;

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MorphaseError>;
