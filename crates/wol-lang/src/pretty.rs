//! Pretty printer: renders terms, atoms and clauses back into the concrete
//! syntax accepted by [`crate::parser`], so that programs can be
//! round-tripped, logged and compared.

use std::fmt::Write as _;

use wol_model::Value;

use crate::ast::{Atom, Clause, SkolemArgs, Term};

/// Render a term.
pub fn render_term(term: &Term) -> String {
    let mut out = String::new();
    write_term(&mut out, term);
    out
}

fn write_term(out: &mut String, term: &Term) {
    match term {
        Term::Var(v) => out.push_str(v),
        Term::Const(value) => write_const(out, value),
        Term::Proj(base, label) => {
            write_term(out, base);
            let _ = write!(out, ".{label}");
        }
        Term::Record(fields) => {
            out.push('(');
            for (i, (l, t)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{l} = ");
                write_term(out, t);
            }
            out.push(')');
        }
        Term::Variant(label, payload) => {
            let _ = write!(out, "ins_{label}(");
            if **payload != Term::Const(Value::Unit) {
                write_term(out, payload);
            }
            out.push(')');
        }
        Term::Skolem(class, args) => {
            let _ = write!(out, "Mk_{class}(");
            match args {
                SkolemArgs::Positional(ts) => {
                    for (i, t) in ts.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        write_term(out, t);
                    }
                }
                SkolemArgs::Named(fs) => {
                    for (i, (l, t)) in fs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{l} = ");
                        write_term(out, t);
                    }
                }
            }
            out.push(')');
        }
    }
}

fn write_const(out: &mut String, value: &Value) {
    match value {
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::Real(r) => {
            let _ = write!(out, "{r}");
        }
        Value::Str(s) => {
            let _ = write!(out, "{s:?}");
        }
        Value::Unit => out.push_str("()"),
        other => {
            // Structured constants only arise internally (e.g. during
            // normalisation); render them with the model's notation.
            out.push_str(&wol_model::display::render_value(other));
        }
    }
}

/// Render an atom.
pub fn render_atom(atom: &Atom) -> String {
    match atom {
        Atom::Member(t, c) => format!("{} in {c}", render_term(t)),
        Atom::Eq(s, t) => format!("{} = {}", render_term(s), render_term(t)),
        Atom::Neq(s, t) => format!("{} != {}", render_term(s), render_term(t)),
        Atom::Lt(s, t) => format!("{} < {}", render_term(s), render_term(t)),
        Atom::Leq(s, t) => format!("{} =< {}", render_term(s), render_term(t)),
        Atom::InSet(s, t) => format!("{} member {}", render_term(s), render_term(t)),
    }
}

/// Render a clause, including its optional label and the trailing `;`.
pub fn render_clause(clause: &Clause) -> String {
    let mut out = String::new();
    if let Some(label) = &clause.label {
        let _ = write!(out, "{label}: ");
    }
    let head: Vec<String> = clause.head.iter().map(render_atom).collect();
    out.push_str(&head.join(", "));
    if !clause.body.is_empty() {
        out.push_str(" <= ");
        let body: Vec<String> = clause.body.iter().map(render_atom).collect();
        out.push_str(&body.join(", "));
    }
    out.push(';');
    out
}

/// Render a sequence of clauses, one per line.
pub fn render_program(clauses: &[Clause]) -> String {
    clauses
        .iter()
        .map(render_clause)
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_clause, parse_program};

    #[test]
    fn round_trip_simple_clauses() {
        let sources = [
            "X.state = Y <= Y in StateA, X = Y.capital;",
            "T1: X in CountryT, X.name = E.name, X.language = E.language <= E in CountryE;",
            "Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
            "X = Mk_CityT(name = N, country = C) <= X in CityT, N = X.name, C = X.country;",
            "Y.place = ins_euro_city(X) <= E in CityE, E.is_capital = true;",
            "X in Male, X.name = N <= Y in Person, Y.sex = ins_male();",
            "X.currency = \"US-Dollars\";",
            "X < Y.population, X =< Z, X != W, E member S <= X in CityA;",
        ];
        for src in sources {
            let parsed = parse_clause(src.trim_end_matches(';')).unwrap();
            let rendered = render_clause(&parsed);
            let reparsed = parse_clause(rendered.trim_end_matches(';')).unwrap();
            assert_eq!(parsed, reparsed, "round trip failed for {src}");
        }
    }

    #[test]
    fn render_program_joins_lines() {
        let clauses = parse_program(
            "T1: X in CountryT, X.name = E.name <= E in CountryE;\n\
             C3: Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;",
        )
        .unwrap();
        let rendered = render_program(&clauses);
        assert_eq!(rendered.lines().count(), 2);
        assert!(rendered.contains("T1: "));
        assert!(rendered.contains("Mk_CountryT(N)"));
        // The rendered program parses back to the same clauses.
        let reparsed = parse_program(&rendered).unwrap();
        assert_eq!(clauses, reparsed);
    }

    #[test]
    fn render_constants() {
        assert_eq!(render_term(&Term::bool(true)), "true");
        assert_eq!(render_term(&Term::bool(false)), "false");
        assert_eq!(render_term(&Term::str("franc")), "\"franc\"");
        assert_eq!(render_term(&Term::int(-3)), "-3");
        assert_eq!(render_term(&Term::Const(Value::real(1.5))), "1.5");
        assert_eq!(render_term(&Term::Const(Value::Unit)), "()");
    }

    #[test]
    fn render_structured_internal_constant() {
        let t = Term::Const(Value::record([("a", Value::int(1))]));
        assert_eq!(render_term(&t), "(a -> 1)");
    }
}
