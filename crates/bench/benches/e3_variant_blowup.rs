//! Experiment E3 — partial clauses vs complete clauses under variants.
//!
//! Paper claim (Sections 3.2–3.3): complete-clause languages (Datalog/ILOG)
//! need a number of clauses exponential in the number of variants, while WOL's
//! partial clauses stay linear. The workload is the variant family V(k); both
//! systems compute the same target, and the bench compares program sizes and
//! end-to-end (compile + run) time.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datalog_baseline::{evaluate, variant_baseline_program, variant_facts};
use wol_engine::{execute, normalize, NormalizeOptions};
use workloads::variants;

fn bench_variant_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_variant_blowup");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let items = 200;
    for &k in &[2usize, 4, 6, 8] {
        let source = variants::generate_source(k, items, 7);
        let wol_program = variants::wol_program(k);
        group.bench_with_input(BenchmarkId::new("wol_partial_clauses", k), &k, |b, _| {
            b.iter(|| {
                let normal =
                    normalize(&wol_program, &NormalizeOptions::default()).expect("normalises");
                execute(&normal, &[&source][..], "target").expect("executes")
            })
        });
        let baseline = variant_baseline_program(k);
        let facts = variant_facts(&source, k);
        group.bench_with_input(
            BenchmarkId::new("datalog_complete_clauses", k),
            &k,
            |b, _| b.iter(|| evaluate(&baseline.program, &facts)),
        );
    }
    group.finish();

    eprintln!("[E3] k, wol_clauses, datalog_rules");
    for &k in &[2usize, 4, 6, 8, 10] {
        eprintln!(
            "[E3] {k}, {}, {}",
            variants::wol_program(k).clauses.len(),
            variant_baseline_program(k).rule_count()
        );
    }
}

criterion_group!(benches, bench_variant_blowup);
criterion_main!(benches);
