//! A flat relational store and its adapter to the WOL data model.
//!
//! Stands in for the Sybase database (Chr22DB) of the paper's trials: tables
//! of base-typed columns, with string-valued *key columns* used to resolve
//! cross-table references into object identities when loading into an
//! [`Instance`].

use std::collections::BTreeMap;

use wol_model::{ClassName, Instance, Value};

use crate::error::StorageError;
use crate::Result;

/// The type of a relational column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColumnType {
    /// Strings.
    Str,
    /// 64-bit integers.
    Int,
    /// Booleans.
    Bool,
    /// A reference to a row of another table, stored as that table's key value.
    Ref,
}

/// A column: name, type and (for references) the referenced table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name (becomes the attribute label).
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
    /// For [`ColumnType::Ref`] columns, the referenced table.
    pub references: Option<String>,
}

impl Column {
    /// A string column.
    pub fn str(name: impl Into<String>) -> Column {
        Column {
            name: name.into(),
            ty: ColumnType::Str,
            references: None,
        }
    }

    /// An integer column.
    pub fn int(name: impl Into<String>) -> Column {
        Column {
            name: name.into(),
            ty: ColumnType::Int,
            references: None,
        }
    }

    /// A boolean column.
    pub fn bool(name: impl Into<String>) -> Column {
        Column {
            name: name.into(),
            ty: ColumnType::Bool,
            references: None,
        }
    }

    /// A reference column pointing at `table`.
    pub fn reference(name: impl Into<String>, table: impl Into<String>) -> Column {
        Column {
            name: name.into(),
            ty: ColumnType::Ref,
            references: Some(table.into()),
        }
    }
}

/// The schema of a table: its name, key column and columns.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name (becomes the class name).
    pub name: String,
    /// The column whose value identifies a row (a string key).
    pub key_column: String,
    /// The columns.
    pub columns: Vec<Column>,
}

/// A table: a schema plus rows of values (one value per column, in order).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Table {
    /// The table's schema.
    pub schema: TableSchema,
    /// The rows.
    pub rows: Vec<Vec<Value>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(schema: TableSchema) -> Table {
        Table {
            schema,
            rows: Vec::new(),
        }
    }

    /// Append a row; its arity and value types must match the schema. A
    /// truncated (or over-long) row is reported with the table name, the
    /// 1-based row number it would have occupied, and expected-vs-found
    /// arity; a type-mismatched value is reported the same way with the
    /// offending column. Reference columns hold the referenced table's
    /// string key (resolution happens at [`load_tables`] time);
    /// [`Value::Absent`] is accepted in any column as a missing value.
    pub fn push_row(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.schema.columns.len() {
            return Err(StorageError::corrupt_at_line(
                format!("table `{}`", self.schema.name),
                self.rows.len() + 1,
                format!("{} values per row", self.schema.columns.len()),
                format!("{} values", row.len()),
            ));
        }
        for (column, value) in self.schema.columns.iter().zip(row.iter()) {
            let ok = matches!(
                (column.ty, value),
                (_, Value::Absent)
                    | (ColumnType::Str, Value::Str(_))
                    | (ColumnType::Int, Value::Int(_))
                    | (ColumnType::Bool, Value::Bool(_))
                    | (ColumnType::Ref, Value::Str(_))
            );
            if !ok {
                let expected = match column.ty {
                    ColumnType::Str => "string",
                    ColumnType::Int => "integer",
                    ColumnType::Bool => "boolean",
                    ColumnType::Ref => "string key",
                };
                return Err(StorageError::corrupt_at_line(
                    format!("table `{}`", self.schema.name),
                    self.rows.len() + 1,
                    format!("a {expected} value in column `{}`", column.name),
                    wol_model::display::render_value(value),
                ));
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_index(&self, name: &str) -> Result<usize> {
        self.schema
            .columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| {
                StorageError::Missing(format!("column `{name}` in table `{}`", self.schema.name))
            })
    }
}

/// Load a set of tables into a model instance. Each table becomes a class;
/// each row becomes an object whose record has one field per column, with
/// reference columns resolved to the object identity of the referenced row
/// (matching on the referenced table's key column).
pub fn load_tables(tables: &[Table], instance_name: &str) -> Result<Instance> {
    let mut instance = Instance::new(instance_name);
    // Pass 1: create objects keyed by (table, key value).
    let mut oids: BTreeMap<(String, Value), wol_model::Oid> = BTreeMap::new();
    for table in tables {
        let key_idx = table.column_index(&table.schema.key_column)?;
        let class = ClassName::new(&table.schema.name);
        for row in &table.rows {
            let key = row[key_idx].clone();
            let oid = instance.insert_fresh(&class, Value::Record(BTreeMap::new()));
            oids.insert((table.schema.name.clone(), key), oid);
        }
    }
    // Pass 2: fill in the record values, resolving references.
    for table in tables {
        let key_idx = table.column_index(&table.schema.key_column)?;
        for (row_no, row) in table.rows.iter().enumerate() {
            let key = row[key_idx].clone();
            let oid = oids[&(table.schema.name.clone(), key)].clone();
            let mut fields = BTreeMap::new();
            for (column, value) in table.schema.columns.iter().zip(row.iter()) {
                let stored = match column.ty {
                    ColumnType::Ref => {
                        let referenced_table = column.references.as_ref().ok_or_else(|| {
                            StorageError::Missing(format!(
                                "reference column `{}` has no referenced table",
                                column.name
                            ))
                        })?;
                        let target = oids
                            .get(&(referenced_table.clone(), value.clone()))
                            .ok_or_else(|| {
                                StorageError::UnresolvedReference(format!(
                                    "row {} of `{}` references `{referenced_table}` key {value:?} \
                                     which does not exist",
                                    row_no + 1,
                                    table.schema.name
                                ))
                            })?;
                        Value::Oid(target.clone())
                    }
                    _ => value.clone(),
                };
                fields.insert(column.name.clone(), stored);
            }
            instance.update(&oid, Value::Record(fields))?;
        }
    }
    Ok(instance)
}

/// Dump one class of an instance back to a flat table. Object-identity-valued
/// attributes are flattened to the referenced object's value of `ref_key`
/// (typically `"name"`); complex attributes are skipped.
pub fn dump_class(instance: &Instance, class: &ClassName, ref_key: &str) -> Result<Table> {
    // Determine the columns from the first object's record.
    let mut columns: Vec<Column> = Vec::new();
    let mut first = true;
    let mut rows = Vec::new();
    for (_, value) in instance.objects(class) {
        let record = value
            .as_record()
            .ok_or_else(|| StorageError::BadRow(format!("object of `{class}` is not a record")))?;
        if first {
            for (label, field) in record {
                let column = match field {
                    Value::Str(_) => Column::str(label.clone()),
                    Value::Int(_) => Column::int(label.clone()),
                    Value::Bool(_) => Column::bool(label.clone()),
                    Value::Oid(oid) => Column::reference(label.clone(), oid.class().as_str()),
                    _ => continue,
                };
                columns.push(column);
            }
            first = false;
        }
        let mut row = Vec::new();
        for column in &columns {
            let field = record.get(&column.name).cloned().unwrap_or(Value::Absent);
            let flattened = match (&column.ty, field) {
                (ColumnType::Ref, Value::Oid(oid)) => {
                    let referenced = instance.value_or_err(&oid)?;
                    referenced.project(ref_key).cloned().ok_or_else(|| {
                        StorageError::BadRow(format!(
                            "referenced object {oid} has no `{ref_key}` attribute"
                        ))
                    })?
                }
                (_, v) => v,
            };
            row.push(flattened);
        }
        rows.push(row);
    }
    let schema = TableSchema {
        name: class.to_string(),
        key_column: columns
            .first()
            .map(|c| c.name.clone())
            .unwrap_or_else(|| "name".to_string()),
        columns,
    };
    let mut table = Table::new(schema);
    for row in rows {
        table.push_row(row)?;
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn country_table() -> Table {
        let mut t = Table::new(TableSchema {
            name: "CountryE".to_string(),
            key_column: "name".to_string(),
            columns: vec![
                Column::str("name"),
                Column::str("language"),
                Column::str("currency"),
            ],
        });
        t.push_row(vec![
            Value::str("France"),
            Value::str("French"),
            Value::str("franc"),
        ])
        .unwrap();
        t.push_row(vec![
            Value::str("United Kingdom"),
            Value::str("English"),
            Value::str("sterling"),
        ])
        .unwrap();
        t
    }

    fn city_table() -> Table {
        let mut t = Table::new(TableSchema {
            name: "CityE".to_string(),
            key_column: "name".to_string(),
            columns: vec![
                Column::str("name"),
                Column::bool("is_capital"),
                Column::reference("country", "CountryE"),
            ],
        });
        t.push_row(vec![
            Value::str("Paris"),
            Value::bool(true),
            Value::str("France"),
        ])
        .unwrap();
        t.push_row(vec![
            Value::str("London"),
            Value::bool(true),
            Value::str("United Kingdom"),
        ])
        .unwrap();
        t.push_row(vec![
            Value::str("Lyon"),
            Value::bool(false),
            Value::str("France"),
        ])
        .unwrap();
        t
    }

    #[test]
    fn load_resolves_references() {
        let instance = load_tables(&[country_table(), city_table()], "euro").unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("CountryE")), 2);
        assert_eq!(instance.extent_size(&ClassName::new("CityE")), 3);
        let paris = instance
            .find_by_field(&ClassName::new("CityE"), "name", &Value::str("Paris"))
            .unwrap();
        let country_oid = instance
            .value(paris)
            .unwrap()
            .project("country")
            .and_then(|v| v.as_oid())
            .unwrap()
            .clone();
        assert_eq!(
            instance.value(&country_oid).unwrap().project("name"),
            Some(&Value::str("France"))
        );
    }

    #[test]
    fn unresolved_reference_reported() {
        let mut city = city_table();
        city.push_row(vec![
            Value::str("Atlantis"),
            Value::bool(false),
            Value::str("Nowhere"),
        ])
        .unwrap();
        let err = load_tables(&[country_table(), city], "euro").unwrap_err();
        assert!(matches!(err, StorageError::UnresolvedReference(_)));
    }

    /// Type-mismatched values are rejected with the table, row number and
    /// offending column — never stored.
    #[test]
    fn mismatched_types_rejected() {
        let mut t = country_table();
        let err = t
            .push_row(vec![
                Value::str("Spain"),
                Value::int(34),
                Value::str("euro"),
            ])
            .unwrap_err();
        let rendered = err.to_string();
        assert!(rendered.contains("column `language`"), "{rendered}");
        assert!(rendered.contains("line 3"), "{rendered}");
        assert_eq!(t.len(), 2);
        // Absent is a legal missing value in any column.
        let mut city = city_table();
        city.push_row(vec![
            Value::str("Nice"),
            Value::Absent,
            Value::str("France"),
        ])
        .unwrap();
        // Reference columns carry string keys until load resolves them.
        assert!(city
            .push_row(vec![
                Value::str("Cannes"),
                Value::bool(false),
                Value::int(7),
            ])
            .is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        let mut t = country_table();
        assert!(t.push_row(vec![Value::str("Spain")]).is_err());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    /// A truncated row reports the table, the row number it would have
    /// occupied, and expected-vs-found arity — never a panic.
    #[test]
    fn truncated_row_reports_position_context() {
        let mut t = country_table();
        let err = t
            .push_row(vec![Value::str("Spain"), Value::str("Spanish")])
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::corrupt_at_line("table `CountryE`", 3, "3 values per row", "2 values")
        );
        let rendered = err.to_string();
        assert!(rendered.contains("CountryE"), "{rendered}");
        assert!(rendered.contains("line 3"), "{rendered}");
        // Unresolved references also carry the offending row number.
        let mut city = city_table();
        city.push_row(vec![
            Value::str("Atlantis"),
            Value::bool(false),
            Value::str("Nowhere"),
        ])
        .unwrap();
        let err = load_tables(&[country_table(), city], "euro").unwrap_err();
        assert!(err.to_string().contains("row 4"), "{err}");
    }

    #[test]
    fn dump_round_trips_flat_classes() {
        let instance = load_tables(&[country_table(), city_table()], "euro").unwrap();
        let dumped = dump_class(&instance, &ClassName::new("CityE"), "name").unwrap();
        assert_eq!(dumped.len(), 3);
        // Reference columns are flattened back to the referenced key.
        let country_idx = dumped.column_index("country").unwrap();
        assert!(dumped
            .rows
            .iter()
            .any(|r| r[country_idx] == Value::str("France")));
        // Reloading the dumped tables alongside the countries reproduces the extents.
        let reloaded = load_tables(&[country_table(), dumped], "euro2").unwrap();
        assert_eq!(reloaded.extent_size(&ClassName::new("CityE")), 3);
    }

    #[test]
    fn missing_column_reported() {
        let t = country_table();
        assert!(t.column_index("population").is_err());
    }
}
