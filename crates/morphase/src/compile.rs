//! Translation of normal-form WOL clauses into CPL queries (Figure 6's
//! "Translator to CPL").
//!
//! Each [`NormalClause`] becomes one [`cpl::Query`]: its body's class
//! membership atoms become scans, equality atoms become either binding maps
//! (when they define a fresh variable) or filters, and the clause's key and
//! attribute terms become the query's insert action. The translator does
//! **not** order the joins itself — it emits the scans as a raw product (the
//! atom pool) and hands the result to the CPL join-graph planner
//! ([`cpl::optimize_with_stats`]), which reorders the scans by estimated
//! cardinality and selectivity — the role the paper assigns to the Kleisli
//! optimiser. Which planner runs (none, the legacy rule-based rewriter, or
//! the statistics-fed planner) is chosen by [`PlanMode`].

use std::collections::BTreeSet;

use cpl::plan::InsertAction;
use cpl::{Expr, Plan, Query, Statistics};
use wol_engine::normalize::{NormalClause, NormalProgram};
use wol_lang::ast::{Atom, SkolemArgs, Term};

use crate::error::MorphaseError;
use crate::Result;

/// How compiled plans are optimised.
#[derive(Clone, Copy, Debug, Default)]
pub enum PlanMode<'a> {
    /// Leave the raw left-deep translation untouched (the baseline the
    /// regression tests measure against).
    Raw,
    /// The legacy rule-based rewriter ([`cpl::optimize_reference`]): filter
    /// push-down and hash-join upgrade, no join reordering.
    Reference,
    /// The cost-based join-graph planner with default statistics (no
    /// instances at hand).
    #[default]
    Planner,
    /// The cost-based join-graph planner fed by extent/ndv statistics over
    /// the live source instances.
    PlannerWithStats(&'a Statistics<'a>),
}

/// Translate a WOL term over body variables into a CPL row expression.
pub fn translate_term(term: &Term) -> Expr {
    match term {
        Term::Var(v) => Expr::Var(v.clone()),
        Term::Const(value) => Expr::Const(value.clone()),
        Term::Proj(base, label) => Expr::Proj(Box::new(translate_term(base)), label.clone()),
        Term::Record(fields) => Expr::Record(
            fields
                .iter()
                .map(|(l, t)| (l.clone(), translate_term(t)))
                .collect(),
        ),
        Term::Variant(label, payload) => {
            Expr::Variant(label.clone(), Box::new(translate_term(payload)))
        }
        Term::Skolem(class, args) => Expr::Skolem(class.clone(), Box::new(translate_key(args))),
    }
}

/// Translate Skolem arguments into the key expression whose value identifies
/// the created object.
pub fn translate_key(args: &SkolemArgs) -> Expr {
    match args {
        SkolemArgs::Positional(ts) if ts.len() == 1 => translate_term(&ts[0]),
        SkolemArgs::Positional(ts) => Expr::Record(
            ts.iter()
                .enumerate()
                .map(|(i, t)| (format!("_{i}"), translate_term(t)))
                .collect(),
        ),
        SkolemArgs::Named(fields) => Expr::Record(
            fields
                .iter()
                .map(|(l, t)| (l.clone(), translate_term(t)))
                .collect(),
        ),
    }
}

fn translate_atom_predicate(atom: &Atom) -> Result<Expr> {
    Ok(match atom {
        Atom::Eq(s, t) => Expr::Eq(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Neq(s, t) => Expr::Neq(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Lt(s, t) => Expr::Lt(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Leq(s, t) => Expr::Leq(Box::new(translate_term(s)), Box::new(translate_term(t))),
        Atom::Member(_, c) => {
            return Err(MorphaseError::Compilation(format!(
                "membership in `{c}` cannot appear as a filter predicate"
            )))
        }
        Atom::InSet(_, _) => {
            return Err(MorphaseError::Compilation(
                "`member` atoms are not supported by the CPL translator".to_string(),
            ))
        }
    })
}

/// Compile one normal clause into a CPL query.
pub fn compile_clause(clause: &NormalClause, mode: PlanMode<'_>) -> Result<Query> {
    let mut query = translate_clause(clause)?;
    query.plan = match mode {
        PlanMode::Raw => query.plan,
        PlanMode::Reference => cpl::optimize_reference(query.plan),
        PlanMode::Planner => cpl::optimize(query.plan),
        PlanMode::PlannerWithStats(stats) => cpl::optimize_with_stats(query.plan, stats),
    };
    Ok(query)
}

/// Compile one normal clause with the statistics-fed planner *and* a
/// pushdown catalog: single-variable `var.attr cmp const` conjuncts the
/// catalog allows are diverted to the returned predicate list (for the
/// backend scan provider serving the class) instead of becoming `Filter`
/// operators. Join ordering is unaffected — a diverted conjunct is costed
/// with exactly the selectivity its `Filter` would have had.
pub fn compile_clause_pushdown(
    clause: &NormalClause,
    stats: &Statistics<'_>,
    catalog: &cpl::PushdownCatalog,
) -> Result<(Query, Vec<cpl::PushedPredicate>)> {
    let mut query = translate_clause(clause)?;
    let (plan, pushed) = cpl::optimize_with_pushdown(query.plan, stats, catalog);
    query.plan = plan;
    Ok((query, pushed))
}

/// Translate one normal clause into its raw (unoptimised) CPL query.
fn translate_clause(clause: &NormalClause) -> Result<Query> {
    // 1. Scans for every membership atom.
    let mut plan: Option<Plan> = None;
    let mut produced: BTreeSet<String> = BTreeSet::new();
    let mut rest: Vec<&Atom> = Vec::new();
    for atom in &clause.body {
        match atom {
            Atom::Member(Term::Var(v), class) => {
                let scan = Plan::scan(class.clone(), v.clone());
                produced.insert(v.clone());
                plan = Some(match plan {
                    None => scan,
                    Some(existing) => existing.join(scan, None),
                });
            }
            Atom::Member(_, class) => {
                return Err(MorphaseError::Compilation(format!(
                    "membership of a non-variable term in `{class}` is not supported"
                )))
            }
            other => rest.push(other),
        }
    }
    let mut plan = plan.ok_or_else(|| {
        MorphaseError::Compilation(format!(
            "clause for `{}` has no source membership atoms",
            clause.class
        ))
    })?;

    // 2. Remaining atoms: binding maps (defining equations) or filters, in
    //    dependency order.
    let mut remaining: Vec<&Atom> = rest;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut deferred: Vec<&Atom> = Vec::new();
        for atom in remaining.drain(..) {
            // A defining equation `V = t` (or `t = V`) with V fresh and t computable.
            let defining = match atom {
                Atom::Eq(Term::Var(v), t) if !produced.contains(v) && covered(t, &produced) => {
                    Some((v.clone(), t))
                }
                Atom::Eq(t, Term::Var(v)) if !produced.contains(v) && covered(t, &produced) => {
                    Some((v.clone(), t))
                }
                _ => None,
            };
            if let Some((var, term)) = defining {
                plan = plan.map(vec![(var.clone(), translate_term(term))]);
                produced.insert(var);
                progressed = true;
                continue;
            }
            // A filter whose variables are all available.
            if atom.var_set().iter().all(|v| produced.contains(v)) {
                plan = plan.filter(translate_atom_predicate(atom)?);
                progressed = true;
                continue;
            }
            deferred.push(atom);
        }
        if !progressed && !deferred.is_empty() {
            return Err(MorphaseError::Compilation(format!(
                "cannot order the body atoms of the clause for `{}`: {} atoms remain unplaced",
                clause.class,
                deferred.len()
            )));
        }
        remaining = deferred;
    }

    // 3. The insert action.
    let insert = InsertAction {
        class: clause.class.clone(),
        key: translate_key(&clause.key),
        attrs: clause
            .attrs
            .iter()
            .map(|(l, t)| (l.clone(), translate_term(t)))
            .collect(),
    };
    Ok(Query {
        name: clause.provenance.join("+"),
        plan,
        inserts: vec![insert],
    })
}

fn covered(term: &Term, produced: &BTreeSet<String>) -> bool {
    term.var_set().iter().all(|v| produced.contains(v))
}

/// Compile a whole normal-form program into CPL queries. `optimize_plans`
/// selects the join-graph planner (without instance statistics); use
/// [`compile_program_with`] to feed it live statistics or to pick another
/// [`PlanMode`].
pub fn compile_program(normal: &NormalProgram, optimize_plans: bool) -> Result<Vec<Query>> {
    let mode = if optimize_plans {
        PlanMode::Planner
    } else {
        PlanMode::Raw
    };
    compile_program_with(normal, mode)
}

/// Compile a whole normal-form program into CPL queries under the given
/// planning mode.
pub fn compile_program_with(normal: &NormalProgram, mode: PlanMode<'_>) -> Result<Vec<Query>> {
    normal
        .clauses
        .iter()
        .map(|c| compile_clause(c, mode))
        .collect()
}

/// Compile a whole normal-form program with the statistics-fed planner and a
/// pushdown catalog. Returns the queries plus, parallel to them, the
/// predicates each query's planning diverted to backend scan providers.
pub fn compile_program_pushdown(
    normal: &NormalProgram,
    stats: &Statistics<'_>,
    catalog: &cpl::PushdownCatalog,
) -> Result<(Vec<Query>, Vec<Vec<cpl::PushedPredicate>>)> {
    let mut queries = Vec::with_capacity(normal.clauses.len());
    let mut pushed = Vec::with_capacity(normal.clauses.len());
    for clause in &normal.clauses {
        let (query, predicates) = compile_clause_pushdown(clause, stats, catalog)?;
        queries.push(query);
        pushed.push(predicates);
    }
    Ok((queries, pushed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpl::exec::{execute_query, ExecStats};
    use cpl::expr::EvalCtx;
    use wol_engine::{normalize, NormalizeOptions};
    use wol_model::{ClassName, Instance, Value};
    use workloads::cities::{generate_euro, CitiesWorkload};

    #[test]
    fn cities_program_compiles_and_runs_through_cpl() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let queries = compile_program(&normal, true).unwrap();
        assert_eq!(queries.len(), normal.len());

        let source = generate_euro(4, 3, 17);
        let refs = [&source];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut target = Instance::new("target");
        for query in &queries {
            execute_query(query, &mut ctx, &mut target, &mut stats).unwrap();
        }
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 4);
        assert_eq!(target.extent_size(&ClassName::new("CityT")), 12);
        assert!(stats.rows_scanned > 0);

        // The CPL path agrees with the engine's reference executor.
        let reference = wol_engine::execute(&normal, &[&source][..], "target").unwrap();
        assert_eq!(
            reference.extent_size(&ClassName::new("CityT")),
            target.extent_size(&ClassName::new("CityT"))
        );
        for (_, value) in target.objects(&ClassName::new("CountryT")) {
            assert!(value.project("capital").is_some());
        }
    }

    #[test]
    fn optimised_plans_use_hash_joins_for_the_cities_join() {
        let w = CitiesWorkload::new();
        let program = w.euro_program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let optimised = compile_program(&normal, true).unwrap();
        let unoptimised = compile_program(&normal, false).unwrap();
        let rendered_opt: String = optimised.iter().map(|q| q.plan.render()).collect();
        let rendered_raw: String = unoptimised.iter().map(|q| q.plan.render()).collect();
        assert!(rendered_opt.contains("HashJoin"));
        assert!(!rendered_raw.contains("HashJoin"));
    }

    #[test]
    fn planner_with_stats_eliminates_cross_products_on_the_genome_program() {
        use workloads::genome::{self, GenomeParams};
        let program = genome::program();
        let normal = normalize(&program, &NormalizeOptions::default()).unwrap();
        let source = genome::generate_source(&GenomeParams {
            clones: 10,
            markers: 30,
            density: 0.6,
            seed: 22,
        });
        let refs = [&source];
        let stats = cpl::Statistics::from_instances(&refs);
        let queries = compile_program_with(&normal, PlanMode::PlannerWithStats(&stats)).unwrap();
        let rendered: String = queries.iter().map(|q| q.plan.render()).collect();
        // Every join is recovered as a (possibly composite) hash join: no
        // products survive anywhere in the compiled program.
        assert!(rendered.contains("HashJoin"));
        assert!(!rendered.contains("CrossJoin"));
        assert!(!rendered.contains("NestedLoopJoin"));

        // And the planned program produces the same target as the engine's
        // reference executor.
        let mut ctx = EvalCtx::new(&refs);
        let mut exec_stats = ExecStats::default();
        let mut target = Instance::new("chr22");
        for query in &queries {
            execute_query(query, &mut ctx, &mut target, &mut exec_stats).unwrap();
        }
        let reference = wol_engine::execute(&normal, &[&source][..], "chr22").unwrap();
        assert!(exec_stats.index_probes > 0);
        for class in ["CloneD", "MarkerD"] {
            assert_eq!(
                reference.extent_size(&ClassName::new(class)),
                target.extent_size(&ClassName::new(class)),
                "extent mismatch for {class}"
            );
        }
    }

    #[test]
    fn translate_key_styles() {
        let single = SkolemArgs::Positional(vec![Term::var("N")]);
        assert_eq!(translate_key(&single), Expr::Var("N".to_string()));
        let multi = SkolemArgs::Positional(vec![Term::var("A"), Term::var("B")]);
        assert!(matches!(translate_key(&multi), Expr::Record(fields) if fields.len() == 2));
        let named = SkolemArgs::Named(vec![("name".to_string(), Term::var("N"))]);
        assert!(matches!(translate_key(&named), Expr::Record(fields) if fields[0].0 == "name"));
    }

    #[test]
    fn translate_term_shapes() {
        let term = Term::variant("euro_city", Term::skolem("CountryT", [Term::var("N")]));
        let expr = translate_term(&term);
        match expr {
            Expr::Variant(label, payload) => {
                assert_eq!(label, "euro_city");
                assert!(matches!(*payload, Expr::Skolem(_, _)));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            translate_term(&Term::Const(Value::int(3))),
            Expr::Const(Value::int(3))
        );
    }

    #[test]
    fn unsupported_member_atom_reported() {
        use std::collections::BTreeMap;
        let clause = NormalClause {
            class: ClassName::new("Tgt"),
            key: SkolemArgs::Positional(vec![Term::var("N")]),
            attrs: BTreeMap::new(),
            body: vec![
                Atom::InSet(Term::var("X"), Term::var("S")),
                Atom::Member(Term::var("S"), ClassName::new("Src")),
            ],
            creates: true,
            provenance: vec!["t".to_string()],
        };
        let err = compile_clause(&clause, PlanMode::Raw).unwrap_err();
        assert!(matches!(err, MorphaseError::Compilation(_)));
    }
}
