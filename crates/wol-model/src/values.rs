//! Values of the WOL data model.
//!
//! Values are structural: records are label-indexed maps, sets are ordered
//! (duplicate-free) collections, and every value has a total order so that
//! values of set type have a canonical form and can be used as map keys (which
//! the Skolem factory and the key machinery rely on).

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use crate::oid::Oid;
use crate::types::Label;

/// A cheaply clonable handle on a value.
///
/// The engine's binding frames hold values behind `Arc` so that extending a
/// binding (or snapshotting it into a result) bumps a reference count instead
/// of deep-cloning record and set trees.
pub type SharedValue = Arc<Value>;

/// A double-precision real with a total order.
///
/// The model's base type `real` is represented by `f64`, but `f64` has no
/// total order (`NaN`). `RealVal` imposes one via the IEEE-754 `total_cmp`
/// ordering, which is sufficient for canonical set representations and map
/// keys. `NaN` values are permitted but compare greater than all other values.
#[derive(Clone, Copy, Debug)]
pub struct RealVal(pub f64);

impl RealVal {
    /// The wrapped `f64`.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl PartialEq for RealVal {
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == std::cmp::Ordering::Equal
    }
}

impl Eq for RealVal {}

impl PartialOrd for RealVal {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for RealVal {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::hash::Hash for RealVal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.to_bits().hash(state);
    }
}

impl fmt::Display for RealVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for RealVal {
    fn from(v: f64) -> Self {
        RealVal(v)
    }
}

/// A value of the WOL data model.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A real number with total order.
    Real(RealVal),
    /// A string.
    Str(String),
    /// An object identity.
    Oid(Oid),
    /// A finite set (canonically ordered, duplicate free).
    Set(BTreeSet<Value>),
    /// A finite list (order and duplicates significant).
    List(Vec<Value>),
    /// A record: a finite map from labels to values.
    Record(BTreeMap<Label, Value>),
    /// A variant: a chosen label together with the carried value.
    Variant(Label, Box<Value>),
    /// The unit value (carried by data-less variant alternatives).
    Unit,
    /// The absent value of an optional field.
    Absent,
}

impl Value {
    /// Build a string value.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Build an integer value.
    pub fn int(i: i64) -> Value {
        Value::Int(i)
    }

    /// Build a boolean value.
    pub fn bool(b: bool) -> Value {
        Value::Bool(b)
    }

    /// Build a real value.
    pub fn real(r: f64) -> Value {
        Value::Real(RealVal(r))
    }

    /// Build an object-identity value.
    pub fn oid(o: Oid) -> Value {
        Value::Oid(o)
    }

    /// Build a record value from `(label, value)` pairs.
    pub fn record<I, L>(fields: I) -> Value
    where
        I: IntoIterator<Item = (L, Value)>,
        L: Into<Label>,
    {
        Value::Record(fields.into_iter().map(|(l, v)| (l.into(), v)).collect())
    }

    /// Build a set value from an iterator of elements (duplicates removed).
    pub fn set<I: IntoIterator<Item = Value>>(elems: I) -> Value {
        Value::Set(elems.into_iter().collect())
    }

    /// Build a list value.
    pub fn list<I: IntoIterator<Item = Value>>(elems: I) -> Value {
        Value::List(elems.into_iter().collect())
    }

    /// Build a variant value carrying `value`.
    pub fn variant(label: impl Into<Label>, value: Value) -> Value {
        Value::Variant(label.into(), Box::new(value))
    }

    /// Build a data-less variant value (e.g. `ins_male()`).
    pub fn tag(label: impl Into<Label>) -> Value {
        Value::Variant(label.into(), Box::new(Value::Unit))
    }

    /// Project field `label` out of a record value.
    pub fn project(&self, label: &str) -> Option<&Value> {
        match self {
            Value::Record(fields) => fields.get(label),
            _ => None,
        }
    }

    /// If this is a variant with the given label, return the carried value.
    pub fn variant_payload(&self, label: &str) -> Option<&Value> {
        match self {
            Value::Variant(l, v) if l == label => Some(v),
            _ => None,
        }
    }

    /// If this is a variant, return `(label, payload)`.
    pub fn as_variant(&self) -> Option<(&str, &Value)> {
        match self {
            Value::Variant(l, v) => Some((l.as_str(), v)),
            _ => None,
        }
    }

    /// If this is an object identity, return it.
    pub fn as_oid(&self) -> Option<&Oid> {
        match self {
            Value::Oid(o) => Some(o),
            _ => None,
        }
    }

    /// If this is a string, return it.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// If this is an integer, return it.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// If this is a boolean, return it.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// If this is a set, return its elements.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// If this is a record, return its fields.
    pub fn as_record(&self) -> Option<&BTreeMap<Label, Value>> {
        match self {
            Value::Record(r) => Some(r),
            _ => None,
        }
    }

    /// True if any object identity appears (transitively) inside this value.
    pub fn contains_oid(&self) -> bool {
        match self {
            Value::Oid(_) => true,
            Value::Bool(_)
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Unit
            | Value::Absent => false,
            Value::Set(s) => s.iter().any(Value::contains_oid),
            Value::List(l) => l.iter().any(Value::contains_oid),
            Value::Record(r) => r.values().any(Value::contains_oid),
            Value::Variant(_, v) => v.contains_oid(),
        }
    }

    /// Collect every object identity appearing (transitively) inside this value.
    pub fn collect_oids(&self, out: &mut Vec<Oid>) {
        match self {
            Value::Oid(o) => out.push(o.clone()),
            Value::Bool(_)
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Unit
            | Value::Absent => {}
            Value::Set(s) => s.iter().for_each(|v| v.collect_oids(out)),
            Value::List(l) => l.iter().for_each(|v| v.collect_oids(out)),
            Value::Record(r) => r.values().for_each(|v| v.collect_oids(out)),
            Value::Variant(_, v) => v.collect_oids(out),
        }
    }

    /// All object identities appearing inside this value.
    pub fn oids(&self) -> Vec<Oid> {
        let mut out = Vec::new();
        self.collect_oids(&mut out);
        out
    }

    /// Rewrite every object identity inside this value through `f` (used when
    /// merging instances whose identity spaces overlap).
    pub fn map_oids(&self, f: &mut impl FnMut(&Oid) -> Oid) -> Value {
        match self {
            Value::Oid(o) => Value::Oid(f(o)),
            Value::Bool(_)
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Unit
            | Value::Absent => self.clone(),
            Value::Set(s) => Value::Set(s.iter().map(|v| v.map_oids(f)).collect()),
            Value::List(l) => Value::List(l.iter().map(|v| v.map_oids(f)).collect()),
            Value::Record(r) => {
                Value::Record(r.iter().map(|(l, v)| (l.clone(), v.map_oids(f))).collect())
            }
            Value::Variant(l, v) => Value::Variant(l.clone(), Box::new(v.map_oids(f))),
        }
    }

    /// A short description of the value's shape, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "str",
            Value::Oid(_) => "oid",
            Value::Set(_) => "set",
            Value::List(_) => "list",
            Value::Record(_) => "record",
            Value::Variant(_, _) => "variant",
            Value::Unit => "unit",
            Value::Absent => "absent",
        }
    }

    /// Merge two record values that describe the *same* object, field by field.
    ///
    /// This is the value-level operation behind WOL's partial clauses: several
    /// clauses each contribute some fields of a target object, and the fields
    /// are merged as long as they agree on any field both sides define.
    /// Returns `None` if both records define the same field with different
    /// values, or if either value is not a record.
    pub fn merge_records(&self, other: &Value) -> Option<Value> {
        match (self, other) {
            (Value::Record(a), Value::Record(b)) => {
                let mut merged = a.clone();
                for (label, value) in b {
                    match merged.get(label) {
                        Some(existing) if existing != value => return None,
                        Some(_) => {}
                        None => {
                            merged.insert(label.clone(), value.clone());
                        }
                    }
                }
                Some(Value::Record(merged))
            }
            _ => None,
        }
    }

    /// Wrap the value in a cheaply clonable [`SharedValue`] handle.
    pub fn shared(self) -> SharedValue {
        Arc::new(self)
    }

    /// The number of nodes in the value tree (used by size metrics in benches).
    pub fn size(&self) -> usize {
        match self {
            Value::Bool(_)
            | Value::Int(_)
            | Value::Real(_)
            | Value::Str(_)
            | Value::Oid(_)
            | Value::Unit
            | Value::Absent => 1,
            Value::Set(s) => 1 + s.iter().map(Value::size).sum::<usize>(),
            Value::List(l) => 1 + l.iter().map(Value::size).sum::<usize>(),
            Value::Record(r) => 1 + r.values().map(Value::size).sum::<usize>(),
            Value::Variant(_, v) => 1 + v.size(),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

impl From<Oid> for Value {
    fn from(o: Oid) -> Self {
        Value::Oid(o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassName;

    fn oid(c: &str, i: u64) -> Oid {
        Oid::new(ClassName::new(c), i)
    }

    #[test]
    fn record_projection() {
        let v = Value::record([
            ("name", Value::str("Paris")),
            ("is_capital", Value::bool(true)),
        ]);
        assert_eq!(v.project("name"), Some(&Value::str("Paris")));
        assert_eq!(v.project("missing"), None);
        assert_eq!(Value::int(3).project("name"), None);
    }

    #[test]
    fn variant_accessors() {
        let v = Value::variant("euro_city", Value::oid(oid("CityE", 3)));
        assert_eq!(
            v.variant_payload("euro_city"),
            Some(&Value::oid(oid("CityE", 3)))
        );
        assert_eq!(v.variant_payload("us_city"), None);
        let (label, payload) = v.as_variant().unwrap();
        assert_eq!(label, "euro_city");
        assert_eq!(payload, &Value::oid(oid("CityE", 3)));
        let tag = Value::tag("male");
        assert_eq!(tag.as_variant(), Some(("male", &Value::Unit)));
    }

    #[test]
    fn sets_are_canonical() {
        let a = Value::set([Value::int(2), Value::int(1), Value::int(2)]);
        let b = Value::set([Value::int(1), Value::int(2)]);
        assert_eq!(a, b);
        assert_eq!(a.as_set().unwrap().len(), 2);
    }

    #[test]
    fn contains_and_collect_oids() {
        let v = Value::record([
            ("country", Value::oid(oid("CountryE", 1))),
            ("aliases", Value::set([Value::str("x")])),
            (
                "place",
                Value::variant("euro", Value::oid(oid("CountryE", 2))),
            ),
        ]);
        assert!(v.contains_oid());
        let oids = v.oids();
        assert_eq!(oids.len(), 2);
        assert!(!Value::str("plain").contains_oid());
    }

    #[test]
    fn merge_records_combines_disjoint_fields() {
        let a = Value::record([("name", Value::str("France"))]);
        let b = Value::record([("currency", Value::str("franc"))]);
        let merged = a.merge_records(&b).unwrap();
        assert_eq!(
            merged,
            Value::record([
                ("name", Value::str("France")),
                ("currency", Value::str("franc"))
            ])
        );
    }

    #[test]
    fn merge_records_rejects_conflicts() {
        let a = Value::record([("name", Value::str("France"))]);
        let b = Value::record([("name", Value::str("Germany"))]);
        assert_eq!(a.merge_records(&b), None);
        assert_eq!(a.merge_records(&Value::int(1)), None);
    }

    #[test]
    fn merge_records_allows_agreeing_overlap() {
        let a = Value::record([
            ("name", Value::str("France")),
            ("language", Value::str("French")),
        ]);
        let b = Value::record([
            ("name", Value::str("France")),
            ("currency", Value::str("franc")),
        ]);
        let merged = a.merge_records(&b).unwrap();
        assert_eq!(merged.as_record().unwrap().len(), 3);
    }

    #[test]
    fn real_total_order() {
        let a = Value::real(1.5);
        let b = Value::real(2.5);
        let nan = Value::real(f64::NAN);
        assert!(a < b);
        assert!(b < nan);
        assert_eq!(Value::real(1.5), Value::real(1.5));
    }

    #[test]
    fn value_size_counts_nodes() {
        let v = Value::record([
            ("a", Value::int(1)),
            ("b", Value::set([Value::int(1), Value::int(2)])),
        ]);
        // record + int + set + 2 ints
        assert_eq!(v.size(), 5);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(42i64), Value::Int(42));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(String::from("y")), Value::Str("y".into()));
        assert_eq!(Value::from(oid("C", 1)), Value::Oid(oid("C", 1)));
    }

    #[test]
    fn kind_names() {
        assert_eq!(Value::Unit.kind(), "unit");
        assert_eq!(Value::Absent.kind(), "absent");
        assert_eq!(Value::list([Value::int(1)]).kind(), "list");
    }
}
