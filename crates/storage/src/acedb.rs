//! An ACeDB-like tagged-tree store.
//!
//! "ACeDB represents data in tree-like structures with object identities, and
//! is well suited for representing 'sparsely populated' data" (Section 6).
//! This module provides a small stand-in: a store of named objects, each a
//! tree of *tags* holding either atomic values, lists of values, or references
//! to other objects. The importer maps a selection of tags onto record
//! attributes of a model [`Instance`], leaving unmentioned tags out and
//! producing `Absent` for missing optional attributes — exactly the
//! sparsely-populated shape the genome workloads exercise.

use std::collections::BTreeMap;

use wol_model::{ClassName, Instance, Label, Value};

use crate::error::StorageError;
use crate::Result;

/// A value held under a tag.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AceValue {
    /// A text value.
    Text(String),
    /// An integer value.
    Int(i64),
    /// A reference to another object, by class and name.
    ObjectRef(String, String),
    /// A list of values (ACeDB columns).
    Many(Vec<AceValue>),
}

/// An ACeDB-like object: a class, a name (its identity), and a sparse tree of
/// tagged values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AceObject {
    /// The object's class (ACeDB "class").
    pub class: String,
    /// The object's name (ACeDB objects are identified by name).
    pub name: String,
    /// The tags present on this object.
    pub tags: BTreeMap<String, AceValue>,
}

impl AceObject {
    /// Create an object with no tags.
    pub fn new(class: impl Into<String>, name: impl Into<String>) -> Self {
        AceObject {
            class: class.into(),
            name: name.into(),
            tags: BTreeMap::new(),
        }
    }

    /// Builder-style tag insertion.
    pub fn with_tag(mut self, tag: impl Into<String>, value: AceValue) -> Self {
        self.tags.insert(tag.into(), value);
        self
    }
}

/// A store of ACeDB-like objects.
#[derive(Clone, Debug, Default)]
pub struct AceStore {
    objects: Vec<AceObject>,
}

impl AceStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an object.
    pub fn add(&mut self, object: AceObject) {
        self.objects.push(object);
    }

    /// All objects of a class.
    pub fn of_class(&self, class: &str) -> Vec<&AceObject> {
        self.objects.iter().filter(|o| o.class == class).collect()
    }

    /// Total number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True if the store is empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Import the store into a model instance.
    ///
    /// `mappings` lists, per ACeDB class, the target model class and the tags
    /// to import as attributes (tag name → attribute label). The object's name
    /// always becomes the `name` attribute. Tags missing on an object simply
    /// do not produce an attribute (sparse data); `ObjectRef` tags resolve to
    /// object identities of the referenced class, failing if the referenced
    /// object is not part of the import.
    pub fn import(&self, mappings: &[AceMapping], instance_name: &str) -> Result<Instance> {
        let mut instance = Instance::new(instance_name);
        // Pass 1: create every object so references can be resolved.
        let mut oids: BTreeMap<(String, String), wol_model::Oid> = BTreeMap::new();
        for mapping in mappings {
            let class = ClassName::new(&mapping.model_class);
            for object in self.of_class(&mapping.ace_class) {
                let oid = instance.insert_fresh(&class, Value::Record(BTreeMap::new()));
                oids.insert((object.class.clone(), object.name.clone()), oid);
            }
        }
        // Pass 2: fill in attribute records.
        for mapping in mappings {
            for object in self.of_class(&mapping.ace_class) {
                let oid = oids[&(object.class.clone(), object.name.clone())].clone();
                let mut fields: BTreeMap<Label, Value> = BTreeMap::new();
                fields.insert("name".to_string(), Value::str(&object.name));
                for (tag, label) in &mapping.tags {
                    if let Some(value) = object.tags.get(tag) {
                        fields.insert(label.clone(), convert(value, &oids)?);
                    }
                }
                instance.update(&oid, Value::Record(fields))?;
            }
        }
        Ok(instance)
    }
}

fn convert(value: &AceValue, oids: &BTreeMap<(String, String), wol_model::Oid>) -> Result<Value> {
    Ok(match value {
        AceValue::Text(s) => Value::str(s.clone()),
        AceValue::Int(i) => Value::Int(*i),
        AceValue::ObjectRef(class, name) => {
            let oid = oids.get(&(class.clone(), name.clone())).ok_or_else(|| {
                StorageError::UnresolvedReference(format!(
                    "{class}:{name} is not part of the import"
                ))
            })?;
            Value::Oid(oid.clone())
        }
        AceValue::Many(items) => Value::Set(
            items
                .iter()
                .map(|i| convert(i, oids))
                .collect::<Result<std::collections::BTreeSet<Value>>>()?,
        ),
    })
}

/// How one ACeDB class maps onto a model class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AceMapping {
    /// The ACeDB class to import.
    pub ace_class: String,
    /// The model class to create objects in.
    pub model_class: String,
    /// Tag → attribute label pairs to import.
    pub tags: Vec<(String, Label)>,
}

impl AceMapping {
    /// Convenience constructor.
    pub fn new(
        ace_class: impl Into<String>,
        model_class: impl Into<String>,
        tags: &[(&str, &str)],
    ) -> Self {
        AceMapping {
            ace_class: ace_class.into(),
            model_class: model_class.into(),
            tags: tags
                .iter()
                .map(|(t, l)| (t.to_string(), l.to_string()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome_store() -> AceStore {
        let mut store = AceStore::new();
        store.add(
            AceObject::new("Clone", "cE22-1")
                .with_tag("Length", AceValue::Int(40_000))
                .with_tag("Sequenced_by", AceValue::Text("Sanger".to_string())),
        );
        // A sparsely populated clone: no length recorded.
        store.add(AceObject::new("Clone", "cE22-2"));
        store.add(
            AceObject::new("Marker", "D22S1")
                .with_tag("Position", AceValue::Int(17))
                .with_tag(
                    "Clone",
                    AceValue::ObjectRef("Clone".to_string(), "cE22-1".to_string()),
                )
                .with_tag(
                    "Aliases",
                    AceValue::Many(vec![
                        AceValue::Text("M1".to_string()),
                        AceValue::Text("M1b".to_string()),
                    ]),
                ),
        );
        store
    }

    fn mappings() -> Vec<AceMapping> {
        vec![
            AceMapping::new(
                "Clone",
                "CloneS",
                &[("Length", "length"), ("Sequenced_by", "lab")],
            ),
            AceMapping::new(
                "Marker",
                "MarkerS",
                &[
                    ("Position", "position"),
                    ("Clone", "clone"),
                    ("Aliases", "aliases"),
                ],
            ),
        ]
    }

    #[test]
    fn import_creates_sparse_records() {
        let store = genome_store();
        assert_eq!(store.len(), 3);
        assert!(!store.is_empty());
        let instance = store.import(&mappings(), "ace22").unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("CloneS")), 2);
        assert_eq!(instance.extent_size(&ClassName::new("MarkerS")), 1);

        let full = instance
            .find_by_field(&ClassName::new("CloneS"), "name", &Value::str("cE22-1"))
            .unwrap();
        assert_eq!(
            instance.value(full).unwrap().project("length"),
            Some(&Value::int(40_000))
        );

        // The sparse clone has a name but no length attribute at all.
        let sparse = instance
            .find_by_field(&ClassName::new("CloneS"), "name", &Value::str("cE22-2"))
            .unwrap();
        assert_eq!(instance.value(sparse).unwrap().project("length"), None);
    }

    #[test]
    fn references_and_sets_resolved() {
        let instance = genome_store().import(&mappings(), "ace22").unwrap();
        let marker = instance
            .find_by_field(&ClassName::new("MarkerS"), "name", &Value::str("D22S1"))
            .unwrap();
        let value = instance.value(marker).unwrap();
        let clone_oid = value.project("clone").and_then(|v| v.as_oid()).unwrap();
        assert_eq!(
            instance.value(clone_oid).unwrap().project("name"),
            Some(&Value::str("cE22-1"))
        );
        let aliases = value.project("aliases").and_then(|v| v.as_set()).unwrap();
        assert_eq!(aliases.len(), 2);
    }

    #[test]
    fn unresolved_reference_reported() {
        let mut store = AceStore::new();
        store.add(AceObject::new("Marker", "D22S9").with_tag(
            "Clone",
            AceValue::ObjectRef("Clone".to_string(), "ghost".to_string()),
        ));
        let err = store
            .import(
                &[AceMapping::new("Marker", "MarkerS", &[("Clone", "clone")])],
                "x",
            )
            .unwrap_err();
        assert!(matches!(err, StorageError::UnresolvedReference(_)));
    }

    #[test]
    fn unmapped_classes_are_ignored() {
        let store = genome_store();
        let instance = store
            .import(
                &[AceMapping::new("Clone", "CloneS", &[("Length", "length")])],
                "x",
            )
            .unwrap();
        assert_eq!(instance.extent_size(&ClassName::new("MarkerS")), 0);
        assert_eq!(instance.extent_size(&ClassName::new("CloneS")), 2);
    }
}
