//! # wol-lang
//!
//! The WOL language front end (Section 3 of the paper).
//!
//! A WOL *program* is a finite set of *clauses* `head <= body`, where head and
//! body are sets of *atoms*. Atoms state basic logical facts about *terms*:
//! class membership (`X in CityE`), equality (`X.name = E.name`), variant
//! injection (`Y.place = ins_euro_city(X)`), Skolem object creation
//! (`X = Mk_CountryT(N)`), comparisons, and set membership.
//!
//! This crate provides:
//!
//! * the abstract syntax ([`ast`]),
//! * a concrete textual syntax with a lexer ([`lexer`]) and parser ([`parser`]),
//! * a pretty printer ([`pretty`]) that renders clauses back in that syntax,
//! * the two well-formedness analyses the paper requires of clauses:
//!   **well-typedness** ([`typecheck`]) and **range-restriction** ([`range`]),
//! * program-level structure and classification of clauses into constraints and
//!   transformation clauses ([`program`]).
//!
//! The concrete syntax used throughout the workspace:
//!
//! ```text
//! // Clause (T1) of the paper:
//! X in CountryT, X.name = E.name, X.language = E.language,
//!     X.currency = E.currency
//!   <= E in CountryE;
//!
//! // Key constraint (C3):
//! Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name;
//!
//! // Variant injection and Boolean constants:
//! Y.place = ins_euro_city(X) <= E in CityE, E.is_capital = true;
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod pretty;
pub mod program;
pub mod range;
pub mod token;
pub mod typecheck;

pub use ast::{Atom, Clause, ClauseId, SkolemArgs, Term, Var};
pub use error::LangError;
pub use parser::{parse_clause, parse_program};
pub use pretty::{render_atom, render_clause, render_program, render_term};
pub use program::{ClauseKind, ClauseRole, Program, SchemaBinding};
pub use range::check_range_restricted;
pub use typecheck::{check_clause_types, TypeEnv};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LangError>;
