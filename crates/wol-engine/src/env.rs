//! Evaluation environment: databases, variable bindings, term evaluation and
//! body matching.
//!
//! WOL clause bodies are matched against one or more database instances (the
//! source databases, and — for non-normal-form clauses — also the target
//! database built so far). The matcher enumerates all bindings of the body's
//! variables that make every body atom true; this is the reference semantics
//! used by the naive evaluator, the constraint checker and the engine's tests.
//! The optimised execution path compiles normal-form clauses to the `cpl`
//! algebra instead.

use std::collections::BTreeMap;

use wol_lang::ast::{Atom, SkolemArgs, Term, Var};
use wol_model::{ClassName, Instance, Oid, SkolemFactory, Value};

use crate::error::EngineError;
use crate::Result;

/// A set of database instances visible to clause evaluation, in order.
#[derive(Clone)]
pub struct Databases<'a> {
    instances: Vec<&'a Instance>,
}

impl<'a> Databases<'a> {
    /// View over the given instances (sources first, target last by
    /// convention).
    pub fn new(instances: &[&'a Instance]) -> Self {
        Databases {
            instances: instances.to_vec(),
        }
    }

    /// Look up the value of an object identity in whichever instance holds it.
    pub fn value_of(&self, oid: &Oid) -> Option<&'a Value> {
        self.instances.iter().find_map(|i| i.value(oid))
    }

    /// Iterate over the extent of `class` across all instances.
    pub fn extent(&self, class: &ClassName) -> Vec<&'a Oid> {
        self.instances
            .iter()
            .flat_map(|i| i.extent(class))
            .collect()
    }

    /// Whether `oid` is present in the extent of its class in any instance.
    pub fn contains(&self, oid: &Oid) -> bool {
        self.instances.iter().any(|i| i.contains(oid))
    }

    /// Number of instances.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if there are no instances.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }
}

/// A binding of clause variables to values.
pub type Bindings = BTreeMap<Var, Value>;

/// Evaluate a term under `bindings`. Skolem terms are resolved through
/// `skolem`, creating object identities on demand; projections dereference
/// object identities through `dbs`.
pub fn eval_term(
    term: &Term,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Result<Value> {
    match term {
        Term::Var(v) => bindings
            .get(v)
            .cloned()
            .ok_or_else(|| EngineError::Eval(format!("unbound variable {v}"))),
        Term::Const(value) => Ok(value.clone()),
        Term::Proj(base, label) => {
            let base_value = eval_term(base, bindings, dbs, skolem)?;
            let record = match &base_value {
                Value::Oid(oid) => dbs
                    .value_of(oid)
                    .ok_or_else(|| EngineError::Eval(format!("dangling object identity {oid}")))?
                    .clone(),
                other => other.clone(),
            };
            record
                .project(label)
                .cloned()
                .ok_or_else(|| {
                    EngineError::Eval(format!(
                        "value of kind `{}` has no attribute `{label}`",
                        record.kind()
                    ))
                })
        }
        Term::Record(fields) => {
            let mut out = BTreeMap::new();
            for (label, sub) in fields {
                out.insert(label.clone(), eval_term(sub, bindings, dbs, skolem)?);
            }
            Ok(Value::Record(out))
        }
        Term::Variant(label, payload) => Ok(Value::Variant(
            label.clone(),
            Box::new(eval_term(payload, bindings, dbs, skolem)?),
        )),
        Term::Skolem(class, args) => {
            let key = eval_skolem_key(args, bindings, dbs, skolem)?;
            Ok(Value::Oid(skolem.mk(class, &key)))
        }
    }
}

/// Evaluate the key value of a Skolem term's arguments: a single positional
/// argument is the key itself, multiple positional arguments form a list, and
/// named arguments form a record.
pub fn eval_skolem_key(
    args: &SkolemArgs,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Result<Value> {
    match args {
        SkolemArgs::Positional(ts) => {
            let mut values = Vec::new();
            for t in ts {
                values.push(eval_term(t, bindings, dbs, skolem)?);
            }
            Ok(match values.len() {
                1 => values.into_iter().next().expect("length checked"),
                _ => Value::List(values),
            })
        }
        SkolemArgs::Named(fields) => {
            let mut out = BTreeMap::new();
            for (label, t) in fields {
                out.insert(label.clone(), eval_term(t, bindings, dbs, skolem)?);
            }
            Ok(Value::Record(out))
        }
    }
}

/// Evaluate a term if all of its variables are bound; `None` otherwise.
pub fn try_eval_term(
    term: &Term,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Option<Value> {
    if term.var_set().iter().all(|v| bindings.contains_key(v)) {
        eval_term(term, bindings, dbs, skolem).ok()
    } else {
        None
    }
}

/// Match a term used as a *pattern* against a value, extending `bindings`.
///
/// Patterns are variables (bind or check), constants (check), record terms
/// (destructure fields) and variant terms (check the label, destructure the
/// payload). Projections and Skolem terms are not patterns; if they are fully
/// evaluable they are checked for equality, otherwise the match fails.
pub fn match_pattern(
    pattern: &Term,
    value: &Value,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Option<Bindings> {
    match pattern {
        Term::Var(v) => match bindings.get(v) {
            Some(existing) => {
                if existing == value {
                    Some(bindings.clone())
                } else {
                    None
                }
            }
            None => {
                let mut extended = bindings.clone();
                extended.insert(v.clone(), value.clone());
                Some(extended)
            }
        },
        Term::Const(c) => {
            if c == value {
                Some(bindings.clone())
            } else {
                None
            }
        }
        Term::Record(fields) => {
            let Value::Record(actual) = value else { return None };
            let mut current = bindings.clone();
            for (label, sub) in fields {
                let sub_value = actual.get(label)?;
                current = match_pattern(sub, sub_value, &current, dbs, skolem)?;
            }
            Some(current)
        }
        Term::Variant(label, payload) => {
            let Value::Variant(actual_label, actual_payload) = value else { return None };
            if label != actual_label {
                return None;
            }
            match_pattern(payload, actual_payload, bindings, dbs, skolem)
        }
        Term::Proj(_, _) | Term::Skolem(_, _) => {
            let evaluated = try_eval_term(pattern, bindings, dbs, skolem)?;
            if &evaluated == value {
                Some(bindings.clone())
            } else {
                None
            }
        }
    }
}

/// Is the term usable as a *pattern* for destructuring (see
/// [`match_pattern`]): variables, constants, and record/variant shapes over
/// patterns? Projections and Skolem terms are not patterns.
fn is_pattern(term: &Term) -> bool {
    match term {
        Term::Var(_) | Term::Const(_) => true,
        Term::Record(fields) => fields.iter().all(|(_, t)| is_pattern(t)),
        Term::Variant(_, payload) => is_pattern(payload),
        Term::Proj(_, _) | Term::Skolem(_, _) => false,
    }
}

/// Can this atom be processed under the current bindings?
fn atom_ready(atom: &Atom, bindings: &Bindings) -> bool {
    let bound = |t: &Term| t.var_set().iter().all(|v| bindings.contains_key(v));
    match atom {
        // Membership can always be processed: either check (bound) or
        // enumerate the extent (unbound variable / pattern).
        Atom::Member(_, _) => true,
        Atom::Eq(s, t) => {
            (bound(s) && bound(t)) || (bound(s) && is_pattern(t)) || (bound(t) && is_pattern(s))
        }
        Atom::Neq(s, t) | Atom::Lt(s, t) | Atom::Leq(s, t) => bound(s) && bound(t),
        Atom::InSet(_, set) => bound(set),
    }
}

/// Extend `bindings` in every way that makes `atom` true.
fn match_atom(
    atom: &Atom,
    bindings: &Bindings,
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
) -> Result<Vec<Bindings>> {
    match atom {
        Atom::Member(term, class) => {
            if let Some(value) = try_eval_term(term, bindings, dbs, skolem) {
                // Check membership of an already-determined object.
                match value {
                    Value::Oid(oid) => {
                        if oid.class() == class && dbs.contains(&oid) {
                            Ok(vec![bindings.clone()])
                        } else {
                            Ok(vec![])
                        }
                    }
                    _ => Ok(vec![]),
                }
            } else {
                // Enumerate the extent and match the term as a pattern.
                let mut out = Vec::new();
                for oid in dbs.extent(class) {
                    let value = Value::Oid(oid.clone());
                    if let Some(extended) = match_pattern(term, &value, bindings, dbs, skolem) {
                        out.push(extended);
                    }
                }
                Ok(out)
            }
        }
        Atom::Eq(s, t) => {
            let sv = try_eval_term(s, bindings, dbs, skolem);
            let tv = try_eval_term(t, bindings, dbs, skolem);
            let bound = |term: &Term| term.var_set().iter().all(|v| bindings.contains_key(v));
            match (sv, tv) {
                (Some(a), Some(b)) => Ok(if a == b { vec![bindings.clone()] } else { vec![] }),
                (Some(a), None) => {
                    if bound(t) {
                        // Fully bound but not evaluable (e.g. a missing
                        // optional attribute): the equality simply fails.
                        Ok(vec![])
                    } else {
                        Ok(match_pattern(t, &a, bindings, dbs, skolem).into_iter().collect())
                    }
                }
                (None, Some(b)) => {
                    if bound(s) {
                        Ok(vec![])
                    } else {
                        Ok(match_pattern(s, &b, bindings, dbs, skolem).into_iter().collect())
                    }
                }
                (None, None) => {
                    if bound(s) || bound(t) {
                        // At least one side is fully bound but cannot be
                        // evaluated (e.g. a missing optional field): the
                        // equality has no witness.
                        Ok(vec![])
                    } else {
                        Err(EngineError::Eval(format!(
                            "cannot orient equality {} = {}: neither side is evaluable",
                            wol_lang::render_term(s),
                            wol_lang::render_term(t)
                        )))
                    }
                }
            }
        }
        Atom::Neq(s, t) => {
            let a = eval_term(s, bindings, dbs, skolem)?;
            let b = eval_term(t, bindings, dbs, skolem)?;
            Ok(if a != b { vec![bindings.clone()] } else { vec![] })
        }
        Atom::Lt(s, t) | Atom::Leq(s, t) => {
            let a = eval_term(s, bindings, dbs, skolem)?;
            let b = eval_term(t, bindings, dbs, skolem)?;
            let ordering = compare_numeric(&a, &b)?;
            let holds = match atom {
                Atom::Lt(_, _) => ordering == std::cmp::Ordering::Less,
                _ => ordering != std::cmp::Ordering::Greater,
            };
            Ok(if holds { vec![bindings.clone()] } else { vec![] })
        }
        Atom::InSet(elem, set) => {
            let set_value = eval_term(set, bindings, dbs, skolem)?;
            let elements: Vec<Value> = match set_value {
                Value::Set(items) => items.into_iter().collect(),
                Value::List(items) => items,
                other => {
                    return Err(EngineError::Eval(format!(
                        "`member` applied to a non-set value of kind `{}`",
                        other.kind()
                    )))
                }
            };
            let mut out = Vec::new();
            for item in elements {
                if let Some(extended) = match_pattern(elem, &item, bindings, dbs, skolem) {
                    out.push(extended);
                }
            }
            Ok(out)
        }
    }
}

fn compare_numeric(a: &Value, b: &Value) -> Result<std::cmp::Ordering> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Real(x), Value::Real(y)) => Ok(x.cmp(y)),
        (Value::Int(x), Value::Real(y)) => Ok(wol_model::RealVal(*x as f64).cmp(y)),
        (Value::Real(x), Value::Int(y)) => Ok(x.cmp(&wol_model::RealVal(*y as f64))),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => Err(EngineError::Eval(format!(
            "cannot compare values of kinds `{}` and `{}`",
            a.kind(),
            b.kind()
        ))),
    }
}

/// Enumerate every binding of the body's variables (extending `initial`) that
/// makes all `atoms` true against `dbs`.
///
/// The matcher repeatedly picks a *ready* atom — one whose unbound variables
/// can only be bound by processing it — preferring cheap filters over
/// extent enumerations. This is a straightforward nested-loop strategy: it is
/// deliberately unoptimised, serving as the reference semantics and the
/// "apply the clauses directly" baseline the paper contrasts Morphase with.
pub fn match_body(
    atoms: &[Atom],
    dbs: &Databases<'_>,
    skolem: &mut SkolemFactory,
    initial: Bindings,
) -> Result<Vec<Bindings>> {
    fn go(
        remaining: &[Atom],
        dbs: &Databases<'_>,
        skolem: &mut SkolemFactory,
        bindings: Bindings,
        out: &mut Vec<Bindings>,
    ) -> Result<()> {
        if remaining.is_empty() {
            out.push(bindings);
            return Ok(());
        }
        // Pick the best ready atom: prefer fully-bound filters, then oriented
        // equalities, then memberships/enumerations.
        let fully_bound = |atom: &Atom| {
            atom.var_set().iter().all(|v| bindings.contains_key(v))
        };
        let position = remaining
            .iter()
            .position(fully_bound)
            .or_else(|| {
                remaining
                    .iter()
                    .position(|a| matches!(a, Atom::Eq(_, _)) && atom_ready(a, &bindings))
            })
            .or_else(|| remaining.iter().position(|a| atom_ready(a, &bindings)));
        let Some(position) = position else {
            return Err(EngineError::Eval(
                "no atom can be processed: the clause body is not range-restricted".to_string(),
            ));
        };
        let atom = &remaining[position];
        let rest: Vec<Atom> = remaining
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != position)
            .map(|(_, a)| a.clone())
            .collect();
        for extended in match_atom(atom, &bindings, dbs, skolem)? {
            go(&rest, dbs, skolem, extended, out)?;
        }
        Ok(())
    }

    let mut out = Vec::new();
    go(atoms, dbs, skolem, initial, &mut out)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::parse_clause;

    fn euro_instance() -> (Instance, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        for (name, capital, country) in [
            ("London", true, &uk),
            ("Manchester", false, &uk),
            ("Paris", true, &fr),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
        (inst, uk, fr)
    }

    #[test]
    fn eval_projection_through_oid() {
        let (inst, _, fr) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let bindings = Bindings::from([("X".to_string(), Value::oid(fr))]);
        let term = Term::var("X").path("name");
        assert_eq!(
            eval_term(&term, &bindings, &dbs, &mut sk).unwrap(),
            Value::str("France")
        );
    }

    #[test]
    fn eval_unbound_variable_fails() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        assert!(eval_term(&Term::var("X"), &Bindings::new(), &dbs, &mut sk).is_err());
        assert!(try_eval_term(&Term::var("X"), &Bindings::new(), &dbs, &mut sk).is_none());
    }

    #[test]
    fn eval_record_variant_and_skolem() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let bindings = Bindings::from([("N".to_string(), Value::str("France"))]);
        let term = Term::record([("name", Term::var("N")), ("kind", Term::tag("euro"))]);
        let value = eval_term(&term, &bindings, &dbs, &mut sk).unwrap();
        assert_eq!(
            value,
            Value::record([("name", Value::str("France")), ("kind", Value::tag("euro"))])
        );
        // Skolem terms create deterministic identities.
        let sk_term = Term::skolem("CountryT", [Term::var("N")]);
        let a = eval_term(&sk_term, &bindings, &dbs, &mut sk).unwrap();
        let b = eval_term(&sk_term, &bindings, &dbs, &mut sk).unwrap();
        assert_eq!(a, b);
        match a {
            Value::Oid(oid) => assert_eq!(oid.class(), &ClassName::new("CountryT")),
            other => panic!("expected an oid, got {other:?}"),
        }
    }

    #[test]
    fn skolem_key_styles() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let bindings = Bindings::from([
            ("N".to_string(), Value::str("Paris")),
            ("C".to_string(), Value::str("France")),
        ]);
        let positional = SkolemArgs::Positional(vec![Term::var("N"), Term::var("C")]);
        assert_eq!(
            eval_skolem_key(&positional, &bindings, &dbs, &mut sk).unwrap(),
            Value::list([Value::str("Paris"), Value::str("France")])
        );
        let named = SkolemArgs::Named(vec![
            ("name".to_string(), Term::var("N")),
            ("country_name".to_string(), Term::var("C")),
        ]);
        assert_eq!(
            eval_skolem_key(&named, &bindings, &dbs, &mut sk).unwrap(),
            Value::record([("name", Value::str("Paris")), ("country_name", Value::str("France"))])
        );
        let single = SkolemArgs::Positional(vec![Term::var("N")]);
        assert_eq!(
            eval_skolem_key(&single, &bindings, &dbs, &mut sk).unwrap(),
            Value::str("Paris")
        );
    }

    #[test]
    fn match_body_of_clause_c4_style() {
        // Find all (X country, Y capital city) pairs.
        let (inst, uk, fr) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause(
            "Z = Y.name <= X in CountryE, Y in CityE, Y.country = X, Y.is_capital = true",
        )
        .unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 2);
        let mut countries: Vec<&Value> = results.iter().map(|b| &b["X"]).collect();
        countries.sort();
        countries.dedup();
        assert_eq!(countries.len(), 2);
        assert!(results.iter().any(|b| b["X"] == Value::oid(uk.clone())));
        assert!(results.iter().any(|b| b["X"] == Value::oid(fr.clone())));
    }

    #[test]
    fn match_body_joins_on_attribute() {
        // Cities paired with the country record they reference by name.
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause(
            "Z = E.name <= E in CityE, X in CountryE, X.name = E.country.name",
        )
        .unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn match_body_with_initial_bindings() {
        let (inst, uk, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause("Z = Y.name <= Y in CityE, Y.country = X").unwrap();
        let initial = Bindings::from([("X".to_string(), Value::oid(uk))]);
        let results = match_body(&clause.body, &dbs, &mut sk, initial).unwrap();
        assert_eq!(results.len(), 2); // London and Manchester
    }

    #[test]
    fn comparisons_filter() {
        let mut inst = Instance::new("nums");
        for (name, pop) in [("a", 10i64), ("b", 20), ("c", 30)] {
            inst.insert_fresh(
                &ClassName::new("CityA"),
                Value::record([("name", Value::str(name)), ("population", Value::int(pop))]),
            );
        }
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause(
            "Z = X.name <= X in CityA, Y in CityA, X.population < Y.population",
        )
        .unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 3); // (a,b), (a,c), (b,c)
        let leq = parse_clause(
            "Z = X.name <= X in CityA, Y in CityA, X.population =< Y.population",
        )
        .unwrap();
        let results = match_body(&leq.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 6);
        let neq = parse_clause("Z = X.name <= X in CityA, Y in CityA, X != Y").unwrap();
        let results = match_body(&neq.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 6);
    }

    #[test]
    fn set_membership_enumerates() {
        let mut inst = Instance::new("clusters");
        inst.insert_fresh(
            &ClassName::new("Cluster"),
            Value::record([
                ("name", Value::str("c22")),
                (
                    "markers",
                    Value::set([Value::str("D22S1"), Value::str("D22S2"), Value::str("D22S3")]),
                ),
            ]),
        );
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause("Z = M <= X in Cluster, M member X.markers").unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 3);
    }

    #[test]
    fn variant_pattern_matching() {
        let mut inst = Instance::new("people");
        inst.insert_fresh(
            &ClassName::new("Person"),
            Value::record([("name", Value::str("Ada")), ("sex", Value::tag("female"))]),
        );
        inst.insert_fresh(
            &ClassName::new("Person"),
            Value::record([("name", Value::str("Alan")), ("sex", Value::tag("male"))]),
        );
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let clause = parse_clause("Z = Y.name <= Y in Person, Y.sex = ins_male()").unwrap();
        let results = match_body(&clause.body, &dbs, &mut sk, Bindings::new()).unwrap();
        assert_eq!(results.len(), 1);
        assert_eq!(
            results[0].get("Y").and_then(|v| v.as_oid()).map(|o| o.id()),
            Some(1)
        );
    }

    #[test]
    fn unorientable_equality_reported() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        // Neither side of `A = B` can ever be evaluated.
        let clause = parse_clause("Z = 1 <= A = B").unwrap();
        assert!(match_body(&clause.body, &dbs, &mut sk, Bindings::new()).is_err());
    }

    #[test]
    fn databases_lookup_across_instances() {
        let (inst, uk, _) = euro_instance();
        let mut other = Instance::new("target");
        let t = other.insert_fresh(&ClassName::new("CountryT"), Value::record([("name", Value::str("UK"))]));
        let all = [&inst, &other];
        let dbs = Databases::new(&all[..]);
        assert!(dbs.value_of(&uk).is_some());
        assert!(dbs.value_of(&t).is_some());
        assert!(dbs.contains(&t));
        assert_eq!(dbs.len(), 2);
        assert!(!dbs.is_empty());
        assert_eq!(dbs.extent(&ClassName::new("CountryT")).len(), 1);
    }

    #[test]
    fn pattern_matching_records_and_conflicts() {
        let (inst, _, _) = euro_instance();
        let dbs = Databases::new(&[&inst][..]);
        let mut sk = SkolemFactory::new();
        let value = Value::record([("name", Value::str("Paris")), ("country_name", Value::str("France"))]);
        let pattern = Term::record([("name", Term::var("N")), ("country_name", Term::var("C"))]);
        let bound = match_pattern(&pattern, &value, &Bindings::new(), &dbs, &mut sk).unwrap();
        assert_eq!(bound["N"], Value::str("Paris"));
        assert_eq!(bound["C"], Value::str("France"));
        // A conflicting existing binding rejects the match.
        let existing = Bindings::from([("N".to_string(), Value::str("Lyon"))]);
        assert!(match_pattern(&pattern, &value, &existing, &dbs, &mut sk).is_none());
        // Matching a non-record fails.
        assert!(match_pattern(&pattern, &Value::int(1), &Bindings::new(), &dbs, &mut sk).is_none());
    }
}
