//! A cost-based join-graph planner (plus the legacy rule-based rewriter).
//!
//! The paper relies on "the Kleisli optimizer [rewriting] the CPL code to a
//! more efficient form" (Section 6). This module is that substitute. The
//! primary entry point is [`optimize_with_stats`], a **join-graph planner**:
//!
//! 1. **Decompose** the compiled plan into a pool of base scans, defining
//!    `Map` bindings, and filter/join conjuncts (wherever they sat in the
//!    original operator tree).
//! 2. **Inline** the `Map` definitions into the conjunct pool, so every
//!    conjunct ranges over base scan variables only — this is what lets an
//!    equality like `C.name = N` (with `N` defined as `D.name` by a map)
//!    become a join edge between the two scans instead of a post-product
//!    filter.
//! 3. **Estimate**: per-scan cardinalities come from the live [`Instance`]
//!    extents via a [`Statistics`] handle. Under the default
//!    [`CostModel::Histogram`], equality selectivities come from lazy
//!    per-attribute equi-depth histograms ([`wol_model::histogram`]) — exact
//!    on skewed value heads, where the uniform model is most wrong — and
//!    estimated ndv is propagated through join outputs (capped by each
//!    component's estimated rows). [`CostModel::FlatNdv`] keeps the plain
//!    `1/ndv` selectivities from the attribute indexes' distinct counts
//!    ([`wol_model::index`]) as the differential baseline. Inequalities and
//!    boolean tests use fixed heuristics in both models.
//! 4. **Greedily join** the cheapest *connected* pair of components next
//!    (the same greedy selectivity discipline `wol_engine::env::build_plan`
//!    applies to clause bodies), folding **every** cross-side equality into a
//!    (possibly composite) [`Plan::HashJoin`] key and keeping the rest as a
//!    residual filter. Cross products are refused unless the join graph is
//!    genuinely disconnected, in which case an explicit [`Plan::CrossJoin`]
//!    documents the fact.
//!
//! Single-scan conjuncts are pushed below the joins, and hash-join sides are
//! oriented so a bare scan keyed by a single attribute stays bare — the
//! executor then answers it with attribute-index probes instead of
//! materialising the side at all ([`crate::exec`]).
//!
//! The old rule-based rewriter (filter push-down + hash-join upgrade) remains
//! available as [`optimize_reference`], mirroring the engine's
//! `match_body_reference`: it is the semantics baseline the planner is
//! property-tested against, and the fallback for plan shapes the decomposer
//! does not understand.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

use wol_model::{AttrHistogram, ClassName, Instance, Value};

use crate::expr::Expr;
use crate::plan::Plan;

// ---------------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------------

/// Extent sizes when no statistics are available (compile-only runs).
const DEFAULT_EXTENT: f64 = 1_000.0;
/// Selectivity of an equality whose sides carry no ndv information.
const SEL_EQ_DEFAULT: f64 = 0.1;
/// Selectivity of `<` / `=<` comparisons.
const SEL_CMP: f64 = 0.3;
/// Selectivity of `!=`.
const SEL_NEQ: f64 = 0.9;
/// Selectivity of boolean attribute tests, negations, and anything else.
const SEL_BOOL: f64 = 0.5;
/// Floor for every estimated selectivity, so a provably-empty histogram
/// estimate (disjoint domains) still leaves plans comparable instead of
/// collapsing whole subtrees to an exact zero.
const SEL_FLOOR: f64 = 1e-9;

/// Which cardinality model the planner estimates with.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CostModel {
    /// The PR-2 baseline: flat `1/ndv` equality selectivities from the
    /// attribute indexes' distinct counts, no distribution information, no
    /// propagation of ndv through join outputs. Kept bit-for-bit as the
    /// differential baseline the histogram model is tested against.
    FlatNdv,
    /// Per-attribute equi-depth histograms ([`wol_model::histogram`]):
    /// equality selectivities come from the actual value distribution (exact
    /// for the skew head), constant filters use per-value frequencies, and
    /// estimated ndv is propagated and capped through join outputs.
    #[default]
    Histogram,
}

/// A handle over the live source instances from which the planner reads
/// extent sizes, per-attribute distinct-value counts, and (under
/// [`CostModel::Histogram`]) per-attribute equi-depth histograms. Reading an
/// attribute's statistics builds the same lazy index the executor later
/// probes, so the work is shared, not duplicated; histograms are additionally
/// memoised here so repeated selectivity questions during planning do not
/// re-clone them out of the instances.
#[derive(Clone, Default)]
pub struct Statistics<'a> {
    sources: Vec<&'a Instance>,
    cost_model: CostModel,
    /// Per-`(class, attr)` memo of the sources' histograms (one entry per
    /// source that carries the attribute at all).
    histograms: RefCell<HistogramMemo>,
    /// Backend-reported statistics for classes that are *not* resident in any
    /// attached instance yet (federated sources, consulted before ingest).
    /// An external entry takes precedence over the instances for its class.
    external: BTreeMap<ClassName, ExternalClassStats>,
}

/// Cardinality and distinct-value statistics a scan backend reports for one
/// of its classes, letting the planner cost scans (and decide join order and
/// pushdown splits) *before* the class is ingested into an [`Instance`].
/// Backends carry no histograms, so estimation over external classes uses
/// the ndv fallback paths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExternalClassStats {
    /// The class the backend serves.
    pub class: ClassName,
    /// Total rows the backend would stream without any pushed filter.
    pub rows: usize,
    /// Approximate distinct values per attribute.
    pub ndvs: BTreeMap<String, usize>,
}

/// The per-`(class, attribute)` histogram memo inside [`Statistics`].
type HistogramMemo = BTreeMap<(ClassName, String), Rc<Vec<AttrHistogram>>>;

impl std::fmt::Debug for Statistics<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Statistics")
            .field("sources", &self.sources.len())
            .finish()
    }
}

impl<'a> Statistics<'a> {
    /// Statistics over the given source instances, estimating with the
    /// default [`CostModel::Histogram`].
    pub fn from_instances(sources: &[&'a Instance]) -> Self {
        Statistics {
            sources: sources.to_vec(),
            ..Statistics::default()
        }
    }

    /// Statistics with no instances: every estimate falls back to fixed
    /// defaults. Used for compile-only runs.
    pub fn empty() -> Self {
        Statistics::default()
    }

    /// Switch the cardinality model (builder style).
    pub fn with_cost_model(mut self, cost_model: CostModel) -> Self {
        self.cost_model = cost_model;
        self
    }

    /// The cardinality model estimates use.
    pub fn cost_model(&self) -> CostModel {
        self.cost_model
    }

    /// Attach backend-reported per-class statistics (builder style). These
    /// take precedence over the attached instances for their classes, so a
    /// federated pipeline can plan against sources it has not ingested yet.
    pub fn with_external(mut self, external: Vec<ExternalClassStats>) -> Self {
        for stats in external {
            self.external.insert(stats.class.clone(), stats);
        }
        self
    }

    /// Total extent size of `class` across the sources; `None` when no
    /// instances (or external statistics for the class) are attached.
    pub fn extent_size(&self, class: &ClassName) -> Option<usize> {
        if let Some(external) = self.external.get(class) {
            return Some(external.rows);
        }
        if self.sources.is_empty() {
            return None;
        }
        Some(self.sources.iter().map(|i| i.extent_size(class)).sum())
    }

    /// Approximate number of distinct values of `class.attr` across the
    /// sources; `None` when no instances are attached (or the external
    /// statistics for the class do not cover the attribute).
    pub fn ndv(&self, class: &ClassName, attr: &str) -> Option<usize> {
        if let Some(external) = self.external.get(class) {
            return external.ndvs.get(attr).copied();
        }
        if self.sources.is_empty() {
            return None;
        }
        Some(self.sources.iter().map(|i| i.attr_ndv(class, attr)).sum())
    }

    fn extent_estimate(&self, class: &ClassName) -> f64 {
        self.extent_size(class)
            .map(|n| n as f64)
            .unwrap_or(DEFAULT_EXTENT)
    }

    /// The sources' equi-depth histograms of `class.attr` (one per source
    /// that carries the attribute), memoised. Empty when no instances are
    /// attached or no object carries the attribute.
    pub fn attr_histograms(&self, class: &ClassName, attr: &str) -> Rc<Vec<AttrHistogram>> {
        let key = (class.clone(), attr.to_string());
        if let Some(cached) = self.histograms.borrow().get(&key) {
            return Rc::clone(cached);
        }
        let built: Vec<AttrHistogram> = self
            .sources
            .iter()
            .map(|i| i.attr_histogram(class, attr))
            .filter(|h| !h.is_empty())
            .collect();
        let built = Rc::new(built);
        self.histograms.borrow_mut().insert(key, Rc::clone(&built));
        built
    }
}

/// Total entries summarised by a set of per-source histograms.
fn hist_entries(hists: &[AttrHistogram]) -> f64 {
    hists.iter().map(|h| h.entries() as f64).sum()
}

/// Estimated `Σ_v count_l(v) · count_r(v)` across all source pairs.
fn hist_join_rows(left: &[AttrHistogram], right: &[AttrHistogram]) -> f64 {
    let mut rows = 0.0;
    for l in left {
        for r in right {
            rows += l.eq_join_rows(r);
        }
    }
    rows
}

// ---------------------------------------------------------------------------
// Decomposition: plan -> scans + maps + conjunct pool.
// ---------------------------------------------------------------------------

/// The raw material of a query, recovered from a compiled plan: base scans,
/// defining `Map` bindings (in dependency order), and the pooled filter/join
/// conjuncts.
#[derive(Debug, Default)]
struct Pool {
    scans: Vec<(ClassName, String)>,
    maps: Vec<(String, Expr)>,
    conjuncts: Vec<Expr>,
}

/// Split a predicate into its conjuncts.
fn split_conjuncts(expr: Expr) -> Vec<Expr> {
    match expr {
        Expr::And(es) => es.into_iter().flat_map(split_conjuncts).collect(),
        other => vec![other],
    }
}

/// Rebuild a conjunction (or `None` for the empty conjunction).
fn conjunction(mut exprs: Vec<Expr>) -> Option<Expr> {
    match exprs.len() {
        0 => None,
        1 => Some(exprs.remove(0)),
        _ => Some(Expr::And(exprs)),
    }
}

/// Flatten a plan into the pool. Returns `false` on operators the planner
/// does not decompose (currently `Distinct`), in which case the caller falls
/// back to the rule-based rewriter.
fn decompose(plan: Plan, pool: &mut Pool) -> bool {
    match plan {
        Plan::Scan { class, var } => {
            pool.scans.push((class, var));
            true
        }
        Plan::Filter { input, predicate } => {
            if !decompose(*input, pool) {
                return false;
            }
            pool.conjuncts.extend(split_conjuncts(predicate));
            true
        }
        Plan::Map { input, bindings } => {
            if !decompose(*input, pool) {
                return false;
            }
            pool.maps.extend(bindings);
            true
        }
        Plan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            if !decompose(*left, pool) || !decompose(*right, pool) {
                return false;
            }
            if let Some(p) = predicate {
                pool.conjuncts.extend(split_conjuncts(p));
            }
            true
        }
        Plan::HashJoin { left, right, keys } => {
            if !decompose(*left, pool) || !decompose(*right, pool) {
                return false;
            }
            pool.conjuncts.extend(
                keys.into_iter()
                    .map(|(l, r)| Expr::Eq(Box::new(l), Box::new(r))),
            );
            true
        }
        Plan::CrossJoin { left, right } => decompose(*left, pool) && decompose(*right, pool),
        Plan::Distinct { .. } => false,
    }
}

// ---------------------------------------------------------------------------
// Selectivity and cardinality estimation.
// ---------------------------------------------------------------------------

/// If `expr` is a single attribute projection off a scan variable, the
/// number of distinct values it takes; if it is a bare scan variable, the
/// extent size (object identities are unique). `None` otherwise.
fn expr_ndv(
    expr: &Expr,
    var_class: &BTreeMap<String, ClassName>,
    stats: &Statistics<'_>,
) -> Option<usize> {
    match expr {
        Expr::Proj(base, attr) => match base.as_ref() {
            Expr::Var(v) => stats.ndv(var_class.get(v)?, attr),
            _ => None,
        },
        Expr::Var(v) => stats.extent_size(var_class.get(v)?),
        _ => None,
    }
}

/// Heuristic selectivity of one conjunct used as a filter or join predicate
/// under the flat `1/ndv` model (the [`CostModel::FlatNdv`] baseline, kept
/// exactly as PR 2 shipped it).
fn conjunct_selectivity_flat(
    conjunct: &Expr,
    var_class: &BTreeMap<String, ClassName>,
    stats: &Statistics<'_>,
) -> f64 {
    match conjunct {
        Expr::Eq(a, b) => {
            let ndv = match (expr_ndv(a, var_class, stats), expr_ndv(b, var_class, stats)) {
                (Some(x), Some(y)) => Some(x.max(y)),
                (Some(x), None) | (None, Some(x)) => Some(x),
                (None, None) => None,
            };
            match ndv {
                Some(n) => 1.0 / n.max(1) as f64,
                None => SEL_EQ_DEFAULT,
            }
        }
        Expr::Neq(_, _) => SEL_NEQ,
        Expr::Lt(_, _) | Expr::Leq(_, _) => SEL_CMP,
        Expr::And(es) => es
            .iter()
            .map(|e| conjunct_selectivity_flat(e, var_class, stats))
            .product(),
        _ => SEL_BOOL,
    }
}

// ---------------------------------------------------------------------------
// Histogram-fed estimation with ndv propagation.
// ---------------------------------------------------------------------------

/// Key under which per-attribute estimates are propagated: `(var, attr)` for
/// a single attribute projection off a scan variable, `(var, "")` for the
/// bare object identity.
type AttrKey = (String, String);

/// The attr key of an expression, if it has one.
fn expr_attr_key(expr: &Expr) -> Option<AttrKey> {
    match expr {
        Expr::Proj(base, attr) => match base.as_ref() {
            Expr::Var(v) => Some((v.clone(), attr.clone())),
            _ => None,
        },
        Expr::Var(v) => Some((v.clone(), String::new())),
        _ => None,
    }
}

/// What a sub-plan is estimated to look like: output rows plus the estimated
/// number of distinct values each attribute still takes *in that output* —
/// the join-output ndv propagation the flat model lacks (there, only base
/// scans carry ndv and everything above the leaves guesses).
#[derive(Clone, Debug, Default)]
struct CardEst {
    rows: f64,
    /// Estimated ndv of attr keys in this output, where it differs from the
    /// base statistics (joined-on keys, constant-filtered keys). Readers cap
    /// every lookup at `rows`, so shrinking outputs shrink every ndv.
    ndvs: BTreeMap<AttrKey, f64>,
    /// Variables this sub-plan produces (for routing conjunct sides).
    vars: BTreeSet<String>,
}

impl CardEst {
    fn scan(class: &ClassName, var: &str, stats: &Statistics<'_>) -> CardEst {
        CardEst {
            rows: stats.extent_estimate(class),
            ndvs: BTreeMap::new(),
            vars: BTreeSet::from([var.to_string()]),
        }
    }

    /// The base ndv of `key` from the statistics (histogram when built,
    /// distinct counts otherwise; extent size for bare identities).
    fn base_ndv(
        key: &AttrKey,
        var_class: &BTreeMap<String, ClassName>,
        stats: &Statistics<'_>,
    ) -> Option<f64> {
        let class = var_class.get(&key.0)?;
        if key.1.is_empty() {
            return stats.extent_size(class).map(|n| n.max(1) as f64);
        }
        stats.ndv(class, &key.1).map(|n| n.max(1) as f64)
    }

    /// The estimated ndv of `key` in this output: the propagated value if
    /// one is recorded, the base statistic otherwise, always capped at the
    /// output row count.
    fn effective_ndv(
        &self,
        key: &AttrKey,
        var_class: &BTreeMap<String, ClassName>,
        stats: &Statistics<'_>,
    ) -> Option<f64> {
        let base = CardEst::base_ndv(key, var_class, stats);
        let stored = self.ndvs.get(key).copied().or(base)?;
        Some(stored.min(self.rows.max(1.0)).max(1.0))
    }

    /// Merge another side's estimate into this one after a join producing
    /// `rows` rows.
    fn absorb_join(&mut self, other: CardEst, rows: f64) {
        self.rows = rows;
        self.vars.extend(other.vars);
        self.apply_updates(other.ndvs);
    }

    /// Fold propagated-ndv updates into this estimate, keeping the tightest
    /// (smallest) value per key. Every selectivity pass reports its updates
    /// through here, so the merge rule lives in exactly one place.
    fn apply_updates(&mut self, updates: impl IntoIterator<Item = (AttrKey, f64)>) {
        for (key, ndv) in updates {
            self.ndvs
                .entry(key)
                .and_modify(|existing| *existing = existing.min(ndv))
                .or_insert(ndv);
        }
    }
}

/// The estimator: variable→class mapping plus the statistics handle. All
/// histogram-model selectivity logic lives here; the flat model bypasses it.
struct Estimator<'a, 'b> {
    var_class: &'b BTreeMap<String, ClassName>,
    stats: &'b Statistics<'a>,
}

impl Estimator<'_, '_> {
    fn histogram_model(&self) -> bool {
        self.stats.cost_model() == CostModel::Histogram
    }

    /// The per-source histograms behind an attr-key expression (only for
    /// genuine attribute projections — bare identities are uniform by
    /// construction, which the ndv path already models exactly).
    fn histograms_of(&self, expr: &Expr) -> Option<Rc<Vec<AttrHistogram>>> {
        let (var, attr) = expr_attr_key(expr)?;
        if attr.is_empty() {
            return None;
        }
        let class = self.var_class.get(&var)?;
        let hists = self.stats.attr_histograms(class, &attr);
        if hists.is_empty() {
            None
        } else {
            Some(hists)
        }
    }

    /// Selectivity of an equality conjunct, given the (optional) estimates
    /// of the side(s) its expressions range over. Returns the selectivity
    /// and records propagated-ndv updates for the joined output into `out`.
    fn eq_selectivity(
        &self,
        a: &Expr,
        b: &Expr,
        sides: &[&CardEst],
        out: &mut Vec<(AttrKey, f64)>,
    ) -> f64 {
        let side_of = |e: &Expr| -> Option<&CardEst> {
            let vars = e.var_set();
            if vars.is_empty() {
                return None;
            }
            sides
                .iter()
                .find(|s| vars.iter().all(|v| s.vars.contains(v)))
                .copied()
        };
        let eff_ndv = |e: &Expr| -> Option<f64> {
            let key = expr_attr_key(e)?;
            match side_of(e) {
                Some(side) => side.effective_ndv(&key, self.var_class, self.stats),
                None => CardEst::base_ndv(&key, self.var_class, self.stats),
            }
        };

        // Constant filter: `attr = const` answered from the histogram's
        // per-value frequency — exact for the skew head. The attribute is
        // pinned to one value afterwards.
        for (e, other) in [(a, b), (b, a)] {
            if let (Expr::Const(value), Some(hists)) = (other, self.histograms_of(e)) {
                let entries = hist_entries(&hists);
                if entries > 0.0 {
                    let matching: f64 = hists.iter().map(|h| h.eq_count(value)).sum();
                    if let Some(key) = expr_attr_key(e) {
                        out.push((key, 1.0));
                    }
                    return (matching / entries).clamp(SEL_FLOOR, 1.0);
                }
            }
        }

        // Attribute-to-attribute equality: join the two distributions.
        if let (Some(hl), Some(hr)) = (self.histograms_of(a), self.histograms_of(b)) {
            let (nl, nr) = (hist_entries(&hl), hist_entries(&hr));
            if nl > 0.0 && nr > 0.0 {
                let rows = hist_join_rows(&hl, &hr);
                let sel = (rows / (nl * nr)).clamp(SEL_FLOOR, 1.0);
                if let (Some(ka), Some(kb), Some(na), Some(nb)) =
                    (expr_attr_key(a), expr_attr_key(b), eff_ndv(a), eff_ndv(b))
                {
                    let joint = na.min(nb);
                    out.push((ka, joint));
                    out.push((kb, joint));
                }
                return sel;
            }
        }

        // No usable histogram (identity joins, computed keys): uniform over
        // the *effective* (propagated, output-capped) distinct counts.
        let ndv = match (eff_ndv(a), eff_ndv(b)) {
            (Some(x), Some(y)) => Some(x.max(y)),
            (Some(x), None) | (None, Some(x)) => Some(x),
            (None, None) => None,
        };
        match ndv {
            Some(n) => {
                if let (Some(ka), Some(kb), Some(na), Some(nb)) =
                    (expr_attr_key(a), expr_attr_key(b), eff_ndv(a), eff_ndv(b))
                {
                    let joint = na.min(nb);
                    out.push((ka, joint));
                    out.push((kb, joint));
                }
                (1.0 / n.max(1.0)).clamp(SEL_FLOOR, 1.0)
            }
            None => SEL_EQ_DEFAULT,
        }
    }

    /// Selectivity of an arbitrary conjunct against the given side
    /// estimates, recording ndv propagation updates into `out`. Falls back
    /// to the flat model entirely when the statistics run in
    /// [`CostModel::FlatNdv`].
    fn conjunct_selectivity(
        &self,
        conjunct: &Expr,
        sides: &[&CardEst],
        out: &mut Vec<(AttrKey, f64)>,
    ) -> f64 {
        if !self.histogram_model() {
            return conjunct_selectivity_flat(conjunct, self.var_class, self.stats);
        }
        match conjunct {
            Expr::Eq(a, b) => self.eq_selectivity(a, b, sides, out),
            Expr::Neq(_, _) => SEL_NEQ,
            Expr::Lt(_, _) | Expr::Leq(_, _) => SEL_CMP,
            Expr::And(es) => es
                .iter()
                .map(|e| self.conjunct_selectivity(e, sides, out))
                .product(),
            _ => SEL_BOOL,
        }
    }
}

/// Map every scan variable in the plan to its class (for ndv lookups).
fn collect_scan_classes(plan: &Plan, out: &mut BTreeMap<String, ClassName>) {
    match plan {
        Plan::Scan { class, var } => {
            out.insert(var.clone(), class.clone());
        }
        Plan::Filter { input, .. } | Plan::Map { input, .. } | Plan::Distinct { input } => {
            collect_scan_classes(input, out)
        }
        Plan::NestedLoopJoin { left, right, .. }
        | Plan::HashJoin { left, right, .. }
        | Plan::CrossJoin { left, right } => {
            collect_scan_classes(left, out);
            collect_scan_classes(right, out);
        }
    }
}

/// One join operator's estimated output, in the executor's evaluation order
/// (post-order over the plan tree). Paired with the actual per-join row
/// counts the executor traces, so estimate-vs-actual error is visible per
/// join in reports.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinEstimate {
    /// Operator kind (`HashJoin`, `NestedLoopJoin`, `CrossJoin`).
    pub kind: &'static str,
    /// Estimated output rows of the join.
    pub rows: f64,
}

/// Bottom-up cardinality estimation of a plan, propagating both row counts
/// and per-attribute ndv through joins. When `joins` is given, every join
/// operator pushes its estimate in post-order — the exact order the executor
/// records actual join outputs in.
fn estimate_plan(
    plan: &Plan,
    est: &Estimator<'_, '_>,
    joins: Option<&mut Vec<JoinEstimate>>,
) -> CardEst {
    fn go(
        plan: &Plan,
        est: &Estimator<'_, '_>,
        joins: &mut Option<&mut Vec<JoinEstimate>>,
    ) -> CardEst {
        match plan {
            Plan::Scan { class, var } => CardEst::scan(class, var, est.stats),
            Plan::Filter { input, predicate } => {
                let mut card = go(input, est, joins);
                let mut updates = Vec::new();
                let sel = est.conjunct_selectivity(predicate, &[&card], &mut updates);
                card.rows *= sel;
                card.apply_updates(updates);
                card
            }
            Plan::Map { input, bindings } => {
                let mut card = go(input, est, joins);
                card.vars.extend(bindings.iter().map(|(v, _)| v.clone()));
                card
            }
            Plan::Distinct { input } => go(input, est, joins),
            Plan::NestedLoopJoin {
                left,
                right,
                predicate,
            } => {
                let mut l = go(left, est, joins);
                let r = go(right, est, joins);
                let mut rows = l.rows * r.rows;
                let mut updates = Vec::new();
                if let Some(p) = predicate {
                    rows *= est.conjunct_selectivity(p, &[&l, &r], &mut updates);
                }
                l.absorb_join(r, rows);
                l.apply_updates(updates);
                if let Some(sink) = joins.as_deref_mut() {
                    sink.push(JoinEstimate {
                        kind: "NestedLoopJoin",
                        rows: l.rows,
                    });
                }
                l
            }
            Plan::CrossJoin { left, right } => {
                let mut l = go(left, est, joins);
                let r = go(right, est, joins);
                let rows = l.rows * r.rows;
                l.absorb_join(r, rows);
                if let Some(sink) = joins.as_deref_mut() {
                    sink.push(JoinEstimate {
                        kind: "CrossJoin",
                        rows: l.rows,
                    });
                }
                l
            }
            Plan::HashJoin { left, right, keys } => {
                let mut l = go(left, est, joins);
                let r = go(right, est, joins);
                let mut rows = l.rows * r.rows;
                let mut updates = Vec::new();
                for (lk, rk) in keys {
                    let eq = Expr::Eq(Box::new(lk.clone()), Box::new(rk.clone()));
                    rows *= est.conjunct_selectivity(&eq, &[&l, &r], &mut updates);
                }
                l.absorb_join(r, rows);
                l.apply_updates(updates);
                if let Some(sink) = joins.as_deref_mut() {
                    sink.push(JoinEstimate {
                        kind: "HashJoin",
                        rows: l.rows,
                    });
                }
                l
            }
        }
    }
    let mut joins = joins;
    go(plan, est, &mut joins)
}

/// Estimate the number of rows a plan produces, using the same cardinality
/// model the planner plans with. Reported by the Morphase pipeline next to
/// the actual row counts.
pub fn estimate_rows(plan: &Plan, stats: &Statistics<'_>) -> f64 {
    let mut var_class = BTreeMap::new();
    collect_scan_classes(plan, &mut var_class);
    let est = Estimator {
        var_class: &var_class,
        stats,
    };
    estimate_plan(plan, &est, None).rows
}

/// Per-join output estimates of a plan, in executor post-order — pair these
/// with the executor's join trace ([`crate::expr::EvalCtx::enable_join_trace`])
/// to report estimate-vs-actual error per join.
pub fn estimate_join_outputs(plan: &Plan, stats: &Statistics<'_>) -> Vec<JoinEstimate> {
    let mut var_class = BTreeMap::new();
    collect_scan_classes(plan, &mut var_class);
    let est = Estimator {
        var_class: &var_class,
        stats,
    };
    let mut joins = Vec::new();
    estimate_plan(plan, &est, Some(&mut joins));
    joins
}

// ---------------------------------------------------------------------------
// The planner.
// ---------------------------------------------------------------------------

/// A partially built sub-plan during greedy join ordering: its plan and the
/// cardinality estimate (rows + propagated per-attribute ndv + variables).
struct Component {
    plan: Plan,
    card: CardEst,
}

impl Component {
    /// Whether the executor's attribute-index fast path could answer this
    /// side of a hash join keyed by `keys` (this side's expressions). Defers
    /// to the executor's own detection so planning and execution cannot
    /// drift apart.
    fn indexable<'k>(&self, keys: impl Iterator<Item = &'k Expr>) -> bool {
        crate::exec::indexable_side(&self.plan, keys).is_some()
    }
}

// ---------------------------------------------------------------------------
// Predicate pushdown into scan backends.
// ---------------------------------------------------------------------------

/// A comparison a scan backend can evaluate natively on one attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushCmp {
    /// `attr = const`.
    Eq,
    /// `attr != const`.
    Neq,
    /// `attr < const`.
    Lt,
    /// `attr =< const`.
    Leq,
    /// `attr > const` (normalised from `const < attr`).
    Gt,
    /// `attr >= const` (normalised from `const =< attr`).
    Geq,
}

/// One conjunct the planner diverted from a scan's filter into the scan's
/// backend: `var.attr cmp value`. The conjunct is still *costed* exactly
/// like the filter it replaces (via the same selectivity estimate over the
/// backend statistics), so join ordering is unchanged between pushdown-on
/// and pushdown-off plans — only where the predicate runs differs.
#[derive(Clone, Debug, PartialEq)]
pub struct PushedPredicate {
    /// The scan variable the conjunct ranged over.
    pub var: String,
    /// The scanned class the backend serves.
    pub class: ClassName,
    /// The attribute compared.
    pub attr: String,
    /// The comparison, normalised so the attribute is on the left.
    pub cmp: PushCmp,
    /// The constant compared against.
    pub value: Value,
}

/// Which `(class, attribute)` pairs scan backends can filter natively. The
/// planner diverts only single-scan `attr cmp const` conjuncts listed here;
/// everything else stays an executor [`Plan::Filter`].
#[derive(Clone, Debug, Default)]
pub struct PushdownCatalog {
    classes: BTreeMap<ClassName, BTreeSet<String>>,
}

impl PushdownCatalog {
    /// Allow pushing comparisons on `class.attr`.
    pub fn allow(&mut self, class: &ClassName, attr: &str) {
        self.classes
            .entry(class.clone())
            .or_default()
            .insert(attr.to_string());
    }

    /// True if comparisons on `class.attr` may be pushed.
    pub fn pushable(&self, class: &ClassName, attr: &str) -> bool {
        self.classes
            .get(class)
            .is_some_and(|attrs| attrs.contains(attr))
    }

    /// True if the catalog allows nothing.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }
}

/// Recognise `var.attr cmp const` (either orientation) as a predicate the
/// backend serving `class` can evaluate, per the catalog.
fn as_pushable(
    conjunct: &Expr,
    var: &str,
    class: &ClassName,
    catalog: &PushdownCatalog,
) -> Option<PushedPredicate> {
    fn attr_of<'e>(e: &'e Expr, var: &str) -> Option<&'e str> {
        match e {
            Expr::Proj(base, attr) => match base.as_ref() {
                Expr::Var(v) if v == var => Some(attr.as_str()),
                _ => None,
            },
            _ => None,
        }
    }
    let (a, b, fwd, rev) = match conjunct {
        Expr::Eq(a, b) => (a, b, PushCmp::Eq, PushCmp::Eq),
        Expr::Neq(a, b) => (a, b, PushCmp::Neq, PushCmp::Neq),
        Expr::Lt(a, b) => (a, b, PushCmp::Lt, PushCmp::Gt),
        Expr::Leq(a, b) => (a, b, PushCmp::Leq, PushCmp::Geq),
        _ => return None,
    };
    let (attr, cmp, value) = match (a.as_ref(), b.as_ref()) {
        (e, Expr::Const(value)) => (attr_of(e, var)?, fwd, value.clone()),
        (Expr::Const(value), e) => (attr_of(e, var)?, rev, value.clone()),
        _ => return None,
    };
    if !catalog.pushable(class, attr) {
        return None;
    }
    Some(PushedPredicate {
        var: var.to_string(),
        class: class.clone(),
        attr: attr.to_string(),
        cmp,
        value,
    })
}

/// Optimise a plan with the join-graph planner, falling back to
/// [`optimize_reference`] for shapes the decomposer does not understand.
/// Without instance statistics every estimate uses fixed defaults; prefer
/// [`optimize_with_stats`] whenever the source instances are at hand.
pub fn optimize(plan: Plan) -> Plan {
    optimize_with_stats(plan, &Statistics::empty())
}

/// Optimise a plan with the join-graph planner, fed by extent and
/// distinct-value statistics over the live source instances.
pub fn optimize_with_stats(plan: Plan, stats: &Statistics<'_>) -> Plan {
    let mut pushed = Vec::new();
    optimize_inner(plan, stats, None, &mut pushed)
}

/// Like [`optimize_with_stats`], but additionally *splits* each scan's
/// single-variable conjunct pool into backend-pushable predicates (returned,
/// for the caller to hand its scan providers) and residual predicates (the
/// rest). The produced plan is **identical** to the [`optimize_with_stats`]
/// plan: a pushed conjunct stays in the plan as a residual re-check that
/// admits every row the provider already filtered. Keeping the shape
/// identical is what makes a pushdown-on run bit-identical to a
/// pushdown-off run — the executor takes the same join paths, so row order
/// and Skolem numbering cannot drift — while the actual saving happens
/// upstream, in the rows never streamed, ingested, or indexed.
pub fn optimize_with_pushdown(
    plan: Plan,
    stats: &Statistics<'_>,
    catalog: &PushdownCatalog,
) -> (Plan, Vec<PushedPredicate>) {
    let mut pushed = Vec::new();
    let plan = optimize_inner(plan, stats, Some(catalog), &mut pushed);
    (plan, pushed)
}

fn optimize_inner(
    plan: Plan,
    stats: &Statistics<'_>,
    catalog: Option<&PushdownCatalog>,
    pushed: &mut Vec<PushedPredicate>,
) -> Plan {
    // Distinct is a planning barrier: plan what is underneath it.
    if let Plan::Distinct { input } = plan {
        return Plan::Distinct {
            input: Box::new(optimize_inner(*input, stats, catalog, pushed)),
        };
    }
    let mut pool = Pool::default();
    if !decompose(plan.clone(), &mut pool) || pool.scans.is_empty() {
        return optimize_reference(plan);
    }
    // Inlining map definitions into the conjunct pool is only sound when
    // every binding introduces a *fresh* variable: a binding that shadows a
    // scan variable (or an earlier binding) changes what conjuncts below it
    // referred to. The translator never emits such plans, but the planner is
    // a public API — rebinding shapes take the rule-based path instead.
    let mut seen: BTreeSet<&String> = pool.scans.iter().map(|(_, var)| var).collect();
    if !pool.maps.iter().all(|(var, _)| seen.insert(var)) {
        return optimize_reference(plan);
    }
    plan_pool(pool, stats, catalog, pushed)
}

/// Build the cheapest plan the greedy strategy finds for a decomposed pool.
fn plan_pool(
    pool: Pool,
    stats: &Statistics<'_>,
    catalog: Option<&PushdownCatalog>,
    pushed: &mut Vec<PushedPredicate>,
) -> Plan {
    // Resolve map definitions transitively, so each ranges over scan
    // variables only, then inline them into the conjunct pool.
    let mut defs: BTreeMap<String, Expr> = BTreeMap::new();
    for (var, expr) in &pool.maps {
        let resolved = expr.substitute(&defs);
        defs.insert(var.clone(), resolved);
    }
    let conjuncts: Vec<Expr> = pool.conjuncts.iter().map(|c| c.substitute(&defs)).collect();
    let mut used = vec![false; conjuncts.len()];

    let var_class: BTreeMap<String, ClassName> = pool
        .scans
        .iter()
        .map(|(class, var)| (var.clone(), class.clone()))
        .collect();
    let estimator = Estimator {
        var_class: &var_class,
        stats,
    };

    // One component per scan, with its single-variable conjuncts pushed down.
    let mut components: Vec<Component> = Vec::new();
    for (class, var) in &pool.scans {
        let mut card = CardEst::scan(class, var, stats);
        let mut plan = Plan::scan(class.clone(), var.clone());
        for (i, conjunct) in conjuncts.iter().enumerate() {
            if used[i] {
                continue;
            }
            let vars = conjunct.var_set();
            if !vars.is_empty() && vars.iter().all(|v| v == var) {
                let mut updates = Vec::new();
                card.rows *= estimator.conjunct_selectivity(conjunct, &[&card], &mut updates);
                card.apply_updates(updates);
                used[i] = true;
                // Report backend-evaluable conjuncts for the scan provider,
                // but KEEP each one in the plan as a residual re-check: it
                // admits every row the provider already filtered (costing
                // next to nothing over the trimmed extent), and an identical
                // plan shape means the executor takes identical join paths —
                // so row order, and with it Skolem numbering, cannot drift
                // between pushdown modes.
                if let Some(catalog) = catalog {
                    if let Some(predicate) = as_pushable(conjunct, var, class, catalog) {
                        pushed.push(predicate);
                    }
                }
                plan = plan.filter(conjunct.clone());
            }
        }
        components.push(Component { plan, card });
    }

    // Greedy join loop: always join the cheapest connected pair next; fall
    // back to an explicit cross join of the two smallest components only
    // when nothing connects what remains.
    while components.len() > 1 {
        /// The best pair found so far: estimated output rows, the two
        /// component positions, the applicable conjunct indexes, and the
        /// ndv-propagation updates the winning estimate produced.
        type BestPair = (f64, usize, usize, Vec<usize>, Vec<(AttrKey, f64)>);
        let mut best: Option<BestPair> = None;
        for i in 0..components.len() {
            for j in (i + 1)..components.len() {
                let applicable = applicable_conjuncts(
                    &conjuncts,
                    &used,
                    &components[i].card.vars,
                    &components[j].card.vars,
                );
                if applicable.is_empty() {
                    continue;
                }
                let mut est = components[i].card.rows * components[j].card.rows;
                let mut updates = Vec::new();
                for &k in &applicable {
                    est *= estimator.conjunct_selectivity(
                        &conjuncts[k],
                        &[&components[i].card, &components[j].card],
                        &mut updates,
                    );
                }
                if best.as_ref().is_none_or(|(cost, ..)| est < *cost) {
                    best = Some((est, i, j, applicable, updates));
                }
            }
        }
        match best {
            Some((est, i, j, applicable, updates)) => {
                let right = components.remove(j);
                let left = components.remove(i);
                let picked: Vec<Expr> = applicable
                    .iter()
                    .map(|&k| {
                        used[k] = true;
                        conjuncts[k].clone()
                    })
                    .collect();
                components.insert(i, join_components(left, right, picked, est, updates));
            }
            None => {
                // Genuinely disconnected: cross-join the two smallest.
                let (i, j) = two_smallest(&components);
                let right = components.remove(j);
                let left = components.remove(i);
                let est = left.card.rows * right.card.rows;
                let mut card = left.card;
                card.absorb_join(right.card, est);
                components.insert(
                    i,
                    Component {
                        plan: left.plan.cross(right.plan),
                        card,
                    },
                );
            }
        }
    }
    let component = components.pop().expect("at least one scan");
    let mut plan = component.plan;

    // Anything left in the pool (variable-free predicates, or conjuncts over
    // variables no scan produces) runs as a final filter.
    let leftovers: Vec<Expr> = conjuncts
        .into_iter()
        .zip(used)
        .filter(|(_, u)| !*u)
        .map(|(c, _)| c)
        .collect();
    if let Some(residual) = conjunction(leftovers) {
        plan = plan.filter(residual);
    }

    // Re-apply the defining maps (original, unsubstituted form — the
    // executor evaluates a Map's bindings in order, so intra-map
    // dependencies are preserved).
    if !pool.maps.is_empty() {
        plan = plan.map(pool.maps);
    }
    plan
}

/// Indexes of the unused conjuncts that connect two components: fully
/// evaluable over the union of their variables while touching both sides.
fn applicable_conjuncts(
    conjuncts: &[Expr],
    used: &[bool],
    left: &BTreeSet<String>,
    right: &BTreeSet<String>,
) -> Vec<usize> {
    conjuncts
        .iter()
        .enumerate()
        .filter(|(i, _)| !used[*i])
        .filter(|(_, c)| {
            let vars = c.var_set();
            !vars.is_empty()
                && vars.iter().all(|v| left.contains(v) || right.contains(v))
                && vars.iter().any(|v| left.contains(v))
                && vars.iter().any(|v| right.contains(v))
        })
        .map(|(i, _)| i)
        .collect()
}

/// Positions of the two cheapest components.
fn two_smallest(components: &[Component]) -> (usize, usize) {
    let mut order: Vec<usize> = (0..components.len()).collect();
    order.sort_by(|&a, &b| {
        components[a]
            .card
            .rows
            .partial_cmp(&components[b].card.rows)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let (a, b) = (order[0], order[1]);
    (a.min(b), a.max(b))
}

/// Join two components with the given conjuncts: every cross-side equality
/// becomes part of the composite hash key, the rest stays as a residual
/// filter; sides are oriented so the executor's index fast path can fire.
/// `updates` carries the joined output's propagated ndv entries, computed by
/// the same selectivity pass that produced `est`.
fn join_components(
    left: Component,
    right: Component,
    conjs: Vec<Expr>,
    est: f64,
    updates: Vec<(AttrKey, f64)>,
) -> Component {
    let mut keys: Vec<(Expr, Expr)> = Vec::new();
    let mut residual: Vec<Expr> = Vec::new();
    for conjunct in conjs {
        if let Expr::Eq(a, b) = &conjunct {
            let a_vars = a.var_set();
            let b_vars = b.var_set();
            if !a_vars.is_empty() && !b_vars.is_empty() {
                let a_left = a_vars.iter().all(|v| left.card.vars.contains(v));
                let a_right = a_vars.iter().all(|v| right.card.vars.contains(v));
                let b_left = b_vars.iter().all(|v| left.card.vars.contains(v));
                let b_right = b_vars.iter().all(|v| right.card.vars.contains(v));
                if a_left && b_right {
                    keys.push(((**a).clone(), (**b).clone()));
                    continue;
                }
                if a_right && b_left {
                    keys.push(((**b).clone(), (**a).clone()));
                    continue;
                }
            }
        }
        residual.push(conjunct);
    }
    let left_rows = left.card.rows;
    let right_rows = right.card.rows;
    let left_indexable = left.indexable(keys.iter().map(|(l, _)| l));
    let right_indexable = right.indexable(keys.iter().map(|(_, r)| r));
    let mut card = left.card;
    card.absorb_join(right.card, est);
    card.apply_updates(updates);
    let mut plan = if keys.is_empty() {
        // Connected only by non-equality conjuncts: a predicated nested loop.
        let (outer, inner) = if left_rows <= right_rows {
            (left.plan, right.plan)
        } else {
            (right.plan, left.plan)
        };
        let plan = outer.join(inner, conjunction(std::mem::take(&mut residual)));
        return Component { plan, card };
    } else {
        // Orient the hash join: a bare indexable scan goes where the executor
        // probes it through the attribute index (preferring to probe the
        // larger side — the driving side is materialised in full); otherwise
        // build the hash table over the smaller side.
        let swap = match (left_indexable, right_indexable) {
            (true, false) => false,
            (false, true) => true,
            (true, true) => left_rows < right_rows,
            (false, false) => left_rows > right_rows,
        };
        let (build, probe) = if swap {
            keys = keys.into_iter().map(|(l, r)| (r, l)).collect();
            (right.plan, left.plan)
        } else {
            (left.plan, right.plan)
        };
        build.hash_join_multi(probe, keys)
    };
    if let Some(residual_pred) = conjunction(residual) {
        plan = plan.filter(residual_pred);
    }
    Component { plan, card }
}

// ---------------------------------------------------------------------------
// The legacy rule-based rewriter.
// ---------------------------------------------------------------------------

/// Iteration cap for the rule-based rewriter. Each pass either reaches a
/// fixpoint or strictly sinks filters / upgrades joins, so well-formed plans
/// converge in a handful of passes; the cap is a backstop against rewrite
/// cycles, and hitting it is a bug that is loudly reported.
const MAX_REWRITE_PASSES: usize = 64;

/// Optimise a plan with the legacy rule-based rewriter: filter push-down and
/// hash-join upgrade applied to a fixpoint. Kept (mirroring the engine's
/// `match_body_reference`) as the baseline the planner is property-tested
/// against, and used as the fallback for non-decomposable plan shapes.
pub fn optimize_reference(plan: Plan) -> Plan {
    let mut current = plan;
    for _ in 0..MAX_REWRITE_PASSES {
        let next = rewrite(current.clone());
        if next == current {
            return next;
        }
        current = next;
    }
    debug_assert!(
        false,
        "rule-based rewriter failed to converge within {MAX_REWRITE_PASSES} passes on:\n{}",
        current.render()
    );
    eprintln!(
        "warning: cpl::optimize_reference did not converge within {MAX_REWRITE_PASSES} passes; \
         returning the last plan"
    );
    current
}

fn rewrite(plan: Plan) -> Plan {
    match plan {
        Plan::Filter { input, predicate } => {
            let input = rewrite(*input);
            push_filter(input, predicate)
        }
        Plan::Map { input, bindings } => Plan::Map {
            input: Box::new(rewrite(*input)),
            bindings,
        },
        Plan::Distinct { input } => Plan::Distinct {
            input: Box::new(rewrite(*input)),
        },
        Plan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left = rewrite(*left);
            let right = rewrite(*right);
            match predicate {
                Some(p) => upgrade_join(left, right, p),
                None => Plan::NestedLoopJoin {
                    left: Box::new(left),
                    right: Box::new(right),
                    predicate: None,
                },
            }
        }
        Plan::CrossJoin { left, right } => Plan::CrossJoin {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
        },
        Plan::HashJoin { left, right, keys } => Plan::HashJoin {
            left: Box::new(rewrite(*left)),
            right: Box::new(rewrite(*right)),
            keys,
        },
        scan @ Plan::Scan { .. } => scan,
    }
}

/// Push a filter as close to the scans as possible.
fn push_filter(input: Plan, predicate: Expr) -> Plan {
    let needed = predicate.var_set();
    match input {
        Plan::NestedLoopJoin {
            left,
            right,
            predicate: join_pred,
        } => {
            let left_vars = left.produced_vars();
            let right_vars = right.produced_vars();
            if needed.iter().all(|v| left_vars.contains(v)) {
                return Plan::NestedLoopJoin {
                    left: Box::new(push_filter(*left, predicate)),
                    right,
                    predicate: join_pred,
                };
            }
            if needed.iter().all(|v| right_vars.contains(v)) {
                return Plan::NestedLoopJoin {
                    left,
                    right: Box::new(push_filter(*right, predicate)),
                    predicate: join_pred,
                };
            }
            // The predicate spans both sides: fold it into the join predicate
            // and try to turn the result into a hash join.
            let mut all = split_conjuncts(predicate);
            if let Some(existing) = join_pred {
                all.extend(split_conjuncts(existing));
            }
            let combined = conjunction(all).expect("at least one conjunct");
            upgrade_join(*left, *right, combined)
        }
        Plan::HashJoin { left, right, keys } => {
            let left_vars = left.produced_vars();
            let right_vars = right.produced_vars();
            if needed.iter().all(|v| left_vars.contains(v)) {
                return Plan::HashJoin {
                    left: Box::new(push_filter(*left, predicate)),
                    right,
                    keys,
                };
            }
            if needed.iter().all(|v| right_vars.contains(v)) {
                return Plan::HashJoin {
                    left,
                    right: Box::new(push_filter(*right, predicate)),
                    keys,
                };
            }
            Plan::Filter {
                input: Box::new(Plan::HashJoin { left, right, keys }),
                predicate,
            }
        }
        other => Plan::Filter {
            input: Box::new(other),
            predicate,
        },
    }
}

/// Turn a nested-loop join into a hash join when equality conjuncts split
/// cleanly across the two sides, folding **all** of them into the composite
/// key.
fn upgrade_join(left: Plan, right: Plan, predicate: Expr) -> Plan {
    let left_vars = left.produced_vars();
    let right_vars = right.produced_vars();
    let mut keys: Vec<(Expr, Expr)> = Vec::new();
    let mut residual = Vec::new();
    for conjunct in split_conjuncts(predicate) {
        if let Expr::Eq(a, b) = &conjunct {
            let a_vars = a.var_set();
            let b_vars = b.var_set();
            if !a_vars.is_empty() && !b_vars.is_empty() {
                let a_left = a_vars.iter().all(|v| left_vars.contains(v));
                let a_right = a_vars.iter().all(|v| right_vars.contains(v));
                let b_left = b_vars.iter().all(|v| left_vars.contains(v));
                let b_right = b_vars.iter().all(|v| right_vars.contains(v));
                if a_left && b_right {
                    keys.push(((**a).clone(), (**b).clone()));
                    continue;
                }
                if a_right && b_left {
                    keys.push(((**b).clone(), (**a).clone()));
                    continue;
                }
            }
        }
        residual.push(conjunct);
    }
    if keys.is_empty() {
        return Plan::NestedLoopJoin {
            left: Box::new(left),
            right: Box::new(right),
            predicate: conjunction(residual),
        };
    }
    let join = Plan::HashJoin {
        left: Box::new(left),
        right: Box::new(right),
        keys,
    };
    match conjunction(residual) {
        Some(residual_pred) => Plan::Filter {
            input: Box::new(join),
            predicate: residual_pred,
        },
        None => join,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_plan, ExecStats};
    use crate::expr::EvalCtx;
    use wol_model::{ClassName, Instance, Value};

    fn instance() -> Instance {
        let mut inst = Instance::new("euro");
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
            ]),
        );
        let de = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("Germany")),
                ("language", Value::str("German")),
            ]),
        );
        for (name, capital, c) in [
            ("Paris", true, &fr),
            ("Lyon", false, &fr),
            ("Berlin", true, &de),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(c.clone())),
                ]),
            );
        }
        inst
    }

    fn rows_of(plan: &Plan, inst: &Instance) -> Vec<crate::Row> {
        let refs = [inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut rows = run_plan(plan, &mut ctx, &mut stats).unwrap();
        rows.sort();
        rows
    }

    #[test]
    fn nested_loop_with_equality_becomes_hash_join() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        for optimised in [optimize(plan.clone()), optimize_reference(plan)] {
            assert!(matches!(optimised, Plan::HashJoin { .. }));
        }
    }

    #[test]
    fn residual_conjuncts_preserved_as_filter() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(Expr::and(vec![
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
                Expr::var("E").proj("is_capital"),
            ])),
        );
        // Both paths push the one-sided capital test below the join.
        for optimised in [optimize(plan.clone()), optimize_reference(plan)] {
            match &optimised {
                Plan::HashJoin { left, right, .. } => {
                    assert!(
                        matches!(**left, Plan::Filter { .. })
                            || matches!(**right, Plan::Filter { .. })
                    );
                }
                other => panic!("expected a hash join, got {other:?}"),
            }
        }
    }

    #[test]
    fn filter_pushed_below_join() {
        let plan = Plan::scan("CityE", "E")
            .join(Plan::scan("CountryE", "C"), None)
            .filter(Expr::var("E").proj("is_capital"));
        let optimised = optimize_reference(plan.clone());
        match optimised {
            Plan::NestedLoopJoin { left, .. } => assert!(matches!(*left, Plan::Filter { .. })),
            other => panic!("expected join at the top, got {other:?}"),
        }
        // The planner has no equality to join on: the graph is disconnected,
        // so it owns up to the product with an explicit CrossJoin (and still
        // pushes the filter down).
        let planned = optimize(plan);
        match planned {
            Plan::CrossJoin { left, right } => {
                assert!(
                    matches!(*left, Plan::Filter { .. }) || matches!(*right, Plan::Filter { .. })
                );
            }
            other => panic!("expected a cross join, got {other:?}"),
        }
    }

    #[test]
    fn optimised_plans_produce_the_same_rows() {
        let inst = instance();
        let original = Plan::scan("CityE", "E")
            .join(
                Plan::scan("CountryE", "C"),
                Some(Expr::and(vec![
                    Expr::var("E")
                        .path("country.name")
                        .eq(Expr::var("C").proj("name")),
                    Expr::var("E").proj("is_capital"),
                ])),
            )
            .map(vec![("N".to_string(), Expr::var("C").proj("language"))]);
        let expected = rows_of(&original, &inst);
        assert_eq!(expected.len(), 2);
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        for optimised in [
            optimize(original.clone()),
            optimize_reference(original.clone()),
            optimize_with_stats(original.clone(), &stats),
        ] {
            assert_ne!(original, optimised);
            assert_eq!(rows_of(&optimised, &inst), expected);
        }
    }

    #[test]
    fn map_definitions_are_inlined_into_join_equalities() {
        // The E6 shape: the join equality goes through a Map-defined variable,
        // which the rule-based rewriter cannot see past (it leaves a raw
        // product) but the planner inlines into a hash-join key.
        let inst = instance();
        let plan = Plan::scan("CityE", "E")
            .join(Plan::scan("CountryE", "C"), None)
            .map(vec![("N".to_string(), Expr::var("C").proj("name"))])
            .filter(Expr::var("E").path("country.name").eq(Expr::var("N")));
        let reference = optimize_reference(plan.clone());
        assert!(!reference.render().contains("HashJoin"));
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        let planned = optimize_with_stats(plan.clone(), &stats);
        assert!(planned.render().contains("HashJoin"));
        assert!(!planned.render().contains("CrossJoin"));
        assert_eq!(rows_of(&planned, &inst), rows_of(&plan, &inst));
    }

    #[test]
    fn multi_key_equalities_fold_into_one_composite_hash_join() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(Expr::and(vec![
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
                Expr::var("E")
                    .path("country.language")
                    .eq(Expr::var("C").proj("language")),
            ])),
        );
        let inst = instance();
        let expected = rows_of(&plan, &inst);
        assert_eq!(expected.len(), 3);
        for optimised in [optimize(plan.clone()), optimize_reference(plan.clone())] {
            match &optimised {
                Plan::HashJoin { keys, .. } => assert_eq!(keys.len(), 2),
                other => panic!("expected a composite-key hash join, got {other:?}"),
            }
            assert_eq!(rows_of(&optimised, &inst), expected);
        }
    }

    #[test]
    fn planner_orders_joins_by_estimated_cost() {
        // Three scans in a chain, deliberately listed in the worst order:
        // the planner must not join CityE with CityE first (no conjunct
        // connects them), and must never emit a cross product.
        let inst = instance();
        let plan = Plan::scan("CityE", "E")
            .join(Plan::scan("CityE", "F"), None)
            .join(Plan::scan("CountryE", "C"), None)
            .filter(Expr::and(vec![
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
                Expr::var("F").proj("country").eq(Expr::var("C")),
                Expr::var("F").proj("is_capital"),
            ]));
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        let planned = optimize_with_stats(plan.clone(), &stats);
        let rendered = planned.render();
        assert!(!rendered.contains("CrossJoin"));
        assert!(!rendered.contains("NestedLoopJoin"));
        assert_eq!(rows_of(&planned, &inst), rows_of(&plan, &inst));
    }

    #[test]
    fn disconnected_graphs_cross_join_the_smallest_components() {
        let inst = instance();
        let plan = Plan::scan("CityE", "E")
            .join(Plan::scan("CountryE", "C"), None)
            .filter(Expr::var("E").proj("is_capital"))
            .filter(
                Expr::var("C")
                    .proj("language")
                    .eq(Expr::Const(Value::str("French"))),
            );
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        let planned = optimize_with_stats(plan.clone(), &stats);
        assert!(planned.render().contains("CrossJoin"));
        assert_eq!(rows_of(&planned, &inst), rows_of(&plan, &inst));
    }

    #[test]
    fn join_without_usable_equality_stays_nested_loop() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(Expr::Lt(
                Box::new(Expr::var("E").proj("name")),
                Box::new(Expr::var("C").proj("name")),
            )),
        );
        for optimised in [optimize(plan.clone()), optimize_reference(plan)] {
            match optimised {
                Plan::NestedLoopJoin { predicate, .. } => assert!(predicate.is_some()),
                other => panic!("expected nested loop join, got {other:?}"),
            }
        }
    }

    #[test]
    fn optimize_is_idempotent() {
        let plan = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        let once = optimize(plan.clone());
        let twice = optimize(once.clone());
        assert_eq!(once, twice);
        let once = optimize_reference(plan);
        let twice = optimize_reference(once.clone());
        assert_eq!(once, twice);
    }

    #[test]
    fn rebinding_maps_are_not_inlined() {
        // A Map that rebinds a scan variable would make substitution unsound
        // (the filter below the Map refers to the *pre*-Map value); such
        // shapes must keep their raw semantics via the rule-based path.
        let inst = instance();
        let plan = Plan::scan("CityE", "E")
            .filter(Expr::var("E").proj("is_capital"))
            .map(vec![("E".to_string(), Expr::var("E").proj("country"))]);
        let expected = rows_of(&plan, &inst);
        assert_eq!(expected.len(), 2);
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        for optimised in [optimize(plan.clone()), optimize_with_stats(plan, &stats)] {
            assert_eq!(rows_of(&optimised, &inst), expected);
        }
    }

    #[test]
    fn distinct_is_planned_through() {
        let inst = instance();
        let plan = Plan::scan("CityE", "E")
            .join(
                Plan::scan("CountryE", "C"),
                Some(
                    Expr::var("E")
                        .path("country.name")
                        .eq(Expr::var("C").proj("name")),
                ),
            )
            .distinct();
        let planned = optimize(plan.clone());
        match &planned {
            Plan::Distinct { input } => assert!(matches!(**input, Plan::HashJoin { .. })),
            other => panic!("expected Distinct on top, got {other:?}"),
        }
        assert_eq!(rows_of(&planned, &inst), rows_of(&plan, &inst));
    }

    #[test]
    fn statistics_report_extents_and_ndv() {
        let inst = instance();
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        assert_eq!(stats.extent_size(&ClassName::new("CityE")), Some(3));
        assert_eq!(stats.ndv(&ClassName::new("CityE"), "is_capital"), Some(2));
        assert_eq!(stats.ndv(&ClassName::new("CountryE"), "name"), Some(2));
        let empty = Statistics::empty();
        assert_eq!(empty.extent_size(&ClassName::new("CityE")), None);
        assert_eq!(empty.ndv(&ClassName::new("CityE"), "name"), None);
    }

    /// A small skewed instance: class `A` and class `B` both carry a `k`
    /// attribute where one hot value dominates.
    fn skewed_instance() -> Instance {
        let mut inst = Instance::new("skew");
        for i in 0..60 {
            let k = if i < 40 {
                "hot".to_string()
            } else {
                format!("a{i}")
            };
            inst.insert_fresh(
                &ClassName::new("A"),
                Value::record([("name", Value::str(format!("A{i}"))), ("k", Value::str(k))]),
            );
        }
        for i in 0..30 {
            let k = if i < 20 {
                "hot".to_string()
            } else {
                format!("a{}", i + 40)
            };
            inst.insert_fresh(
                &ClassName::new("B"),
                Value::record([("name", Value::str(format!("B{i}"))), ("k", Value::str(k))]),
            );
        }
        inst
    }

    #[test]
    fn cost_model_is_a_statistics_builder_knob() {
        let inst = instance();
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        assert_eq!(stats.cost_model(), CostModel::Histogram);
        let flat = stats.clone().with_cost_model(CostModel::FlatNdv);
        assert_eq!(flat.cost_model(), CostModel::FlatNdv);
        // Histograms are memoised per (class, attr): the second request
        // returns the same shared vector.
        let a = stats.attr_histograms(&ClassName::new("CityE"), "name");
        let b = stats.attr_histograms(&ClassName::new("CityE"), "name");
        assert!(std::rc::Rc::ptr_eq(&a, &b));
        assert_eq!(a.len(), 1);
        // Empty statistics expose no histograms.
        assert!(Statistics::empty()
            .attr_histograms(&ClassName::new("CityE"), "name")
            .is_empty());
    }

    #[test]
    fn histogram_model_sees_skew_the_flat_model_misses() {
        let inst = skewed_instance();
        let refs = [&inst];
        let hist = Statistics::from_instances(&refs);
        let flat = Statistics::from_instances(&refs).with_cost_model(CostModel::FlatNdv);
        let join = Plan::scan("A", "X").hash_join(
            Plan::scan("B", "Y"),
            Expr::var("X").proj("k"),
            Expr::var("Y").proj("k"),
        );
        // True join size: 40*20 (hot) + ~0 tail = 800. The flat model
        // guesses |A|*|B|/ndv = 60*30/21 ~ 86.
        let hist_est = estimate_rows(&join, &hist);
        let flat_est = estimate_rows(&join, &flat);
        assert!(
            (hist_est - 800.0).abs() < 80.0,
            "histogram estimate {hist_est} strays from ~800"
        );
        assert!(
            flat_est < 150.0,
            "flat estimate {flat_est} unexpectedly saw the skew"
        );

        // Constant filters on the hot value are exact under the histogram
        // model, and flat-uniform under the flat model.
        let filter = Plan::scan("A", "X")
            .filter(Expr::var("X").proj("k").eq(Expr::Const(Value::str("hot"))));
        let hist_filter = estimate_rows(&filter, &hist);
        let flat_filter = estimate_rows(&filter, &flat);
        assert_eq!(hist_filter, 40.0);
        assert!(flat_filter < 5.0);
        // A value outside the domain estimates to (almost) nothing.
        let miss = Plan::scan("A", "X").filter(
            Expr::var("X")
                .proj("k")
                .eq(Expr::Const(Value::str("nonexistent"))),
        );
        assert!(estimate_rows(&miss, &hist) < 1.0);
    }

    #[test]
    fn estimate_join_outputs_walks_joins_in_executor_post_order() {
        let inst = instance();
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        let plan = Plan::scan("CityE", "E")
            .hash_join(
                Plan::scan("CountryE", "C"),
                Expr::var("E").path("country.name"),
                Expr::var("C").proj("name"),
            )
            .cross(Plan::scan("CountryE", "D"));
        let estimates = estimate_join_outputs(&plan, &stats);
        assert_eq!(estimates.len(), 2);
        assert_eq!(estimates[0].kind, "HashJoin");
        assert_eq!(estimates[1].kind, "CrossJoin");
        // The cross join's estimate is the hash join's times the extent.
        assert!((estimates[1].rows - estimates[0].rows * 2.0).abs() < 1e-9);
        // The executor's trace has the same shape in the same order.
        let mut ctx = crate::expr::EvalCtx::new(&refs);
        ctx.enable_join_trace();
        let mut exec_stats = ExecStats::default();
        run_plan(&plan, &mut ctx, &mut exec_stats).unwrap();
        let trace = ctx.take_join_trace();
        assert_eq!(trace.len(), estimates.len());
        assert!(trace
            .iter()
            .zip(&estimates)
            .all(|(actual, est)| actual.kind == est.kind));
    }

    #[test]
    fn estimate_rows_tracks_the_cardinality_model() {
        let inst = instance();
        let refs = [&inst];
        let stats = Statistics::from_instances(&refs);
        let scan = Plan::scan("CityE", "E");
        assert_eq!(estimate_rows(&scan, &stats), 3.0);
        let join = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        // 3 x 2 / ndv(name)=2 = 3.
        assert_eq!(estimate_rows(&join, &stats), 3.0);
        let cross = Plan::scan("CityE", "E").cross(Plan::scan("CountryE", "C"));
        assert_eq!(estimate_rows(&cross, &stats), 6.0);
    }
}
