//! Experiment E2 — normalisation without constraints is exponential.
//!
//! Paper claim (Section 6): "If constraints were omitted the time taken to
//! normalize a program, and the size of the resulting normal-form program,
//! could be exponential in the size of the original program." The workload is
//! W(n, k) with the key constraint either present (normal form has k clauses)
//! or omitted (the normaliser must consider every combination of the k partial
//! clauses: 2^k - 1 clauses).

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use wol_engine::{normalize, NormalizeOptions};
use workloads::wide;

fn bench_constraint_blowup(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_constraint_blowup");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let attrs = 24;
    for &partials in &[2usize, 4, 6, 8, 10] {
        let with_keys = wide::partial_program(attrs, partials, true);
        let without_keys = wide::partial_program(attrs, partials, false);
        group.bench_with_input(
            BenchmarkId::new("with_key_constraints", partials),
            &with_keys,
            |b, program| {
                b.iter(|| normalize(program, &NormalizeOptions::default()).expect("normalises"))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("constraints_omitted", partials),
            &without_keys,
            |b, program| {
                let options = NormalizeOptions {
                    use_target_keys: false,
                    ..NormalizeOptions::default()
                };
                b.iter(|| normalize(program, &options).expect("normalises"))
            },
        );
    }
    group.finish();

    // Paper-style summary: normal-form size with and without constraints.
    eprintln!(
        "[E2] k_partial_clauses, clauses_with_keys, clauses_without_keys, size_with, size_without"
    );
    for &partials in &[2usize, 4, 6, 8, 10] {
        let with_keys = normalize(
            &wide::partial_program(attrs, partials, true),
            &NormalizeOptions::default(),
        )
        .unwrap();
        let without_keys = normalize(
            &wide::partial_program(attrs, partials, false),
            &NormalizeOptions {
                use_target_keys: false,
                ..NormalizeOptions::default()
            },
        )
        .unwrap();
        eprintln!(
            "[E2] {partials}, {}, {}, {}, {}",
            with_keys.len(),
            without_keys.len(),
            with_keys.size(),
            without_keys.size()
        );
    }
}

criterion_group!(benches, bench_constraint_blowup);
criterion_main!(benches);
