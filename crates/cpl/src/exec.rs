//! Single-pass execution of plans and queries.
//!
//! Normal-form WOL clauses compile to [`Query`] values; executing all of a
//! program's queries makes exactly one pass over the source databases
//! (Section 5: "A transformation program in which all the transformation
//! clauses are in normal form can easily be implemented in a single pass").

use std::collections::{BTreeMap, HashMap};

use wol_model::{Instance, Oid, Value};

use crate::error::CplError;
use crate::expr::{eval, eval_predicate, EvalCtx, Expr};
use crate::plan::{Plan, Query};
use crate::Result;

pub use crate::expr::Row;

/// Statistics collected while executing plans; reported by the Morphase
/// pipeline and the benchmark harness.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Rows produced by scans.
    pub rows_scanned: usize,
    /// Rows produced by all operators together.
    pub rows_produced: usize,
    /// Rows emitted by the top of each query plan.
    pub rows_output: usize,
    /// Objects inserted or merged into the target.
    pub objects_written: usize,
    /// Attribute-index probes that replaced hash-join build sides.
    pub index_probes: usize,
    /// Probe-side cache hits: driving rows whose composite key was already
    /// probed, answered without touching the attribute index again. Skewed
    /// workloads repeat the same hot keys constantly, so this is where the
    /// zipfian head stops costing per-row work.
    pub probe_cache_hits: usize,
    /// Peak number of rows materialised by any single operator — the memory
    /// high-water mark that exposes accidental cross products.
    pub max_intermediate_rows: usize,
}

impl ExecStats {
    /// Accumulate another stats value into this one.
    pub fn absorb(&mut self, other: ExecStats) {
        self.rows_scanned += other.rows_scanned;
        self.rows_produced += other.rows_produced;
        self.rows_output += other.rows_output;
        self.objects_written += other.objects_written;
        self.index_probes += other.index_probes;
        self.probe_cache_hits += other.probe_cache_hits;
        self.max_intermediate_rows = self.max_intermediate_rows.max(other.max_intermediate_rows);
    }

    fn record_operator_output(&mut self, rows: usize) {
        self.rows_produced += rows;
        self.max_intermediate_rows = self.max_intermediate_rows.max(rows);
    }
}

/// One executed join operator's actual output row count, recorded (in
/// post-order) when the context's join trace is enabled
/// ([`EvalCtx::enable_join_trace`]). Reports pair these with the planner's
/// [`crate::optimizer::estimate_join_outputs`] estimates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinActual {
    /// Operator kind (`HashJoin`, `NestedLoopJoin`, `CrossJoin`).
    pub kind: &'static str,
    /// Rows the join actually produced.
    pub rows: usize,
}

/// A hash-join side answerable through the instances' attribute indexes
/// ([`wol_model::index`]): a bare class scan with at least one key expression
/// that is a single attribute projection off the scanned variable.
pub(crate) struct IndexableSide {
    class: wol_model::ClassName,
    var: String,
    /// Attribute the index is probed on.
    attr: String,
    /// Which key pair the probe answers; the remaining pairs are verified
    /// against each candidate object.
    key_index: usize,
}

/// Detect an indexable side. `keys` yields this side's key expression from
/// each `(left, right)` pair. Shared with the planner
/// ([`crate::optimizer`]), which orients hash-join sides precisely so this
/// fast path fires — the two must never diverge. (The planner only asks
/// *whether* a side is indexable; which key the executor actually probes on
/// is chosen per run by [`best_indexable_side`].)
pub(crate) fn indexable_side<'p>(
    plan: &Plan,
    keys: impl Iterator<Item = &'p Expr>,
) -> Option<IndexableSide> {
    let Plan::Scan { class, var } = plan else {
        return None;
    };
    for (key_index, key) in keys.enumerate() {
        if let Expr::Proj(base, attr) = key {
            if matches!(base.as_ref(), Expr::Var(v) if v == var) {
                return Some(IndexableSide {
                    class: class.clone(),
                    var: var.clone(),
                    attr: attr.clone(),
                    key_index,
                });
            }
        }
    }
    None
}

/// Among a composite key's probe-able attributes, pick the one whose index
/// yields the smallest *expected* candidate list, estimated from the
/// attribute's own histogram as `Σ_v count(v)² / entries` — the mean bucket
/// length weighted by how often each value is probed. On skewed data this is
/// the difference between probing a zipfian attribute (hot keys return huge
/// candidate lists, over and over) and probing a uniform one; plain ndv
/// cannot see it. Histograms are only consulted when there is a genuine
/// choice (two or more probe-able keys) — the common single-key join keeps
/// the old O(1) detection.
fn best_indexable_side(
    plan: &Plan,
    keys: &[&Expr],
    sources: &[&Instance],
) -> Option<IndexableSide> {
    let Plan::Scan { class, var } = plan else {
        return None;
    };
    let candidates: Vec<(usize, &String)> = keys
        .iter()
        .enumerate()
        .filter_map(|(key_index, key)| match key {
            Expr::Proj(base, attr) if matches!(base.as_ref(), Expr::Var(v) if v == var) => {
                Some((key_index, attr))
            }
            _ => None,
        })
        .collect();
    if candidates.len() <= 1 {
        return candidates
            .into_iter()
            .next()
            .map(|(key_index, attr)| IndexableSide {
                class: class.clone(),
                var: var.clone(),
                attr: attr.clone(),
                key_index,
            });
    }
    let mut best: Option<(f64, IndexableSide)> = None;
    for (key_index, attr) in candidates {
        let mut self_join_rows = 0.0;
        let mut entries = 0.0;
        for source in sources {
            let histogram = source.attr_histogram(class, attr);
            self_join_rows += histogram.eq_join_rows(&histogram);
            entries += histogram.entries() as f64;
        }
        let expected = if entries > 0.0 {
            self_join_rows / entries
        } else {
            f64::INFINITY
        };
        if best.as_ref().is_none_or(|(cost, _)| expected < *cost) {
            best = Some((
                expected,
                IndexableSide {
                    class: class.clone(),
                    var: var.clone(),
                    attr: attr.clone(),
                    key_index,
                },
            ));
        }
    }
    best.map(|(_, side)| side)
}

/// The hash-join index fast path: drive the join from `driving`'s rows,
/// answer key pair `side.key_index` by probing the indexable scan side
/// through the source instances' attribute indexes, and verify any remaining
/// key pairs against each candidate.
///
/// Repeated composite keys — the common case on skewed data, where a few hot
/// values dominate the driving side — are answered from a probe-side cache:
/// the verified identity list for a key tuple is computed once and replayed
/// for every later driving row carrying the same tuple
/// ([`ExecStats::probe_cache_hits`]).
fn probe_join(
    driving: &Plan,
    driving_keys: &[&Expr],
    scan_keys: &[&Expr],
    side: &IndexableSide,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Row>> {
    let driving_rows = run_plan(driving, ctx, stats)?;
    let sources = ctx.sources().to_vec();
    // The cache is sound only when every scan-side key expression ranges
    // over the scanned variable alone — then the verified identity list is a
    // function of the key tuple. The planner only emits such keys, but the
    // join shape is public API, so the executor re-checks.
    let cacheable = scan_keys
        .iter()
        .all(|k| k.var_set().iter().all(|v| v == &side.var));
    let mut cache: HashMap<Vec<Value>, Vec<Oid>> = HashMap::new();
    let mut rows = Vec::new();
    'rows: for row in &driving_rows {
        let mut key_values = Vec::with_capacity(driving_keys.len());
        for key in driving_keys {
            match eval(key, row, ctx) {
                Ok(value) => key_values.push(value),
                Err(CplError::BadValue(_)) => continue 'rows,
                Err(other) => return Err(other),
            }
        }
        if cacheable {
            let matched = match cache.get(&key_values) {
                Some(hit) => {
                    stats.probe_cache_hits += 1;
                    hit
                }
                None => {
                    let fresh = verified_candidates(
                        &Row::new(),
                        &key_values,
                        scan_keys,
                        side,
                        &sources,
                        ctx,
                        stats,
                    )?;
                    cache.entry(key_values.clone()).or_insert(fresh)
                }
            };
            for oid in matched {
                let mut combined = row.clone();
                combined.insert(side.var.clone(), Value::Oid(oid.clone()));
                rows.push(combined);
            }
        } else {
            for oid in verified_candidates(row, &key_values, scan_keys, side, &sources, ctx, stats)?
            {
                let mut combined = row.clone();
                combined.insert(side.var.clone(), Value::Oid(oid));
                rows.push(combined);
            }
        }
    }
    ctx.record_join("HashJoin", rows.len());
    stats.record_operator_output(rows.len());
    Ok(rows)
}

/// Probe the attribute index for the scan-side candidates of one key tuple
/// and verify every non-probed key pair against each candidate, extending
/// `base` with the candidate's identity for the verification.
fn verified_candidates(
    base: &Row,
    key_values: &[Value],
    scan_keys: &[&Expr],
    side: &IndexableSide,
    sources: &[&Instance],
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Vec<Oid>> {
    stats.index_probes += 1;
    let mut matched = Vec::new();
    for instance in sources {
        'candidates: for oid in
            instance.lookup_by_attr(&side.class, &side.attr, &key_values[side.key_index])
        {
            let mut probe_row = base.clone();
            probe_row.insert(side.var.clone(), Value::Oid(oid.clone()));
            for (i, scan_key) in scan_keys.iter().enumerate() {
                if i == side.key_index {
                    continue;
                }
                match eval(scan_key, &probe_row, ctx) {
                    Ok(value) if value == key_values[i] => {}
                    Ok(_) | Err(CplError::BadValue(_)) => continue 'candidates,
                    Err(other) => return Err(other),
                }
            }
            matched.push(oid);
        }
    }
    Ok(matched)
}

/// Evaluate all keys of one join side against a row; `None` when a missing
/// optional attribute makes the row unjoinable.
fn eval_keys(keys: &[&Expr], row: &Row, ctx: &mut EvalCtx<'_>) -> Result<Option<Vec<Value>>> {
    let mut values = Vec::with_capacity(keys.len());
    for key in keys {
        match eval(key, row, ctx) {
            Ok(value) => values.push(value),
            Err(CplError::BadValue(_)) => return Ok(None),
            Err(other) => return Err(other),
        }
    }
    Ok(Some(values))
}

/// Run a plan against the context, returning its rows.
pub fn run_plan(plan: &Plan, ctx: &mut EvalCtx<'_>, stats: &mut ExecStats) -> Result<Vec<Row>> {
    let rows = match plan {
        Plan::Scan { class, var } => {
            let mut rows = Vec::new();
            for instance in ctx.sources().to_vec() {
                for oid in instance.extent(class) {
                    let mut row = Row::new();
                    row.insert(var.clone(), Value::Oid(oid.clone()));
                    rows.push(row);
                }
            }
            stats.rows_scanned += rows.len();
            rows
        }
        Plan::Filter { input, predicate } => {
            let mut rows = Vec::new();
            for row in run_plan(input, ctx, stats)? {
                if eval_predicate(predicate, &row, ctx)? {
                    rows.push(row);
                }
            }
            rows
        }
        Plan::Map { input, bindings } => {
            let mut rows = Vec::new();
            for mut row in run_plan(input, ctx, stats)? {
                let mut ok = true;
                for (var, expr) in bindings {
                    match eval(expr, &row, ctx) {
                        Ok(value) => {
                            row.insert(var.clone(), value);
                        }
                        Err(CplError::BadValue(_)) => {
                            // A missing optional attribute: the row does not
                            // contribute (mirrors clause-matching semantics).
                            ok = false;
                            break;
                        }
                        Err(other) => return Err(other),
                    }
                }
                if ok {
                    rows.push(row);
                }
            }
            rows
        }
        Plan::NestedLoopJoin {
            left,
            right,
            predicate,
        } => {
            let left_rows = run_plan(left, ctx, stats)?;
            let right_rows = run_plan(right, ctx, stats)?;
            let mut rows = Vec::new();
            for l in &left_rows {
                for r in &right_rows {
                    let mut combined = l.clone();
                    combined.extend(r.clone());
                    let keep = match predicate {
                        Some(p) => eval_predicate(p, &combined, ctx)?,
                        None => true,
                    };
                    if keep {
                        rows.push(combined);
                    }
                }
            }
            ctx.record_join("NestedLoopJoin", rows.len());
            rows
        }
        Plan::CrossJoin { left, right } => {
            let left_rows = run_plan(left, ctx, stats)?;
            let right_rows = run_plan(right, ctx, stats)?;
            let mut rows = Vec::with_capacity(left_rows.len() * right_rows.len());
            for l in &left_rows {
                for r in &right_rows {
                    let mut combined = l.clone();
                    combined.extend(r.clone());
                    rows.push(combined);
                }
            }
            ctx.record_join("CrossJoin", rows.len());
            rows
        }
        Plan::HashJoin { left, right, keys } => {
            let left_keys: Vec<&Expr> = keys.iter().map(|(l, _)| l).collect();
            let right_keys: Vec<&Expr> = keys.iter().map(|(_, r)| r).collect();
            // Index fast path: when one side is a bare scan with a key that
            // is a single attribute of the scanned object, skip materialising
            // (and hash building over) that side entirely — drive the join
            // from the other side's rows and answer each key with an
            // attribute-index probe into the source instances, probing on
            // the attribute with the smallest expected candidate lists.
            if let Some(side) = best_indexable_side(left, &left_keys, ctx.sources()) {
                return probe_join(right, &right_keys, &left_keys, &side, ctx, stats);
            }
            if let Some(side) = best_indexable_side(right, &right_keys, ctx.sources()) {
                return probe_join(left, &left_keys, &right_keys, &side, ctx, stats);
            }
            let left_rows = run_plan(left, ctx, stats)?;
            let right_rows = run_plan(right, ctx, stats)?;
            // Build on the left, probe with the right.
            let mut table: BTreeMap<Vec<Value>, Vec<&Row>> = BTreeMap::new();
            for l in &left_rows {
                if let Some(key) = eval_keys(&left_keys, l, ctx)? {
                    table.entry(key).or_default().push(l);
                }
            }
            let mut rows = Vec::new();
            for r in &right_rows {
                let Some(key) = eval_keys(&right_keys, r, ctx)? else {
                    continue;
                };
                if let Some(matches) = table.get(&key) {
                    for l in matches {
                        let mut combined = (*l).clone();
                        combined.extend(r.clone());
                        rows.push(combined);
                    }
                }
            }
            ctx.record_join("HashJoin", rows.len());
            rows
        }
        Plan::Distinct { input } => {
            let mut seen = std::collections::BTreeSet::new();
            let mut rows = Vec::new();
            for row in run_plan(input, ctx, stats)? {
                if seen.insert(row.clone()) {
                    rows.push(row);
                }
            }
            rows
        }
    };
    stats.record_operator_output(rows.len());
    Ok(rows)
}

/// Execute one query: run its plan and apply its insert actions to `target`.
pub fn execute_query(
    query: &Query,
    ctx: &mut EvalCtx<'_>,
    target: &mut Instance,
    stats: &mut ExecStats,
) -> Result<()> {
    let rows = run_plan(&query.plan, ctx, stats)?;
    stats.rows_output += rows.len();
    for row in rows {
        for insert in &query.inserts {
            let key = eval(&insert.key, &row, ctx)?;
            let oid = ctx.factory.mk(&insert.class, &key);
            let mut fields = BTreeMap::new();
            for (label, expr) in &insert.attrs {
                fields.insert(label.clone(), eval(expr, &row, ctx)?);
            }
            let record = Value::Record(fields);
            match target.value(&oid) {
                None => {
                    target.insert(oid, record)?;
                    stats.objects_written += 1;
                }
                Some(existing) => {
                    let merged = existing.merge_records(&record).ok_or_else(|| {
                        CplError::ConflictingInsert(format!(
                            "object {oid} receives conflicting values from query `{}`",
                            query.name
                        ))
                    })?;
                    target.update(&oid, merged)?;
                    stats.objects_written += 1;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::InsertAction;
    use wol_model::{ClassName, Oid};

    fn euro_instance() -> Instance {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("United Kingdom")),
                ("language", Value::str("English")),
                ("currency", Value::str("sterling")),
            ]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([
                ("name", Value::str("France")),
                ("language", Value::str("French")),
                ("currency", Value::str("franc")),
            ]),
        );
        for (name, capital, country) in [
            ("London", true, &uk),
            ("Manchester", false, &uk),
            ("Paris", true, &fr),
        ] {
            inst.insert_fresh(
                &ClassName::new("CityE"),
                Value::record([
                    ("name", Value::str(name)),
                    ("is_capital", Value::bool(capital)),
                    ("country", Value::oid(country.clone())),
                ]),
            );
        }
        inst
    }

    #[test]
    fn scan_filter_map() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E")
            .filter(Expr::var("E").proj("is_capital"))
            .map(vec![("N".to_string(), Expr::var("E").proj("name"))]);
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().any(|r| r["N"] == Value::str("London")));
        assert!(rows.iter().any(|r| r["N"] == Value::str("Paris")));
        assert_eq!(stats.rows_scanned, 3);
        assert!(stats.rows_produced >= 5);
    }

    #[test]
    fn nested_loop_and_hash_join_agree() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut stats = ExecStats::default();
        let nl = Plan::scan("CityE", "E").join(
            Plan::scan("CountryE", "C"),
            Some(
                Expr::var("E")
                    .path("country.name")
                    .eq(Expr::var("C").proj("name")),
            ),
        );
        let hj = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut nl_rows = run_plan(&nl, &mut ctx, &mut stats).unwrap();
        let mut ctx = EvalCtx::new(&refs);
        let mut hj_rows = run_plan(&hj, &mut ctx, &mut stats).unwrap();
        nl_rows.sort();
        hj_rows.sort();
        // Hash join builds on the left and probes with the right, so the row
        // contents are identical even if produced in a different order.
        assert_eq!(nl_rows.len(), 3);
        assert_eq!(nl_rows, hj_rows);
    }

    #[test]
    fn hash_join_scan_side_is_answered_by_index_probes() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut stats = ExecStats::default();
        // The CountryE side is a bare scan keyed by a single attribute, so it
        // is answered by attribute-index probes: it contributes no scanned
        // rows, and one probe per driving row.
        let plan = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.rows_scanned, 3); // CityE only
        assert_eq!(stats.index_probes, 2); // one per *distinct* key value
        assert_eq!(stats.probe_cache_hits, 1); // Manchester reuses the UK probe
                                               // A join whose scan side is keyed by a computed expression falls back
                                               // to the generic hash join.
        let mut stats = ExecStats::default();
        let generic = Plan::scan("CityE", "E").hash_join(
            Plan::scan("CountryE", "C"),
            Expr::var("E").path("country.name"),
            Expr::var("C").path("capital.name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let _ = run_plan(&generic, &mut ctx, &mut stats);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn distinct_removes_duplicates() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E")
            .map(vec![(
                "L".to_string(),
                Expr::var("E").path("country.language"),
            )])
            .map(vec![("K".to_string(), Expr::var("L"))])
            .distinct();
        // Keep only the language column to create duplicates.
        let plan = Plan::Map {
            input: Box::new(plan),
            bindings: vec![],
        };
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3); // rows still distinct because E differs
                                   // Project to just the language: build rows manually to check distinct.
        let lang_only = Plan::Distinct {
            input: Box::new(Plan::Map {
                input: Box::new(Plan::scan("CityE", "E")),
                bindings: vec![("L".to_string(), Expr::var("E").path("country.language"))],
            }),
        };
        let _ = lang_only; // The E binding keeps rows distinct; full projection
                           // is exercised through query execution below.
    }

    #[test]
    fn execute_query_builds_target_and_merges_by_key() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut target = Instance::new("target");

        // Two queries that each contribute part of CountryT, keyed by name —
        // the CPL-level counterpart of partial clauses merged through keys.
        let q1 = Query {
            name: "T4".to_string(),
            plan: Plan::scan("CountryE", "C")
                .map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CountryT"),
                key: Expr::var("N"),
                attrs: vec![
                    ("name".to_string(), Expr::var("N")),
                    ("language".to_string(), Expr::var("C").proj("language")),
                ],
            }],
        };
        let q2 = Query {
            name: "T5".to_string(),
            plan: Plan::scan("CountryE", "C")
                .map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CountryT"),
                key: Expr::var("N"),
                attrs: vec![("currency".to_string(), Expr::var("C").proj("currency"))],
            }],
        };
        execute_query(&q1, &mut ctx, &mut target, &mut stats).unwrap();
        execute_query(&q2, &mut ctx, &mut target, &mut stats).unwrap();
        assert_eq!(target.extent_size(&ClassName::new("CountryT")), 2);
        let france = target
            .find_by_field(&ClassName::new("CountryT"), "name", &Value::str("France"))
            .unwrap();
        let value = target.value(france).unwrap();
        assert_eq!(value.project("language"), Some(&Value::str("French")));
        assert_eq!(value.project("currency"), Some(&Value::str("franc")));
        assert_eq!(stats.objects_written, 4);
        assert!(stats.rows_output >= 4);
    }

    #[test]
    fn conflicting_inserts_detected() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut target = Instance::new("target");
        let make = |name: &str, value: Expr| Query {
            name: name.to_string(),
            plan: Plan::scan("CountryE", "C")
                .map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
            inserts: vec![InsertAction {
                class: ClassName::new("CountryT"),
                key: Expr::var("N"),
                attrs: vec![("currency".to_string(), value)],
            }],
        };
        execute_query(
            &make("a", Expr::var("C").proj("currency")),
            &mut ctx,
            &mut target,
            &mut stats,
        )
        .unwrap();
        let err = execute_query(
            &make("b", Expr::Const(Value::str("euro"))),
            &mut ctx,
            &mut target,
            &mut stats,
        )
        .unwrap_err();
        assert!(matches!(err, CplError::ConflictingInsert(_)));
    }

    #[test]
    fn dangling_reference_reported() {
        let mut inst = Instance::new("euro");
        let ghost = Oid::new(ClassName::new("CountryE"), 42);
        inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Atlantis")),
                ("country", Value::oid(ghost)),
            ]),
        );
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E")
            .map(vec![("N".to_string(), Expr::var("E").path("country.name"))]);
        // The dangling reference surfaces as a BadValue, which Map treats as a
        // non-contributing row rather than a hard error.
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn stats_absorb_accumulates() {
        let mut a = ExecStats {
            rows_scanned: 1,
            rows_produced: 2,
            rows_output: 3,
            objects_written: 4,
            index_probes: 5,
            probe_cache_hits: 7,
            max_intermediate_rows: 6,
        };
        let b = a;
        a.absorb(b);
        assert_eq!(a.rows_scanned, 2);
        assert_eq!(a.objects_written, 8);
        assert_eq!(a.index_probes, 10);
        assert_eq!(a.probe_cache_hits, 14);
        // The high-water mark combines by max, not by sum.
        assert_eq!(a.max_intermediate_rows, 6);
    }

    #[test]
    fn cross_join_is_a_product_and_raises_the_high_water_mark() {
        let inst = euro_instance();
        let refs = [&inst];
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let plan = Plan::scan("CityE", "E").cross(Plan::scan("CountryE", "C"));
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 6); // 3 cities x 2 countries
        assert_eq!(stats.max_intermediate_rows, 6);
    }

    #[test]
    fn multi_key_hash_join_matches_composite_keys() {
        let inst = euro_instance();
        let refs = [&inst];
        // Join cities to countries on (name-of-country, language): composite
        // key through the generic hash path (left side is not a bare scan).
        let left = Plan::scan("CityE", "E").filter(Expr::var("E").proj("is_capital"));
        let plan = left.hash_join_multi(
            Plan::scan("CityE", "F").filter(Expr::var("F").proj("is_capital")),
            vec![
                (
                    Expr::var("E").path("country.name"),
                    Expr::var("F").path("country.name"),
                ),
                (Expr::var("E").proj("name"), Expr::var("F").proj("name")),
            ],
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        // Each capital joins only with itself under the composite key.
        assert_eq!(rows.len(), 2);
        assert_eq!(stats.index_probes, 0);
    }

    #[test]
    fn probe_cache_replays_verified_matches_for_repeated_keys() {
        // Many driving rows sharing one hot key: exactly one index probe,
        // the rest served from the cache, and the row multiset is identical
        // to the generic (uncached) hash join.
        let mut inst = Instance::new("skew");
        let hub = inst.insert_fresh(
            &ClassName::new("CloneS"),
            Value::record([("name", Value::str("hot"))]),
        );
        let _ = hub;
        inst.insert_fresh(
            &ClassName::new("CloneS"),
            Value::record([("name", Value::str("cold"))]),
        );
        for i in 0..10 {
            inst.insert_fresh(
                &ClassName::new("MarkerS"),
                Value::record([
                    ("name", Value::str(format!("m{i}"))),
                    ("clone_name", Value::str(if i < 9 { "hot" } else { "cold" })),
                ]),
            );
        }
        let refs = [&inst];
        // The marker side is not a bare scan (a Map sits on it), so the
        // CloneS scan is the indexable side and the 10 marker rows drive.
        let probed = Plan::scan("MarkerS", "M").map(vec![]).hash_join(
            Plan::scan("CloneS", "C"),
            Expr::var("M").proj("clone_name"),
            Expr::var("C").proj("name"),
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let mut rows = run_plan(&probed, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 10);
        assert_eq!(stats.index_probes, 2); // "hot" once, "cold" once
        assert_eq!(stats.probe_cache_hits, 8);
        // Same rows as the generic hash join over pre-materialised sides.
        let generic = Plan::scan("MarkerS", "M")
            .map(vec![("K".to_string(), Expr::var("M").proj("clone_name"))])
            .hash_join(
                Plan::scan("CloneS", "C").map(vec![("N".to_string(), Expr::var("C").proj("name"))]),
                Expr::var("K"),
                Expr::var("N"),
            );
        let mut ctx = EvalCtx::new(&refs);
        let mut generic_stats = ExecStats::default();
        let mut generic_rows = run_plan(&generic, &mut ctx, &mut generic_stats).unwrap();
        assert_eq!(generic_stats.index_probes, 0);
        // Strip the helper bindings before comparing.
        for row in generic_rows.iter_mut() {
            row.remove("K");
            row.remove("N");
        }
        rows.sort();
        generic_rows.sort();
        assert_eq!(rows, generic_rows);
    }

    #[test]
    fn join_trace_records_actual_rows_in_post_order() {
        let inst = euro_instance();
        let refs = [&inst];
        // A hash join (probed) nested under a cross join.
        let plan = Plan::scan("CityE", "E")
            .hash_join(
                Plan::scan("CountryE", "C"),
                Expr::var("E").path("country.name"),
                Expr::var("C").proj("name"),
            )
            .cross(Plan::scan("CountryE", "D"));
        let mut ctx = EvalCtx::new(&refs);
        ctx.enable_join_trace();
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 6);
        let trace = ctx.take_join_trace();
        assert_eq!(
            trace,
            vec![
                JoinActual {
                    kind: "HashJoin",
                    rows: 3
                },
                JoinActual {
                    kind: "CrossJoin",
                    rows: 6
                },
            ]
        );
        // Draining leaves the trace enabled but empty.
        assert!(ctx.take_join_trace().is_empty());
        // Without enabling, nothing is recorded.
        let mut ctx = EvalCtx::new(&refs);
        let _ = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(ctx.take_join_trace().is_empty());
    }

    #[test]
    fn multi_key_probe_join_verifies_secondary_keys() {
        let inst = euro_instance();
        let refs = [&inst];
        // The CountryE side is a bare scan: probed on `name`, with the
        // second (language vs country.language) pair verified per candidate.
        let plan = Plan::scan("CityE", "E").hash_join_multi(
            Plan::scan("CountryE", "C"),
            vec![
                (
                    Expr::var("E").path("country.name"),
                    Expr::var("C").proj("name"),
                ),
                (
                    Expr::var("E").path("country.language"),
                    Expr::var("C").proj("language"),
                ),
            ],
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(stats.index_probes, 2); // London and Manchester share a key
        assert_eq!(stats.probe_cache_hits, 1);
        // A mismatched secondary key filters every candidate out.
        let plan = Plan::scan("CityE", "E").hash_join_multi(
            Plan::scan("CountryE", "C"),
            vec![
                (
                    Expr::var("E").path("country.name"),
                    Expr::var("C").proj("name"),
                ),
                (Expr::var("E").proj("name"), Expr::var("C").proj("language")),
            ],
        );
        let mut ctx = EvalCtx::new(&refs);
        let mut stats = ExecStats::default();
        let rows = run_plan(&plan, &mut ctx, &mut stats).unwrap();
        assert!(rows.is_empty());
    }
}
