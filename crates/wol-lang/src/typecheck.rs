//! Well-typedness of WOL clauses (Section 3.1).
//!
//! "A clause is said to be well-typed iff we can assign types to all the
//! variables in the clause in such a way that all the atoms of the clause make
//! sense." The checker infers a type environment for the clause's variables by
//! propagating type information between the two sides of each atom until a
//! fixpoint is reached, then verifies consistency. The paper's example of an
//! ill-typed clause — `X < Y.population` together with `X in CityA` — is
//! rejected because `X` would need to be both an integer and an object of
//! class `CityA`.

use std::collections::BTreeMap;

use wol_model::{BaseType, ClassName, Schema, Type, Value};

use crate::ast::{Atom, Clause, Term};
use crate::error::LangError;
use crate::Result;

/// A typing of the variables of a clause.
pub type TypeEnv = BTreeMap<String, Type>;

/// Look up a class's value type across several schemas (WOL clauses may span
/// one or more source databases plus the target database).
fn class_type<'a>(schemas: &'a [&Schema], class: &ClassName) -> Option<&'a Type> {
    schemas.iter().find_map(|s| s.class_type(class))
}

fn class_exists(schemas: &[&Schema], class: &ClassName) -> bool {
    schemas.iter().any(|s| s.has_class(class))
}

/// Are two inferred types compatible? `Optional` wrappers are transparent.
fn compatible(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Optional(x), y) => compatible(x, y),
        (x, Type::Optional(y)) => compatible(x, y),
        (x, y) => x == y,
    }
}

fn type_of_const(value: &Value) -> Option<Type> {
    match value {
        Value::Bool(_) => Some(Type::Base(BaseType::Bool)),
        Value::Int(_) => Some(Type::Base(BaseType::Int)),
        Value::Real(_) => Some(Type::Base(BaseType::Real)),
        Value::Str(_) => Some(Type::Base(BaseType::Str)),
        Value::Unit => Some(Type::Unit),
        Value::Oid(oid) => Some(Type::Class(oid.class().clone())),
        _ => None,
    }
}

/// The state of the inference pass.
struct Checker<'a> {
    schemas: &'a [&'a Schema],
    env: TypeEnv,
    clause_id: String,
    changed: bool,
}

impl<'a> Checker<'a> {
    fn error(&self, message: impl Into<String>) -> LangError {
        LangError::Type {
            clause: self.clause_id.clone(),
            message: message.into(),
        }
    }

    fn bind(&mut self, var: &str, ty: Type) -> Result<()> {
        match self.env.get(var) {
            Some(existing) => {
                if !compatible(existing, &ty) {
                    return Err(self.error(format!(
                        "variable {var} would need both type {} and type {}",
                        wol_model::display::render_type(existing),
                        wol_model::display::render_type(&ty)
                    )));
                }
                Ok(())
            }
            None => {
                self.env.insert(var.to_string(), ty);
                self.changed = true;
                Ok(())
            }
        }
    }

    /// Try to infer the type of a term from the current environment.
    /// Returns `Ok(None)` when not enough is known yet.
    fn infer(&mut self, term: &Term) -> Result<Option<Type>> {
        match term {
            Term::Var(v) => Ok(self.env.get(v).cloned()),
            Term::Const(value) => Ok(type_of_const(value)),
            Term::Proj(base, label) => {
                let Some(base_ty) = self.infer(base)? else {
                    return Ok(None);
                };
                // Dereference class types to their value type (and unwrap
                // optional wrappers) before projecting; `Optional(Class(C))`
                // needs both steps.
                let mut record_ty = base_ty;
                loop {
                    record_ty = match record_ty {
                        Type::Class(c) => class_type(self.schemas, &c)
                            .ok_or_else(|| self.error(format!("unknown class `{c}`")))?
                            .clone(),
                        Type::Optional(inner) => *inner,
                        other => {
                            record_ty = other;
                            break;
                        }
                    };
                }
                match record_ty.field(label) {
                    Some(t) => Ok(Some(t.clone())),
                    None => Err(self.error(format!(
                        "type {} has no attribute `{label}`",
                        wol_model::display::render_type(&record_ty)
                    ))),
                }
            }
            Term::Record(fields) => {
                let mut tys = Vec::new();
                for (l, t) in fields {
                    match self.infer(t)? {
                        Some(ty) => tys.push((l.clone(), ty)),
                        None => return Ok(None),
                    }
                }
                Ok(Some(Type::Record(tys)))
            }
            // A bare variant term's type cannot be inferred without an
            // expected variant type; it is handled by `check_against`.
            Term::Variant(_, _) => Ok(None),
            Term::Skolem(class, args) => {
                if !class_exists(self.schemas, class) {
                    return Err(
                        self.error(format!("Skolem term refers to unknown class `{class}`"))
                    );
                }
                // Argument terms need no particular type, but inferring them
                // may bind variables through record/projection structure.
                for t in args.terms() {
                    let _ = self.infer(t)?;
                }
                Ok(Some(Type::Class(class.clone())))
            }
        }
    }

    /// Push an expected type onto a term, binding variables where possible and
    /// reporting a mismatch where the term's type is already known.
    fn check_against(&mut self, term: &Term, expected: &Type) -> Result<()> {
        // Unwrap optionals: a term equated with an optional field has the
        // field's inner type.
        if let Type::Optional(inner) = expected {
            return self.check_against(term, inner);
        }
        match term {
            Term::Var(v) => self.bind(v, expected.clone()),
            Term::Const(value) => match type_of_const(value) {
                Some(actual) if compatible(&actual, expected) => Ok(()),
                Some(actual) => Err(self.error(format!(
                    "constant {} has type {} but {} was expected",
                    wol_model::display::render_value(value),
                    wol_model::display::render_type(&actual),
                    wol_model::display::render_type(expected)
                ))),
                None => Ok(()),
            },
            Term::Proj(_, _) => {
                if let Some(actual) = self.infer(term)? {
                    if !compatible(&actual, expected) {
                        return Err(self.error(format!(
                            "term {} has type {} but {} was expected",
                            crate::pretty::render_term(term),
                            wol_model::display::render_type(&actual),
                            wol_model::display::render_type(expected)
                        )));
                    }
                }
                Ok(())
            }
            Term::Record(fields) => match expected {
                Type::Record(expected_fields) => {
                    for (label, sub) in fields {
                        match expected_fields.iter().find(|(l, _)| l == label) {
                            Some((_, sub_ty)) => self.check_against(sub, sub_ty)?,
                            None => {
                                return Err(self.error(format!(
                                "record term has field `{label}` not present in expected type {}",
                                wol_model::display::render_type(expected)
                            )))
                            }
                        }
                    }
                    Ok(())
                }
                _ => Err(self.error(format!(
                    "record term used where {} was expected",
                    wol_model::display::render_type(expected)
                ))),
            },
            Term::Variant(label, payload) => match expected {
                Type::Variant(alts) => match alts.iter().find(|(l, _)| l == label) {
                    Some((_, alt_ty)) => self.check_against(payload, alt_ty),
                    None => Err(self.error(format!(
                        "variant alternative `{label}` is not part of expected type {}",
                        wol_model::display::render_type(expected)
                    ))),
                },
                _ => Err(self.error(format!(
                    "variant term ins_{label}(..) used where {} was expected",
                    wol_model::display::render_type(expected)
                ))),
            },
            Term::Skolem(class, _) => {
                let actual = Type::Class(class.clone());
                if !compatible(&actual, expected) {
                    return Err(self.error(format!(
                        "Skolem term Mk_{class}(..) has type {class} but {} was expected",
                        wol_model::display::render_type(expected)
                    )));
                }
                Ok(())
            }
        }
    }

    fn numeric(&mut self, term: &Term) -> Result<()> {
        if let Some(ty) = self.infer(term)? {
            let ok = matches!(ty, Type::Base(BaseType::Int) | Type::Base(BaseType::Real))
                || matches!(&ty, Type::Optional(inner)
                    if matches!(**inner, Type::Base(BaseType::Int) | Type::Base(BaseType::Real)));
            if !ok {
                return Err(self.error(format!(
                    "term {} has type {} but a numeric type was expected",
                    crate::pretty::render_term(term),
                    wol_model::display::render_type(&ty)
                )));
            }
        }
        Ok(())
    }

    fn check_atom(&mut self, atom: &Atom) -> Result<()> {
        match atom {
            Atom::Member(t, class) => {
                if !class_exists(self.schemas, class) {
                    return Err(self.error(format!("membership in unknown class `{class}`")));
                }
                self.check_against(t, &Type::Class(class.clone()))
            }
            Atom::Eq(s, t) | Atom::Neq(s, t) => {
                let ls = self.infer(s)?;
                let lt = self.infer(t)?;
                match (ls, lt) {
                    (Some(a), Some(b)) => {
                        if !compatible(&a, &b) {
                            return Err(self.error(format!(
                                "equated terms have incompatible types {} and {}",
                                wol_model::display::render_type(&a),
                                wol_model::display::render_type(&b)
                            )));
                        }
                        // Still push, so record/variant sub-terms bind their variables.
                        self.check_against(s, &b)?;
                        self.check_against(t, &a)
                    }
                    (Some(a), None) => self.check_against(t, &a),
                    (None, Some(b)) => self.check_against(s, &b),
                    (None, None) => Ok(()),
                }
            }
            Atom::Lt(s, t) | Atom::Leq(s, t) => {
                self.numeric(s)?;
                self.numeric(t)?;
                // Propagate a type from one side to the other when possible.
                if let Some(ty) = self.infer(s)? {
                    self.check_against(t, &ty)?;
                } else if let Some(ty) = self.infer(t)? {
                    self.check_against(s, &ty)?;
                }
                Ok(())
            }
            Atom::InSet(elem, set) => {
                if let Some(set_ty) = self.infer(set)? {
                    match set_ty {
                        Type::Set(elem_ty) | Type::List(elem_ty) => {
                            self.check_against(elem, &elem_ty)
                        }
                        other => Err(self.error(format!(
                            "`member` used on a term of non-set type {}",
                            wol_model::display::render_type(&other)
                        ))),
                    }
                } else {
                    Ok(())
                }
            }
        }
    }
}

/// Check a clause for well-typedness against the given schemas, returning the
/// inferred type environment.
///
/// Schemas are searched in order; typically callers pass all source schemas
/// plus the target schema. Variables that cannot be assigned any type are
/// reported as errors (such clauses are also not range-restricted, but the
/// dedicated message here is more helpful).
pub fn check_clause_types(clause: &Clause, schemas: &[&Schema]) -> Result<TypeEnv> {
    let clause_id = clause
        .label
        .clone()
        .unwrap_or_else(|| "<unlabelled>".to_string());
    let mut checker = Checker {
        schemas,
        env: TypeEnv::new(),
        clause_id,
        changed: true,
    };
    // Iterate to a fixpoint: information can flow in either direction through
    // equality atoms, so a single pass is not enough.
    let mut rounds = 0usize;
    while checker.changed {
        checker.changed = false;
        for atom in clause.body.iter().chain(clause.head.iter()) {
            checker.check_atom(atom)?;
        }
        rounds += 1;
        if rounds > clause.len() + 2 {
            break;
        }
    }
    // Every variable must have received a type.
    for var in clause.variables() {
        if !checker.env.contains_key(&var) {
            return Err(LangError::Type {
                clause: checker.clause_id.clone(),
                message: format!("no type can be assigned to variable {var}"),
            });
        }
    }
    Ok(checker.env)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_clause;

    /// Source schema of Figure 2 (European cities and countries).
    fn euro_schema() -> Schema {
        Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            )
    }

    /// Source schema of Figure 1 (US cities and states), with a population
    /// attribute added for the paper's typing example.
    fn us_schema() -> Schema {
        Schema::new("us")
            .with_class(
                "CityA",
                Type::record([
                    ("name", Type::str()),
                    ("state", Type::class("StateA")),
                    ("population", Type::int()),
                ]),
            )
            .with_class(
                "StateA",
                Type::record([("name", Type::str()), ("capital", Type::class("CityA"))]),
            )
    }

    /// Target schema of Figure 3.
    fn target_schema() -> Schema {
        Schema::new("target")
            .with_class(
                "CityT",
                Type::record([
                    ("name", Type::str()),
                    (
                        "place",
                        Type::variant([
                            ("state", Type::class("StateT")),
                            ("euro_city", Type::class("CountryT")),
                        ]),
                    ),
                ]),
            )
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                    ("capital", Type::class("CityT")),
                ]),
            )
            .with_class(
                "StateT",
                Type::record([("name", Type::str()), ("capital", Type::class("CityT"))]),
            )
    }

    #[test]
    fn clause_c1_is_well_typed() {
        let us = us_schema();
        let clause = parse_clause("X.state = Y <= Y in StateA, X = Y.capital").unwrap();
        let env = check_clause_types(&clause, &[&us]).unwrap();
        assert_eq!(env["X"], Type::class("CityA"));
        assert_eq!(env["Y"], Type::class("StateA"));
    }

    #[test]
    fn clause_t1_is_well_typed() {
        let euro = euro_schema();
        let target = target_schema();
        let clause = parse_clause(
            "X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency \
             <= E in CountryE",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        assert_eq!(env["X"], Type::class("CountryT"));
        assert_eq!(env["E"], Type::class("CountryE"));
    }

    #[test]
    fn clause_t2_with_variant_is_well_typed() {
        let euro = euro_schema();
        let target = target_schema();
        let clause = parse_clause(
            "Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) \
             <= E in CityE, X in CountryT, X.name = E.country.name",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        assert_eq!(env["Y"], Type::class("CityT"));
        assert_eq!(env["X"], Type::class("CountryT"));
        assert_eq!(env["E"], Type::class("CityE"));
    }

    #[test]
    fn papers_ill_typed_example_rejected() {
        // "a clause containing the atom X < Y.population ... and an atom
        //  X in CityA would not be well-typed."
        let us = us_schema();
        let clause =
            parse_clause("Z = Y.name <= X in CityA, Y in StateA, X < Y.population").unwrap();
        // StateA has no population; use CityA's population but force X to be
        // both a city and an integer.
        let clause2 =
            parse_clause("Z = Y.name <= X in CityA, Y in CityA, X < Y.population").unwrap();
        assert!(check_clause_types(&clause, &[&us]).is_err());
        assert!(check_clause_types(&clause2, &[&us]).is_err());
    }

    #[test]
    fn projection_of_unknown_attribute_rejected() {
        let euro = euro_schema();
        let clause = parse_clause("N = E.population <= E in CityE").unwrap();
        let err = check_clause_types(&clause, &[&euro]).unwrap_err();
        assert!(err.to_string().contains("no attribute"));
    }

    #[test]
    fn unknown_class_rejected() {
        let euro = euro_schema();
        let clause = parse_clause("X in Nowhere <= E in CityE, X = E.name").unwrap();
        assert!(check_clause_types(&clause, &[&euro]).is_err());
    }

    #[test]
    fn skolem_terms_have_class_type() {
        let euro = euro_schema();
        let target = target_schema();
        let clause = parse_clause("Y = Mk_CountryT(N) <= Y in CountryT, N = Y.name").unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        assert_eq!(env["Y"], Type::class("CountryT"));
        assert_eq!(env["N"], Type::str());
    }

    #[test]
    fn skolem_of_unknown_class_rejected() {
        let euro = euro_schema();
        let clause = parse_clause("Y = Mk_Nowhere(N) <= E in CountryE, N = E.name").unwrap();
        assert!(check_clause_types(&clause, &[&euro]).is_err());
    }

    #[test]
    fn variant_label_must_exist() {
        let euro = euro_schema();
        let target = target_schema();
        let clause = parse_clause("Y.place = ins_planet(X) <= Y in CityT, X in CountryT").unwrap();
        let err = check_clause_types(&clause, &[&euro, &target]).unwrap_err();
        assert!(err.to_string().contains("ins_planet") || err.to_string().contains("planet"));
    }

    #[test]
    fn constants_are_checked() {
        let euro = euro_schema();
        let good = parse_clause("B = E.is_capital <= E in CityE, E.is_capital = true").unwrap();
        assert!(check_clause_types(&good, &[&euro]).is_ok());
        let bad = parse_clause("B = E.is_capital <= E in CityE, E.name = 42").unwrap();
        assert!(check_clause_types(&bad, &[&euro]).is_err());
    }

    #[test]
    fn untypeable_variable_reported() {
        let euro = euro_schema();
        let clause = parse_clause("X = Y <= E in CityE").unwrap();
        let err = check_clause_types(&clause, &[&euro]).unwrap_err();
        assert!(err.to_string().contains("no type can be assigned"));
    }

    #[test]
    fn boolean_comparison_in_body() {
        let euro = euro_schema();
        let clause = parse_clause(
            "X = Y <= X in CityE, Y in CityE, X.country = Y.country, \
             X.is_capital = true, Y.is_capital = true",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro]).unwrap();
        assert_eq!(env["X"], Type::class("CityE"));
        assert_eq!(env["Y"], Type::class("CityE"));
    }

    #[test]
    fn numeric_comparison_well_typed() {
        let us = us_schema();
        let clause =
            parse_clause("N = X.name <= X in CityA, Y in CityA, X.population < Y.population")
                .unwrap();
        assert!(check_clause_types(&clause, &[&us]).is_ok());
    }

    #[test]
    fn optional_fields_are_transparent() {
        let schema = Schema::new("s").with_class(
            "Marker",
            Type::record([
                ("name", Type::str()),
                ("position", Type::optional(Type::int())),
            ]),
        );
        let clause = parse_clause("P = M.position <= M in Marker, P = 3").unwrap();
        let env = check_clause_types(&clause, &[&schema]).unwrap();
        assert_eq!(env["M"], Type::class("Marker"));
    }

    #[test]
    fn record_term_fields_checked() {
        let target = target_schema();
        let clause = parse_clause(
            "X = Mk_CityT(name = N, country = C) <= X in CityT, N = X.name, C in CountryT",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&target]).unwrap();
        assert_eq!(env["N"], Type::str());
        assert_eq!(env["C"], Type::class("CountryT"));
    }
}
