//! # morphase
//!
//! The Morphase system (Section 5, Figure 6): "an enzyme (-ase) for morphing
//! data". Morphase takes a WOL transformation program, source database
//! instances and meta-data, and produces the target database:
//!
//! ```text
//! WOL transformation program + meta-data
//!        │  (metadata: auto-generate key constraints)          [metadata]
//!        ▼
//! Translator to snf                                             [wol_engine::snf]
//!        ▼
//! Normalization                                                 [wol_engine::normalize]
//!        ▼
//! Translator to CPL                                             [compile]
//!        ▼
//! CPL execution against the source DBs → target DB              [cpl]
//!        ▼
//! Verification of target constraints and keys                   [pipeline]
//! ```
//!
//! The [`pipeline::Morphase`] driver runs these stages, timing each one and
//! reporting program-size metrics — the quantities the paper's evaluation
//! discusses (compile time of normalised vs non-normalised programs, size of
//! the resulting normal-form program, effect of omitting constraints).

pub mod compile;
pub mod error;
pub mod metadata;
pub mod pipeline;
pub mod report;
pub mod schedule;

pub use compile::{compile_program, compile_program_with, PlanMode};
pub use error::MorphaseError;
pub use metadata::generate_key_clauses;
pub use pipeline::{
    DurabilityStats, DurableOptions, JoinStat, Morphase, MorphaseRun, PipelineOptions, QueryStat,
    StageTimings,
};
pub use report::render_report;
pub use schedule::{plan_schedule, QueryNode, QuerySchedule};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MorphaseError>;
