//! Vectorized batch-at-a-time execution over columnar extents.
//!
//! The row-at-a-time executor in [`crate::exec`] evaluates an interpreted
//! [`Expr`] per row, and every `x.attr` projection clones the whole object
//! value out of the instance before projecting one field. For the dominant
//! plan shape — scan → filter → project over one class — this module runs
//! the same semantics over the column-major derived storage of
//! [`wol_model::column`] instead:
//!
//! * **Extraction** ([`extract`]): a `Filter`/`Map` tower over a single
//!   `Scan` compiles into a [`Pipeline`] of stages over *atoms* — the
//!   scanned identity itself, a single-hop attribute column, or a constant.
//!   Anything richer (Skolems, record/variant construction, multi-hop
//!   projections, unknown variables, multi-source contexts) bails out to the
//!   row-at-a-time path, so coverage grows without risking semantics.
//! * **Selection vectors**: each worker walks its contiguous row range as a
//!   vector of surviving row ids; filter kernels evaluate tri-state
//!   (true / false / error) comparison results against column chunks and
//!   compact the vector. The tri-state replication matters: the row path
//!   turns a missing attribute into a `BadValue` error that predicates
//!   swallow as *false* and `Map` turns into a dropped row, and negation
//!   must *not* resurrect such rows.
//! * **Late materialization**: only rows surviving every stage are
//!   materialized into `Row`s (dictionary codes resolved back to strings,
//!   bit-identical to the values the row path would have produced), so join
//!   build/probe sides and insert evaluation downstream see the usual rows
//!   having paid columnar cost only for survivors.
//! * **Chunk-granular dispatch**: ranges come from the same
//!   [`wol_model::chunk_ranges`] morsel partitioning and run on the shared
//!   [`wol_model::WorkerPool`] via [`exec::run_partitioned`], with results
//!   reassembled in submission order. Per-stage survivor totals are
//!   partition-invariant, so the merged [`ExecStats`] equal the sequential
//!   and row-at-a-time ones at every thread count — the differential
//!   proptests in `tests/properties.rs` pin this down.
//!
//! The columnar path is on by default and can be disabled per context
//! ([`EvalCtx::set_columnar`]) or process-wide (`WOL_COLUMNAR=0`), which
//! keeps the row path alive as the differential baseline and the bench
//! comparison anchor.

use std::collections::BTreeMap;
use std::ops::Range;
use std::sync::Arc;

use wol_model::column::{AttrColumn, ColumnData, CHUNK_ROWS};
use wol_model::{chunk_ranges, ClassName, Label, Oid, RealVal, Value};

use crate::exec::{self, ExecStats};
use crate::expr::{EvalCtx, Expr, Row};
use crate::plan::Plan;
use crate::Result;

/// Tri-state predicate outcome, mirroring the row path's
/// `Ok(true) / Ok(false) / Err(BadValue)` trichotomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Tri {
    True,
    False,
    Err,
}

/// A leaf value source of a compiled pipeline.
#[derive(Clone, Debug, PartialEq)]
enum Atom {
    /// The scanned object identity itself (`Var(scan_var)`).
    SelfOid,
    /// Single-hop projection `scan_var.attr`; index into [`Pipeline::attrs`].
    Col(usize),
    /// A constant value.
    Const(Value),
}

#[derive(Clone, Copy, Debug)]
enum CmpOp {
    Eq,
    Neq,
    Lt,
    Leq,
}

/// A compiled predicate over atoms.
#[derive(Debug)]
enum PredNode {
    /// The atom must evaluate to a boolean (anything else errors the row).
    Truthy(usize),
    /// Comparison of two atoms.
    Cmp(CmpOp, usize, usize),
    /// Ordered conjunction: the first non-true conjunct decides.
    And(Vec<PredNode>),
    /// Negation; errors pass through un-negated.
    Not(Box<PredNode>),
}

/// One pipeline stage, innermost (nearest the scan) first.
#[derive(Debug)]
enum StageOp {
    /// Keep rows whose predicate is [`Tri::True`].
    Filter(PredNode),
    /// Bind names to atoms; a row with any missing binding atom is dropped
    /// (the row path's `BadValue`-drops-the-row rule).
    Map(Vec<(String, usize)>),
}

/// A scan→filter→project tower compiled for columnar execution.
#[derive(Debug)]
pub(crate) struct Pipeline {
    class: ClassName,
    attrs: Vec<Label>,
    atoms: Vec<Atom>,
    stages: Vec<StageOp>,
    /// Final row content: name → atom, including the scan variable unless a
    /// later binding shadowed it.
    outputs: Vec<(String, usize)>,
}

struct Compiler {
    scan_var: String,
    attrs: Vec<Label>,
    atoms: Vec<Atom>,
    aliases: BTreeMap<String, usize>,
}

impl Compiler {
    fn intern(&mut self, atom: Atom) -> usize {
        if let Some(i) = self.atoms.iter().position(|a| *a == atom) {
            return i;
        }
        self.atoms.push(atom);
        self.atoms.len() - 1
    }

    fn attr_id(&mut self, label: &str) -> usize {
        if let Some(i) = self.attrs.iter().position(|a| a == label) {
            return i;
        }
        self.attrs.push(label.to_string());
        self.attrs.len() - 1
    }

    /// Compile an expression to an atom, or `None` if it is out of scope for
    /// the columnar executor.
    fn atom_of(&mut self, e: &Expr) -> Option<usize> {
        match e {
            Expr::Var(v) => {
                if let Some(&a) = self.aliases.get(v) {
                    Some(a)
                } else if *v == self.scan_var {
                    Some(self.intern(Atom::SelfOid))
                } else {
                    None
                }
            }
            Expr::Const(v) => {
                let atom = Atom::Const(v.clone());
                Some(self.intern(atom))
            }
            Expr::Proj(base, label) => match &**base {
                // Single-hop projection off the (unshadowed) scan variable is
                // exactly what an attribute column answers.
                Expr::Var(v) if !self.aliases.contains_key(v) && *v == self.scan_var => {
                    let attr = self.attr_id(label);
                    Some(self.intern(Atom::Col(attr)))
                }
                _ => None,
            },
            _ => None,
        }
    }

    fn pred_of(&mut self, e: &Expr) -> Option<PredNode> {
        match e {
            Expr::And(conjuncts) => conjuncts
                .iter()
                .map(|c| self.pred_of(c))
                .collect::<Option<Vec<_>>>()
                .map(PredNode::And),
            Expr::Not(inner) => self.pred_of(inner).map(Box::new).map(PredNode::Not),
            Expr::Eq(a, b) => self.cmp_of(CmpOp::Eq, a, b),
            Expr::Neq(a, b) => self.cmp_of(CmpOp::Neq, a, b),
            Expr::Lt(a, b) => self.cmp_of(CmpOp::Lt, a, b),
            Expr::Leq(a, b) => self.cmp_of(CmpOp::Leq, a, b),
            other => self.atom_of(other).map(PredNode::Truthy),
        }
    }

    fn cmp_of(&mut self, op: CmpOp, a: &Expr, b: &Expr) -> Option<PredNode> {
        let a = self.atom_of(a)?;
        let b = self.atom_of(b)?;
        Some(PredNode::Cmp(op, a, b))
    }
}

/// Compile `plan` into a columnar pipeline, or `None` when any part of it is
/// out of scope (then the row-at-a-time executor handles it).
pub(crate) fn extract(plan: &Plan) -> Option<Pipeline> {
    enum Layer<'p> {
        F(&'p Expr),
        M(&'p [(String, Expr)]),
    }
    let mut layers = Vec::new();
    let mut cur = plan;
    let (class, scan_var) = loop {
        match cur {
            Plan::Filter { input, predicate } => {
                layers.push(Layer::F(predicate));
                cur = input;
            }
            Plan::Map { input, bindings } => {
                layers.push(Layer::M(bindings));
                cur = input;
            }
            Plan::Scan { class, var } => break (class.clone(), var.clone()),
            _ => return None,
        }
    };
    if layers.is_empty() {
        // A bare scan gains nothing from columnarization; leave it alone.
        return None;
    }
    layers.reverse();
    let mut compiler = Compiler {
        scan_var: scan_var.clone(),
        attrs: Vec::new(),
        atoms: Vec::new(),
        aliases: BTreeMap::new(),
    };
    let self_atom = compiler.intern(Atom::SelfOid);
    let mut stages = Vec::with_capacity(layers.len());
    for layer in layers {
        match layer {
            Layer::F(pred) => stages.push(StageOp::Filter(compiler.pred_of(pred)?)),
            Layer::M(bindings) => {
                let mut compiled = Vec::with_capacity(bindings.len());
                for (name, expr) in bindings {
                    let atom = compiler.atom_of(expr)?;
                    compiled.push((name.clone(), atom));
                    // Later expressions see this binding (including shadowing
                    // the scan variable), exactly like the row path's
                    // in-order row extension.
                    compiler.aliases.insert(name.clone(), atom);
                }
                stages.push(StageOp::Map(compiled));
            }
        }
    }
    let mut outputs: BTreeMap<String, usize> = BTreeMap::new();
    outputs.insert(scan_var, self_atom);
    for stage in &stages {
        if let StageOp::Map(bindings) = stage {
            for (name, atom) in bindings {
                outputs.insert(name.clone(), *atom);
            }
        }
    }
    Some(Pipeline {
        class,
        attrs: compiler.attrs,
        atoms: compiler.atoms,
        stages,
        outputs: outputs.into_iter().collect(),
    })
}

/// An atom lowered against the live instance (constant strings carry their
/// pre-resolved dictionary code so string-column equality is a `u32` compare).
enum RunAtom<'p> {
    SelfOid,
    Col(usize),
    Const(&'p Value),
    ConstStr { value: &'p Value, code: Option<u32> },
}

/// A typed view of one cell, borrowed from column storage.
enum Cell<'a> {
    Missing,
    Int(i64),
    Real(f64),
    Bool(bool),
    /// A string, as a dictionary code and/or a borrowed `&str` (at least one
    /// is always populated).
    Str {
        code: Option<u32>,
        s: Option<&'a str>,
    },
    Oid(&'a Oid),
    /// A non-scalar value from a boxed column or constant.
    Other(&'a Value),
}

fn cell_of_value(v: &Value) -> Cell<'_> {
    match v {
        Value::Int(i) => Cell::Int(*i),
        Value::Real(r) => Cell::Real(r.get()),
        Value::Bool(b) => Cell::Bool(*b),
        Value::Str(s) => Cell::Str {
            code: None,
            s: Some(s),
        },
        Value::Oid(o) => Cell::Oid(o),
        other => Cell::Other(other),
    }
}

/// A pipeline bound to one instance's columns, ready to run. Everything in
/// here is immutable shared data, so ranges can be evaluated from pool
/// workers without touching the `EvalCtx`.
struct BoundPipeline<'p> {
    pipe: &'p Pipeline,
    rows: Arc<Vec<Oid>>,
    cols: Vec<Arc<AttrColumn>>,
    dict: Arc<Vec<Arc<str>>>,
    atoms: Vec<RunAtom<'p>>,
}

impl<'p> BoundPipeline<'p> {
    fn cell(&self, atom: usize, row: usize) -> Cell<'_> {
        match &self.atoms[atom] {
            RunAtom::SelfOid => Cell::Oid(&self.rows[row]),
            RunAtom::Const(v) => cell_of_value(v),
            RunAtom::ConstStr { value, code } => match value {
                Value::Str(s) => Cell::Str {
                    code: *code,
                    s: Some(s),
                },
                _ => unreachable!("ConstStr always wraps a string"),
            },
            RunAtom::Col(c) => {
                let (chunk, local) = self.cols[*c].locate(row);
                if chunk.is_missing(local) {
                    return Cell::Missing;
                }
                match chunk.data() {
                    ColumnData::Int(v) => Cell::Int(v[local]),
                    ColumnData::Real(v) => Cell::Real(v[local]),
                    ColumnData::Bool(v) => Cell::Bool(v[local]),
                    ColumnData::Str(v) => Cell::Str {
                        code: Some(v[local]),
                        s: None,
                    },
                    ColumnData::Oid(v) => Cell::Oid(&v[local]),
                    ColumnData::Boxed(v) => cell_of_value(&v[local]),
                }
            }
        }
    }

    fn atom_present(&self, atom: usize, row: usize) -> bool {
        match &self.atoms[atom] {
            RunAtom::Col(c) => {
                let (chunk, local) = self.cols[*c].locate(row);
                !chunk.is_missing(local)
            }
            _ => true,
        }
    }

    fn str_of<'a>(&'a self, code: Option<u32>, s: Option<&'a str>) -> &'a str {
        match s {
            Some(s) => s,
            None => &self.dict[code.expect("string cell carries code or str") as usize],
        }
    }

    /// Equality with the row path's `Value` semantics: strict variant
    /// equality (`Int(1) != Real(1.0)`), reals by total order, kind
    /// mismatches are `false`, never errors.
    fn cell_eq(&self, a: &Cell<'_>, b: &Cell<'_>) -> bool {
        match (a, b) {
            (Cell::Int(x), Cell::Int(y)) => x == y,
            (Cell::Real(x), Cell::Real(y)) => RealVal(*x) == RealVal(*y),
            (Cell::Bool(x), Cell::Bool(y)) => x == y,
            (Cell::Str { code: ca, s: sa }, Cell::Str { code: cb, s: sb }) => match (ca, cb) {
                // Codes come from the one shared dictionary: comparable directly.
                (Some(x), Some(y)) => x == y,
                _ => self.str_of(*ca, *sa) == self.str_of(*cb, *sb),
            },
            (Cell::Oid(x), Cell::Oid(y)) => x == y,
            (Cell::Other(x), Cell::Other(y)) => x == y,
            _ => false,
        }
    }

    /// Ordering with the row path's `compare` semantics: ints, reals and
    /// strings compare (ints promote against reals); everything else is an
    /// evaluation error.
    fn cell_cmp(&self, a: &Cell<'_>, b: &Cell<'_>) -> Option<std::cmp::Ordering> {
        match (a, b) {
            (Cell::Int(x), Cell::Int(y)) => Some(x.cmp(y)),
            (Cell::Real(x), Cell::Real(y)) => Some(RealVal(*x).cmp(&RealVal(*y))),
            (Cell::Int(x), Cell::Real(y)) => Some(RealVal(*x as f64).cmp(&RealVal(*y))),
            (Cell::Real(x), Cell::Int(y)) => Some(RealVal(*x).cmp(&RealVal(*y as f64))),
            (Cell::Str { code: ca, s: sa }, Cell::Str { code: cb, s: sb }) => {
                Some(self.str_of(*ca, *sa).cmp(self.str_of(*cb, *sb)))
            }
            _ => None,
        }
    }

    fn eval_cmp(&self, op: CmpOp, a: usize, b: usize, rows: &[u32]) -> Vec<Tri> {
        rows.iter()
            .map(|&r| {
                let ca = self.cell(a, r as usize);
                let cb = self.cell(b, r as usize);
                if matches!(ca, Cell::Missing) || matches!(cb, Cell::Missing) {
                    return Tri::Err;
                }
                match op {
                    CmpOp::Eq => Tri::from_bool(self.cell_eq(&ca, &cb)),
                    CmpOp::Neq => Tri::from_bool(!self.cell_eq(&ca, &cb)),
                    CmpOp::Lt => match self.cell_cmp(&ca, &cb) {
                        Some(ord) => Tri::from_bool(ord.is_lt()),
                        None => Tri::Err,
                    },
                    CmpOp::Leq => match self.cell_cmp(&ca, &cb) {
                        Some(ord) => Tri::from_bool(ord.is_le()),
                        None => Tri::Err,
                    },
                }
            })
            .collect()
    }

    fn eval_pred(&self, pred: &PredNode, rows: &[u32]) -> Vec<Tri> {
        match pred {
            PredNode::Truthy(a) => rows
                .iter()
                .map(|&r| match self.cell(*a, r as usize) {
                    Cell::Bool(b) => Tri::from_bool(b),
                    _ => Tri::Err,
                })
                .collect(),
            PredNode::Cmp(op, a, b) => self.eval_cmp(*op, *a, *b, rows),
            PredNode::Not(inner) => self
                .eval_pred(inner, rows)
                .into_iter()
                .map(|t| match t {
                    Tri::True => Tri::False,
                    Tri::False => Tri::True,
                    Tri::Err => Tri::Err,
                })
                .collect(),
            PredNode::And(conjuncts) => {
                // Ordered short-circuit: evaluate each conjunct only for the
                // rows every earlier conjunct passed; the first non-true
                // conjunct decides the row (errors included), as in the row
                // path's left-to-right `And`.
                let mut out = vec![Tri::True; rows.len()];
                let mut active: Vec<usize> = (0..rows.len()).collect();
                for conjunct in conjuncts {
                    if active.is_empty() {
                        break;
                    }
                    let sub: Vec<u32> = active.iter().map(|&i| rows[i]).collect();
                    let tris = self.eval_pred(conjunct, &sub);
                    let mut still = Vec::with_capacity(active.len());
                    for (&i, tri) in active.iter().zip(tris) {
                        match tri {
                            Tri::True => still.push(i),
                            other => out[i] = other,
                        }
                    }
                    active = still;
                }
                out
            }
        }
    }

    /// Run every stage over one contiguous row range, returning per-stage
    /// survivor counts and the surviving selection vector.
    fn run_range(&self, range: Range<usize>) -> (Vec<usize>, Vec<u32>) {
        let mut sel: Vec<u32> = (range.start as u32..range.end as u32).collect();
        let mut counts = Vec::with_capacity(self.pipe.stages.len());
        for stage in &self.pipe.stages {
            match stage {
                StageOp::Filter(pred) => {
                    let tris = self.eval_pred(pred, &sel);
                    let mut kept = Vec::with_capacity(sel.len());
                    for (i, &r) in sel.iter().enumerate() {
                        if tris[i] == Tri::True {
                            kept.push(r);
                        }
                    }
                    sel = kept;
                }
                StageOp::Map(bindings) => {
                    sel.retain(|&r| {
                        bindings
                            .iter()
                            .all(|(_, atom)| self.atom_present(*atom, r as usize))
                    });
                }
            }
            counts.push(sel.len());
        }
        (counts, sel)
    }

    fn value_of(&self, atom: usize, row: usize) -> Value {
        match &self.atoms[atom] {
            RunAtom::SelfOid => Value::Oid(self.rows[row].clone()),
            RunAtom::Const(v) => (*v).clone(),
            RunAtom::ConstStr { value, .. } => (*value).clone(),
            RunAtom::Col(c) => self.cols[*c]
                .value_at(row, &self.dict)
                .expect("surviving rows carry every output attribute"),
        }
    }

    /// Late materialization: build output rows only for survivors.
    fn materialize(&self, sel: &[u32]) -> Vec<Row> {
        sel.iter()
            .map(|&r| {
                let mut row = Row::new();
                for (name, atom) in &self.pipe.outputs {
                    row.insert(name.clone(), self.value_of(*atom, r as usize));
                }
                row
            })
            .collect()
    }
}

impl Tri {
    fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }
}

/// Try to answer `plan` through the columnar executor. `Ok(None)` means the
/// plan (or context) is out of scope and the row-at-a-time path must run.
pub(crate) fn try_run(
    plan: &Plan,
    ctx: &mut EvalCtx<'_>,
    stats: &mut ExecStats,
) -> Result<Option<Vec<Row>>> {
    if !ctx.columnar_enabled() || ctx.sources().len() != 1 {
        return Ok(None);
    }
    // Delta evaluation narrows scans to restricted identity sets; the
    // vectorized pipeline reads whole column chunks, so defer to `run_plan`
    // where the restriction applies per scan.
    if ctx.has_scan_restrictions() {
        return Ok(None);
    }
    let Some(pipe) = extract(plan) else {
        return Ok(None);
    };
    let instance = ctx.sources()[0];
    let rows = instance.class_row_index(&pipe.class);
    let cols: Vec<Arc<AttrColumn>> = pipe
        .attrs
        .iter()
        .map(|attr| instance.attr_column(&pipe.class, attr))
        .collect();
    let dict = instance.dict_strings();
    let atoms: Vec<RunAtom<'_>> = pipe
        .atoms
        .iter()
        .map(|atom| match atom {
            Atom::SelfOid => RunAtom::SelfOid,
            Atom::Col(c) => RunAtom::Col(*c),
            Atom::Const(v @ Value::Str(s)) => RunAtom::ConstStr {
                value: v,
                code: instance.dict_code(s),
            },
            Atom::Const(v) => RunAtom::Const(v),
        })
        .collect();
    let bound = BoundPipeline {
        pipe: &pipe,
        rows: rows.clone(),
        cols,
        dict,
        atoms,
    };
    let n = rows.len();
    // Scan accounting, exactly as the row path's `Scan` arm records it.
    stats.rows_scanned += n;
    stats.record_operator_output(n);
    ctx.record_columnar(n, bound.cols.len().max(1) * n.div_ceil(CHUNK_ROWS));

    let no_exprs = std::iter::empty::<&Expr>();
    let (stage_totals, out_rows) = match exec::parallel_workers(ctx, n, false, no_exprs) {
        Some(workers) => {
            let bound = &bound;
            let (parts, _claims) = exec::run_partitioned(
                ctx,
                stats,
                chunk_ranges(n, workers),
                false,
                move |range: Range<usize>, _wctx, ws: &mut ExecStats| {
                    ws.rows_scanned += range.len();
                    ws.record_operator_output(range.len());
                    let (counts, sel) = bound.run_range(range);
                    for &c in &counts {
                        ws.record_operator_output(c);
                    }
                    Ok((counts, bound.materialize(&sel)))
                },
            )?;
            let mut totals = vec![0usize; pipe.stages.len()];
            let mut merged = Vec::new();
            for (counts, chunk_rows) in parts {
                for (slot, c) in totals.iter_mut().zip(counts) {
                    *slot += c;
                }
                merged.extend(chunk_rows);
            }
            (totals, merged)
        }
        None => {
            let (counts, sel) = bound.run_range(0..n);
            let rows = bound.materialize(&sel);
            (counts, rows)
        }
    };
    // Per-stage outputs, recorded once over the merged totals — the same
    // trailing accounting each row-path operator performs.
    for &count in &stage_totals {
        stats.record_operator_output(count);
    }
    Ok(Some(out_rows))
}
