//! Experiment E6 — the Morphase pipeline (Figure 6) stage by stage.
//!
//! The paper evaluates Morphase "in terms of ease of use, compilation time,
//! and size and complexity of the resulting normal form program" and notes
//! that many constraints are generated automatically from meta-data. This
//! bench times the full pipeline on the Cities and genome-style workloads and
//! prints the per-stage breakdown plus the auto-generated clause counts.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::{render_report, Morphase};
use workloads::cities::{generate_euro, CitiesWorkload};
use workloads::genome::{self, GenomeParams};

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pipeline");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let workload = CitiesWorkload::new();
    let cities_program = workload.euro_program();
    let cities_source = generate_euro(50, 5, 9);
    group.bench_function(BenchmarkId::new("cities", "50x5"), |b| {
        b.iter(|| {
            Morphase::new()
                .transform(&cities_program, &[&cities_source][..])
                .expect("runs")
        })
    });

    let genome_program = genome::program();
    let genome_source = genome::generate_source(&GenomeParams {
        clones: 100,
        markers: 300,
        density: 0.6,
        seed: 22,
    });
    group.bench_function(BenchmarkId::new("genome", "100c_300m"), |b| {
        b.iter(|| {
            Morphase::new()
                .transform(&genome_program, &[&genome_source][..])
                .expect("runs")
        })
    });
    group.finish();

    // Per-stage report (Figure 6 stages) for the genome run.
    let genome_run = Morphase::new()
        .transform(&genome_program, &[&genome_source][..])
        .unwrap();
    eprintln!(
        "[E6] genome warehouse load:\n{}",
        render_report(&genome_run)
    );
    let cities_run = Morphase::new()
        .transform(&cities_program, &[&cities_source][..])
        .unwrap();
    eprintln!("[E6] cities integration:\n{}", render_report(&cities_run));

    // Machine-readable summary for cross-PR tracking of the execute phase —
    // the cross-product elimination shows up as `max_intermediate_rows`
    // (formerly ~23M on the genome workload) and non-zero `index_probes`.
    let summarise = |run: &morphase::MorphaseRun| {
        bench::BenchJson::new()
            .num("execute_secs", run.timings.execute.as_secs_f64())
            .num("total_secs", run.timings.total().as_secs_f64())
            .int("rows_scanned", run.exec.rows_scanned as u64)
            .int("rows_produced", run.exec.rows_produced as u64)
            .int("rows_output", run.exec.rows_output as u64)
            .int(
                "max_intermediate_rows",
                run.exec.max_intermediate_rows as u64,
            )
            .int("index_probes", run.exec.index_probes as u64)
            .int("objects_written", run.exec.objects_written as u64)
            .int("estimated_rows", run.estimated_rows.iter().sum())
    };
    bench::BenchJson::new()
        .str("bench", "e6_pipeline")
        .obj("genome_100c_300m", summarise(&genome_run))
        .obj("cities_50x5", summarise(&cities_run))
        .stamped()
        .write("BENCH_e6.json");
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
