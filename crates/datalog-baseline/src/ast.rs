//! Rule language of the Datalog/ILOG baseline.

use std::collections::BTreeSet;
use std::fmt;

use wol_model::Value;

/// A term of the baseline language: a variable, a constant, or an ILOG-style
/// Skolem term creating an object identity from the argument values.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum DatalogTerm {
    /// A variable.
    Var(String),
    /// A constant value.
    Const(Value),
    /// A Skolem function named `name` applied to argument terms.
    Skolem(String, Vec<DatalogTerm>),
}

impl DatalogTerm {
    /// Variable helper.
    pub fn var(name: impl Into<String>) -> Self {
        DatalogTerm::Var(name.into())
    }

    /// Constant helper.
    pub fn constant(value: impl Into<Value>) -> Self {
        DatalogTerm::Const(value.into())
    }

    /// Collect the variables of this term.
    pub fn variables(&self, out: &mut BTreeSet<String>) {
        match self {
            DatalogTerm::Var(v) => {
                out.insert(v.clone());
            }
            DatalogTerm::Const(_) => {}
            DatalogTerm::Skolem(_, args) => args.iter().for_each(|a| a.variables(out)),
        }
    }
}

impl fmt::Display for DatalogTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogTerm::Var(v) => write!(f, "{v}"),
            DatalogTerm::Const(c) => write!(f, "{}", wol_model::display::render_value(c)),
            DatalogTerm::Skolem(name, args) => {
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// An atom: a predicate applied to positional terms. The positional syntax is
/// one of the paper's criticisms of Datalog-style languages for wide records
/// ("a positional representation of attributes, making the syntax unsuitable
/// for dealing with relations with lots of attributes").
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct DatalogAtom {
    /// Predicate (relation) name.
    pub predicate: String,
    /// Positional argument terms.
    pub terms: Vec<DatalogTerm>,
}

impl DatalogAtom {
    /// Build an atom.
    pub fn new(predicate: impl Into<String>, terms: Vec<DatalogTerm>) -> Self {
        DatalogAtom {
            predicate: predicate.into(),
            terms,
        }
    }

    /// The variables of the atom.
    pub fn variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.terms.iter().for_each(|t| t.variables(&mut out));
        out
    }
}

impl fmt::Display for DatalogAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.predicate)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A rule `head :- body`. The head must be completely determined by the body
/// (every head variable occurs in the body), which is exactly the
/// complete-clause restriction the paper contrasts WOL with.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DatalogRule {
    /// Head atom.
    pub head: DatalogAtom,
    /// Body atoms.
    pub body: Vec<DatalogAtom>,
}

impl DatalogRule {
    /// Build a rule.
    pub fn new(head: DatalogAtom, body: Vec<DatalogAtom>) -> Self {
        DatalogRule { head, body }
    }

    /// Check range restriction: every head variable must occur in the body.
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: BTreeSet<String> = self.body.iter().flat_map(|a| a.variables()).collect();
        self.head.variables().iter().all(|v| body_vars.contains(v))
    }
}

impl fmt::Display for DatalogRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ".")
    }
}

/// A program: a set of rules.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DatalogProgram {
    /// The rules.
    pub rules: Vec<DatalogRule>,
}

impl DatalogProgram {
    /// Build a program.
    pub fn new(rules: Vec<DatalogRule>) -> Self {
        DatalogProgram { rules }
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Total number of atoms (a size metric comparable to WOL program stats).
    pub fn atom_count(&self) -> usize {
        self.rules.iter().map(|r| 1 + r.body.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_variables() {
        let rule = DatalogRule::new(
            DatalogAtom::new(
                "obj",
                vec![
                    DatalogTerm::Skolem("mk_obj".to_string(), vec![DatalogTerm::var("N")]),
                    DatalogTerm::var("N"),
                    DatalogTerm::constant("yes"),
                ],
            ),
            vec![DatalogAtom::new(
                "src",
                vec![DatalogTerm::var("N"), DatalogTerm::constant(true)],
            )],
        );
        assert!(rule.is_range_restricted());
        let rendered = rule.to_string();
        assert!(rendered.contains("obj(mk_obj(N), N, \"yes\") :- src(N, True)."));
        let program = DatalogProgram::new(vec![rule]);
        assert_eq!(program.len(), 1);
        assert!(!program.is_empty());
        assert_eq!(program.atom_count(), 2);
    }

    #[test]
    fn unrestricted_rule_detected() {
        let rule = DatalogRule::new(
            DatalogAtom::new("p", vec![DatalogTerm::var("X"), DatalogTerm::var("Y")]),
            vec![DatalogAtom::new("q", vec![DatalogTerm::var("X")])],
        );
        assert!(!rule.is_range_restricted());
    }
}
