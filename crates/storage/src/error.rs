//! Errors raised by the storage adapters.

use std::fmt;

/// Errors from loading or dumping data through the storage substrates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A row has the wrong number of values or a value of the wrong type.
    BadRow(String),
    /// A referenced table, column or object does not exist.
    Missing(String),
    /// A foreign-key-style reference could not be resolved while importing.
    UnresolvedReference(String),
    /// A CSV line could not be parsed.
    Csv(String),
    /// An error bubbled up from the data model.
    Model(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::BadRow(m) => write!(f, "bad row: {m}"),
            StorageError::Missing(m) => write!(f, "missing: {m}"),
            StorageError::UnresolvedReference(m) => write!(f, "unresolved reference: {m}"),
            StorageError::Csv(m) => write!(f, "csv error: {m}"),
            StorageError::Model(m) => write!(f, "data model error: {m}"),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<wol_model::ModelError> for StorageError {
    fn from(e: wol_model::ModelError) -> Self {
        StorageError::Model(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(StorageError::BadRow("x".into())
            .to_string()
            .contains("bad row"));
        assert!(StorageError::Csv("y".into()).to_string().contains("csv"));
        let e: StorageError = wol_model::ModelError::Invalid("z".into()).into();
        assert!(matches!(e, StorageError::Model(_)));
    }
}
