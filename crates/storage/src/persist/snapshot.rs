//! Checksummed, versioned binary snapshots of an instance plus its
//! Skolem-factory state.
//!
//! ```text
//! snapshot := magic:"WOLSNAP\0"  version:u32le  body  crc:u32le
//! body     := schema_name:str
//!             class_count:varint  (class:str  obj_count:varint  (id:varint value)* )*
//!             oid_counter_count:varint  (class:str  count:varint)*
//!             skolem_class_count:varint (class:str entry_count:varint (key:value oid)*)*
//!             skolem_counter_count:varint  (class:str  count:varint)*
//!             wal_seq:varint
//!             has_meta:u8  [fingerprint:u64le  completed:varint]
//! ```
//!
//! The trailing CRC-32 covers *everything* before it (magic and version
//! included), so a truncated or bit-flipped snapshot is always rejected at
//! load with an offset-carrying [`StorageError::Corrupt`]. Saves are atomic:
//! write to a `.tmp` sibling, sync, then rename over the target — a crash
//! mid-save leaves the previous snapshot untouched.

use std::fs;
use std::io::Write;
use std::path::Path;

use wol_model::{ClassName, Instance, Oid, SkolemState};

use crate::error::StorageError;
use crate::persist::codec::{self, ByteReader};
use crate::persist::fault::{FaultPolicy, FaultyFile};
use crate::Result;

/// The snapshot file magic.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"WOLSNAP\0";

/// Current snapshot format version. Bump when any field layout changes; the
/// loader rejects versions it does not know.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Durable-pipeline progress carried inside a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineMeta {
    /// Fingerprint of the compiled program the journal belongs to; a
    /// mismatch on recovery means the program changed and the journal must
    /// be reset rather than resumed.
    pub fingerprint: u64,
    /// Number of leading queries whose effects the snapshot already holds.
    pub completed: u64,
}

/// A decoded snapshot: the restored instance and everything needed to resume
/// appending to its WAL.
#[derive(Clone, Debug, PartialEq)]
pub struct SnapshotData {
    /// The restored instance (extents, values, and fresh-identity counters;
    /// index and histogram caches rebuild lazily).
    pub instance: Instance,
    /// The Skolem factory state at snapshot time.
    pub skolem: SkolemState,
    /// Sequence number the next WAL batch after this snapshot must carry.
    pub wal_seq: u64,
    /// Durable-pipeline progress, when the snapshot belongs to a journal.
    pub meta: Option<PipelineMeta>,
}

/// Encode a snapshot image.
pub fn encode_snapshot(
    instance: &Instance,
    skolem: &SkolemState,
    wal_seq: u64,
    meta: Option<PipelineMeta>,
) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(SNAPSHOT_MAGIC);
    codec::put_u32(&mut out, SNAPSHOT_VERSION);
    codec::put_str(&mut out, instance.schema_name());
    // Per-class object sections, in class order (BTreeMap-backed, so stable).
    let classes = instance.populated_classes();
    codec::put_varint(&mut out, classes.len() as u64);
    for class in &classes {
        codec::put_str(&mut out, class.as_str());
        codec::put_varint(&mut out, instance.extent_size(class) as u64);
        for (oid, value) in instance.objects(class) {
            codec::put_varint(&mut out, oid.id());
            codec::put_value(&mut out, value);
        }
    }
    // Fresh-identity counters (the full map, not just populated classes:
    // a class can be emptied by removals yet must keep minting fresh ids).
    let counters: Vec<_> = instance.oid_counters().collect();
    codec::put_varint(&mut out, counters.len() as u64);
    for (class, count) in counters {
        codec::put_str(&mut out, class.as_str());
        codec::put_varint(&mut out, count);
    }
    // Skolem memo table and counters.
    codec::put_varint(&mut out, skolem.assigned.len() as u64);
    for (class, entries) in &skolem.assigned {
        codec::put_str(&mut out, class.as_str());
        codec::put_varint(&mut out, entries.len() as u64);
        for (key, oid) in entries {
            codec::put_value(&mut out, key);
            codec::put_oid(&mut out, oid);
        }
    }
    codec::put_varint(&mut out, skolem.counters.len() as u64);
    for (class, count) in &skolem.counters {
        codec::put_str(&mut out, class.as_str());
        codec::put_varint(&mut out, *count);
    }
    codec::put_varint(&mut out, wal_seq);
    match meta {
        Some(meta) => {
            out.push(1);
            codec::put_u64(&mut out, meta.fingerprint);
            codec::put_varint(&mut out, meta.completed);
        }
        None => out.push(0),
    }
    let crc = codec::crc32(&out);
    codec::put_u32(&mut out, crc);
    out
}

/// Decode and verify a snapshot image.
pub fn decode_snapshot(bytes: &[u8], source: &str) -> Result<SnapshotData> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(StorageError::corrupt_at_offset(
            source,
            0,
            format!("a snapshot of at least {} bytes", SNAPSHOT_MAGIC.len() + 8),
            format!("{} bytes", bytes.len()),
        ));
    }
    // Verify the whole-file checksum before decoding anything.
    let (covered, trailer) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().expect("4 bytes"));
    let actual = codec::crc32(covered);
    if stored != actual {
        return Err(StorageError::corrupt_at_offset(
            source,
            covered.len() as u64,
            format!("checksum {actual:#010x}"),
            format!("checksum {stored:#010x}"),
        ));
    }
    let mut r = ByteReader::new(covered, source);
    let magic = r.take(SNAPSHOT_MAGIC.len())?;
    if magic != SNAPSHOT_MAGIC {
        return Err(StorageError::corrupt_at_offset(
            source,
            0,
            "magic \"WOLSNAP\\0\"",
            format!("{magic:02x?}"),
        ));
    }
    let version = r.u32()?;
    if version != SNAPSHOT_VERSION {
        return Err(StorageError::corrupt_at_offset(
            source,
            SNAPSHOT_MAGIC.len() as u64,
            format!("snapshot format version {SNAPSHOT_VERSION}"),
            format!("version {version}"),
        ));
    }
    let schema_name = r.str()?;
    let mut instance = Instance::new(schema_name);
    let class_count = r.varint()?;
    for _ in 0..class_count {
        let class = ClassName::new(r.str()?);
        instance.ensure_class(&class);
        let obj_count = r.varint()?;
        // Decode the whole class section first and insert it in one batch:
        // `bulk_insert` pays the cache-invalidation and extent lookup once
        // per class instead of once per object, which dominates load time
        // for large snapshots (see the e9 recovery benchmark). The count is
        // untrusted file input, so cap the preallocation.
        let mut objects = Vec::with_capacity(obj_count.min(65_536) as usize);
        for _ in 0..obj_count {
            let id = r.varint()?;
            let value = r.value()?;
            objects.push((Oid::new(class.clone(), id), value));
        }
        instance.bulk_insert(&class, objects).map_err(|e| {
            StorageError::corrupt_at_offset(
                source,
                r.pos() as u64,
                "distinct object identities",
                e.to_string(),
            )
        })?;
    }
    let counter_count = r.varint()?;
    for _ in 0..counter_count {
        let class = ClassName::new(r.str()?);
        let count = r.varint()?;
        instance.restore_oid_counter(&class, count);
    }
    let mut skolem = SkolemState::default();
    let skolem_class_count = r.varint()?;
    for _ in 0..skolem_class_count {
        let class = ClassName::new(r.str()?);
        let entry_count = r.varint()?;
        let entries = skolem.assigned.entry(class).or_default();
        for _ in 0..entry_count {
            let key = r.value()?;
            let oid = r.oid()?;
            entries.insert(key, oid);
        }
    }
    let skolem_counter_count = r.varint()?;
    for _ in 0..skolem_counter_count {
        let class = ClassName::new(r.str()?);
        let count = r.varint()?;
        skolem.counters.insert(class, count);
    }
    let wal_seq = r.varint()?;
    let meta = match r.u8()? {
        0 => None,
        1 => Some(PipelineMeta {
            fingerprint: r.u64()?,
            completed: r.varint()?,
        }),
        other => {
            return Err(r.corrupt("a meta flag of 0 or 1", format!("{other}")));
        }
    };
    if !r.is_at_end() {
        return Err(r.corrupt(
            "end of snapshot body",
            format!("{} trailing bytes", r.remaining()),
        ));
    }
    Ok(SnapshotData {
        instance,
        skolem,
        wal_seq,
        meta,
    })
}

/// Atomically save a snapshot image to `path`: write a `.tmp` sibling
/// (through the fault shim, if a policy is given), sync it, then rename it
/// over the target. On any failure the previous snapshot at `path` is left
/// untouched.
pub fn save_snapshot_file(path: &Path, bytes: &[u8], fault: Option<FaultPolicy>) -> Result<()> {
    let display = path.display().to_string();
    let tmp = path.with_extension("tmp");
    let result = (|| -> std::io::Result<()> {
        let file = fs::File::create(&tmp)?;
        let mut sink = match fault {
            Some(policy) => FaultyFile::with_policy(file, policy),
            None => FaultyFile::new(file),
        };
        sink.write_all(bytes)?;
        sink.flush()?;
        sink.get_ref().sync_all()?;
        fs::rename(&tmp, path)
    })();
    if let Err(e) = result {
        let _ = fs::remove_file(&tmp);
        return Err(StorageError::io(&display, e));
    }
    Ok(())
}

/// Load and verify the snapshot at `path`. `Ok(None)` when the file does not
/// exist (a fresh store); corruption is an error, never silently ignored.
pub fn load_snapshot_file(path: &Path) -> Result<Option<SnapshotData>> {
    let display = path.display().to_string();
    let bytes = match fs::read(path) {
        Ok(bytes) => bytes,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(StorageError::io(&display, e)),
    };
    decode_snapshot(&bytes, &display).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_model::{SkolemFactory, Value};

    fn sample_instance() -> (Instance, SkolemFactory) {
        let mut instance = Instance::new("genome");
        let clone = ClassName::new("CloneT");
        let marker = ClassName::new("MarkerT");
        let mut skolem = SkolemFactory::new();
        for i in 0..5 {
            let key = Value::str(format!("c{i}"));
            let oid = skolem.mk(&clone, &key);
            instance
                .insert(
                    oid.clone(),
                    Value::record([
                        ("name", key),
                        ("length", Value::int(1000 + i)),
                        ("tags", Value::set([Value::str("seq"), Value::int(i)])),
                    ]),
                )
                .unwrap();
        }
        let m = skolem.mk(&marker, &Value::str("m0"));
        instance
            .insert(m, Value::record([("name", Value::str("m0"))]))
            .unwrap();
        // An emptied class still keeps its fresh-identity counter.
        let ghost = instance.insert_fresh(&ClassName::new("GhostT"), Value::Unit);
        instance.remove(&ghost);
        (instance, skolem)
    }

    #[test]
    fn snapshot_round_trips_bit_identically() {
        let (instance, skolem) = sample_instance();
        let meta = Some(PipelineMeta {
            fingerprint: 0x1234_5678_9ABC_DEF0,
            completed: 3,
        });
        let bytes = encode_snapshot(&instance, &skolem.export_state(), 7, meta);
        let data = decode_snapshot(&bytes, "<t>").unwrap();
        assert_eq!(data.instance.deep_eq_report(&instance), None);
        assert_eq!(data.instance, instance);
        assert_eq!(data.skolem, skolem.export_state());
        assert_eq!(data.wal_seq, 7);
        assert_eq!(data.meta, meta);
        // Re-encoding the decoded state reproduces the same bytes.
        let restored = SkolemFactory::from_state(data.skolem.clone());
        assert_eq!(
            encode_snapshot(&data.instance, &restored.export_state(), 7, meta),
            bytes
        );
    }

    #[test]
    fn truncation_at_every_offset_is_detected() {
        let (instance, skolem) = sample_instance();
        let bytes = encode_snapshot(&instance, &skolem.export_state(), 0, None);
        for cut in 0..bytes.len() {
            let err = decode_snapshot(&bytes[..cut], "<t>").unwrap_err();
            assert!(
                matches!(err, StorageError::Corrupt { .. }),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let (instance, skolem) = sample_instance();
        let bytes = encode_snapshot(&instance, &skolem.export_state(), 2, None);
        // Flip one bit in every byte (including the trailer itself).
        for at in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[at] ^= 1 << (at % 8);
            assert!(decode_snapshot(&corrupt, "<t>").is_err(), "flip at {at}");
        }
    }

    #[test]
    fn unknown_version_rejected() {
        let (instance, skolem) = sample_instance();
        let mut bytes = encode_snapshot(&instance, &skolem.export_state(), 0, None);
        // Patch the version field and fix up the trailer checksum.
        bytes[8] = 99;
        let body_len = bytes.len() - 4;
        let crc = codec::crc32(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let err = decode_snapshot(&bytes, "<t>").unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
    }

    #[test]
    fn atomic_save_survives_a_crash_mid_write() {
        let dir = std::env::temp_dir().join(format!("wol-snap-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("store.snap");
        let (instance, skolem) = sample_instance();
        let first = encode_snapshot(&instance, &skolem.export_state(), 0, None);
        save_snapshot_file(&path, &first, None).unwrap();

        // A crash while writing the replacement leaves the original intact.
        let mut bigger = instance.clone();
        bigger.insert_fresh(
            &ClassName::new("CloneT"),
            Value::record([("name", Value::Unit)]),
        );
        let second = encode_snapshot(&bigger, &skolem.export_state(), 1, None);
        let err = save_snapshot_file(&path, &second, Some(FaultPolicy::torn_at(10)));
        assert!(err.is_err());
        let data = load_snapshot_file(&path).unwrap().unwrap();
        assert_eq!(data.instance.deep_eq_report(&instance), None);

        // A successful save replaces it.
        save_snapshot_file(&path, &second, None).unwrap();
        let data = load_snapshot_file(&path).unwrap().unwrap();
        assert_eq!(data.instance.deep_eq_report(&bigger), None);
        assert_eq!(load_snapshot_file(&dir.join("absent.snap")).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }
}
