//! Surrogate keys and Skolem object creation (Section 2.2).
//!
//! A *key specification* assigns to each class a function from its objects to
//! key values that do not involve object identities. An instance *satisfies*
//! the specification iff distinct objects of a class always have distinct key
//! values. The [`SkolemFactory`] implements the paper's `Mk_C(...)` functions:
//! it deterministically creates (and memoises) an object identity for each
//! distinct key value of a class.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ModelError;
use crate::instance::Instance;
use crate::oid::Oid;
use crate::path::Path;
use crate::types::{ClassName, Label};
use crate::values::Value;
use crate::Result;

/// An expression describing how to compute a key value from an object.
///
/// Key expressions mirror the paper's Example 2.3: the key of a `CountryE`
/// is `x.name`, and the key of a `CityE` is the record
/// `(name = x.name, country_name = x.country.name)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KeyExpr {
    /// Project an attribute path from the object's value, dereferencing object
    /// identities along the way. If the final value is itself an identity, it
    /// is *not* dereferenced — use a longer path to reach a value instead.
    Path(Path),
    /// A record of named sub-keys.
    Record(Vec<(Label, KeyExpr)>),
    /// A fixed constant.
    Const(Value),
}

impl KeyExpr {
    /// Convenience: a key that is a single attribute path, e.g. `"name"` or
    /// `"country.name"`.
    pub fn path(p: impl Into<Path>) -> KeyExpr {
        KeyExpr::Path(p.into())
    }

    /// Convenience: a record of labelled path keys.
    pub fn record<I, L>(fields: I) -> KeyExpr
    where
        I: IntoIterator<Item = (L, KeyExpr)>,
        L: Into<Label>,
    {
        KeyExpr::Record(fields.into_iter().map(|(l, k)| (l.into(), k)).collect())
    }

    /// Evaluate the key expression for the object value `value` in `instance`.
    pub fn eval(&self, value: &Value, instance: &Instance) -> Result<Value> {
        match self {
            KeyExpr::Path(path) => Ok(path.eval(value, instance)?.clone()),
            KeyExpr::Record(fields) => {
                let mut out = BTreeMap::new();
                for (label, sub) in fields {
                    out.insert(label.clone(), sub.eval(value, instance)?);
                }
                Ok(Value::Record(out))
            }
            KeyExpr::Const(v) => Ok(v.clone()),
        }
    }
}

impl fmt::Display for KeyExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyExpr::Path(p) => write!(f, "x.{p}"),
            KeyExpr::Record(fields) => {
                write!(f, "(")?;
                for (i, (l, k)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{l} = {k}")?;
                }
                write!(f, ")")
            }
            KeyExpr::Const(v) => write!(f, "{v:?}"),
        }
    }
}

/// A key specification: a key expression per (keyed) class of a schema.
///
/// Classes without an entry are unkeyed; key-based merging and Skolem creation
/// are only available for keyed classes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct KeySpec {
    keys: BTreeMap<ClassName, KeyExpr>,
}

impl KeySpec {
    /// An empty key specification.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the key expression for a class (builder style).
    pub fn with_key(mut self, class: impl Into<ClassName>, key: KeyExpr) -> Self {
        self.keys.insert(class.into(), key);
        self
    }

    /// Set the key expression for a class.
    pub fn set_key(&mut self, class: impl Into<ClassName>, key: KeyExpr) {
        self.keys.insert(class.into(), key);
    }

    /// The key expression of a class, if any.
    pub fn key_of(&self, class: &ClassName) -> Option<&KeyExpr> {
        self.keys.get(class)
    }

    /// Whether the class has a key.
    pub fn has_key(&self, class: &ClassName) -> bool {
        self.keys.contains_key(class)
    }

    /// The keyed classes.
    pub fn classes(&self) -> impl Iterator<Item = &ClassName> {
        self.keys.keys()
    }

    /// Number of keyed classes.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True if no class is keyed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Evaluate the key of an object identity in an instance.
    pub fn eval(&self, oid: &Oid, instance: &Instance) -> Result<Value> {
        let key = self.keys.get(oid.class()).ok_or_else(|| {
            ModelError::KeyEvaluation(format!("class `{}` has no key", oid.class()))
        })?;
        let value = instance.value_or_err(oid)?;
        let key_value = key.eval(value, instance)?;
        if key_value.contains_oid() {
            return Err(ModelError::KeyContainsOid(oid.class().clone()));
        }
        Ok(key_value)
    }

    /// Check that `instance` satisfies this key specification: within each
    /// keyed class, distinct objects have distinct key values (Section 2.2).
    pub fn check(&self, instance: &Instance) -> Result<()> {
        for class in self.keys.keys() {
            let mut seen: BTreeMap<Value, Oid> = BTreeMap::new();
            for oid in instance.extent(class) {
                let key_value = self.eval(oid, instance)?;
                if let Some(previous) = seen.get(&key_value) {
                    if previous != oid {
                        return Err(ModelError::KeyViolation {
                            class: class.clone(),
                            key: format!("{key_value:?}"),
                        });
                    }
                }
                seen.insert(key_value, oid.clone());
            }
        }
        Ok(())
    }

    /// Build an index from key value to object identity for one class.
    /// Fails if the key is violated.
    pub fn index(&self, class: &ClassName, instance: &Instance) -> Result<BTreeMap<Value, Oid>> {
        let mut out = BTreeMap::new();
        for oid in instance.extent(class) {
            let key_value = self.eval(oid, instance)?;
            if let Some(previous) = out.insert(key_value.clone(), oid.clone()) {
                if &previous != oid {
                    return Err(ModelError::KeyViolation {
                        class: class.clone(),
                        key: format!("{key_value:?}"),
                    });
                }
            }
        }
        Ok(out)
    }
}

/// Deterministic Skolem-function factory implementing the paper's `Mk_C`
/// object-creating functions.
///
/// `mk(class, key_value)` returns the *same* object identity every time it is
/// called with the same class and key value within one factory, and a fresh
/// identity for each new key value. This realises the semantics of Skolem
/// functions, "which create new object identities associated uniquely with
/// their arguments" (Section 3.1), and makes the "unique smallest
/// transformation up to renaming of object identities" reproducible.
#[derive(Clone, Debug, Default)]
pub struct SkolemFactory {
    assigned: BTreeMap<(ClassName, Value), Oid>,
    counters: BTreeMap<ClassName, u64>,
}

impl SkolemFactory {
    /// A factory with no identities assigned yet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Apply `Mk_class(key)`: return the identity associated with the key
    /// value, creating it if necessary.
    pub fn mk(&mut self, class: &ClassName, key: &Value) -> Oid {
        if let Some(existing) = self.assigned.get(&(class.clone(), key.clone())) {
            return existing.clone();
        }
        let counter = self.counters.entry(class.clone()).or_insert(0);
        let oid = Oid::new(class.clone(), *counter);
        *counter += 1;
        self.assigned
            .insert((class.clone(), key.clone()), oid.clone());
        oid
    }

    /// Look up the identity for a key value without creating one.
    pub fn lookup(&self, class: &ClassName, key: &Value) -> Option<&Oid> {
        self.assigned.get(&(class.clone(), key.clone()))
    }

    /// The key value that produced an identity, if the identity came from this
    /// factory. (Inverse of [`mk`](Self::mk); linear in the number of
    /// assignments.)
    pub fn key_of(&self, oid: &Oid) -> Option<&Value> {
        self.assigned
            .iter()
            .find(|(_, assigned)| *assigned == oid)
            .map(|((_, key), _)| key)
    }

    /// Number of identities created for a class.
    pub fn count(&self, class: &ClassName) -> usize {
        self.assigned.keys().filter(|(c, _)| c == class).count()
    }

    /// Total number of identities created.
    pub fn len(&self) -> usize {
        self.assigned.len()
    }

    /// True if no identities have been created.
    pub fn is_empty(&self) -> bool {
        self.assigned.is_empty()
    }

    /// Pre-register identities for every object of `class` in `instance`,
    /// keyed by `spec`. Used when a transformation's target already contains
    /// data that new objects must merge with.
    pub fn seed_from_instance(
        &mut self,
        class: &ClassName,
        spec: &KeySpec,
        instance: &Instance,
    ) -> Result<()> {
        for oid in instance.extent(class) {
            let key = spec.eval(oid, instance)?;
            self.assigned.insert((class.clone(), key), oid.clone());
            let counter = self.counters.entry(class.clone()).or_insert(0);
            *counter = (*counter).max(oid.id() + 1);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn euro_instance() -> (Instance, Oid, Oid, Oid) {
        let mut inst = Instance::new("euro");
        let uk = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("United Kingdom"))]),
        );
        let fr = inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("France"))]),
        );
        let paris = inst.insert_fresh(
            &ClassName::new("CityE"),
            Value::record([
                ("name", Value::str("Paris")),
                ("country", Value::oid(fr.clone())),
            ]),
        );
        (inst, uk, fr, paris)
    }

    fn euro_keys() -> KeySpec {
        // Example 2.3 of the paper.
        KeySpec::new()
            .with_key("CountryE", KeyExpr::path("name"))
            .with_key(
                "CityE",
                KeyExpr::record([
                    ("name", KeyExpr::path("name")),
                    ("country_name", KeyExpr::path("country.name")),
                ]),
            )
    }

    #[test]
    fn key_evaluation_follows_example_2_3() {
        let (inst, _, _, paris) = euro_instance();
        let keys = euro_keys();
        let key = keys.eval(&paris, &inst).unwrap();
        assert_eq!(
            key,
            Value::record([
                ("name", Value::str("Paris")),
                ("country_name", Value::str("France"))
            ])
        );
    }

    #[test]
    fn key_spec_lookup() {
        let keys = euro_keys();
        assert!(keys.has_key(&ClassName::new("CountryE")));
        assert!(!keys.has_key(&ClassName::new("StateA")));
        assert_eq!(keys.len(), 2);
        assert!(!keys.is_empty());
        assert_eq!(keys.classes().count(), 2);
    }

    #[test]
    fn satisfied_key_spec_checks_ok() {
        let (inst, _, _, _) = euro_instance();
        assert!(euro_keys().check(&inst).is_ok());
    }

    #[test]
    fn violated_key_spec_detected() {
        let (mut inst, _, _, _) = euro_instance();
        // A second country also called France violates the name key.
        inst.insert_fresh(
            &ClassName::new("CountryE"),
            Value::record([("name", Value::str("France"))]),
        );
        let err = euro_keys().check(&inst).unwrap_err();
        assert!(matches!(err, ModelError::KeyViolation { .. }));
    }

    #[test]
    fn key_containing_oid_rejected() {
        let (inst, _, _, paris) = euro_instance();
        let keys = KeySpec::new().with_key("CityE", KeyExpr::path("country"));
        let err = keys.eval(&paris, &inst).unwrap_err();
        assert_eq!(err, ModelError::KeyContainsOid(ClassName::new("CityE")));
    }

    #[test]
    fn unkeyed_class_eval_fails() {
        let (inst, uk, _, _) = euro_instance();
        let keys = KeySpec::new();
        assert!(keys.eval(&uk, &inst).is_err());
    }

    #[test]
    fn index_maps_keys_to_oids() {
        let (inst, uk, fr, _) = euro_instance();
        let keys = euro_keys();
        let index = keys.index(&ClassName::new("CountryE"), &inst).unwrap();
        assert_eq!(index.get(&Value::str("United Kingdom")), Some(&uk));
        assert_eq!(index.get(&Value::str("France")), Some(&fr));
    }

    #[test]
    fn skolem_factory_is_deterministic_and_injective() {
        let mut factory = SkolemFactory::new();
        let country = ClassName::new("CountryT");
        let a = factory.mk(&country, &Value::str("France"));
        let b = factory.mk(&country, &Value::str("France"));
        let c = factory.mk(&country, &Value::str("Germany"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(factory.count(&country), 2);
        assert_eq!(factory.len(), 2);
        assert!(!factory.is_empty());
        assert_eq!(factory.lookup(&country, &Value::str("France")), Some(&a));
        assert_eq!(factory.key_of(&a), Some(&Value::str("France")));
        assert_eq!(factory.key_of(&Oid::new(country, 99)), None);
    }

    #[test]
    fn skolem_factory_separates_classes() {
        let mut factory = SkolemFactory::new();
        let a = factory.mk(&ClassName::new("CountryT"), &Value::str("France"));
        let b = factory.mk(&ClassName::new("CityT"), &Value::str("France"));
        assert_ne!(a, b);
        assert_eq!(a.class(), &ClassName::new("CountryT"));
        assert_eq!(b.class(), &ClassName::new("CityT"));
    }

    #[test]
    fn seed_from_instance_reuses_existing_oids() {
        let (inst, uk, fr, _) = euro_instance();
        let keys = euro_keys();
        let mut factory = SkolemFactory::new();
        factory
            .seed_from_instance(&ClassName::new("CountryE"), &keys, &inst)
            .unwrap();
        // Asking for an existing key returns the existing identity...
        let again = factory.mk(&ClassName::new("CountryE"), &Value::str("France"));
        assert_eq!(again, fr);
        // ... and a new key gets a fresh identity that does not collide.
        let fresh = factory.mk(&ClassName::new("CountryE"), &Value::str("Spain"));
        assert_ne!(fresh, uk);
        assert_ne!(fresh, fr);
    }

    #[test]
    fn key_expr_display() {
        let k = KeyExpr::record([
            ("name", KeyExpr::path("name")),
            ("country_name", KeyExpr::path("country.name")),
        ]);
        let rendered = k.to_string();
        assert!(rendered.contains("name = x.name"));
        assert!(rendered.contains("country_name = x.country.name"));
    }
}
