//! Analysis of transformation-clause heads.
//!
//! A transformation clause's head describes (parts of) one or more objects of
//! target classes: their class membership, some of their attributes, and
//! possibly their identity via an explicit Skolem (`Mk_C`) equation. This
//! module extracts that structure once, for use by both the naive evaluator
//! ([`crate::semantics`]) and the normaliser ([`crate::normalize`]).

use std::collections::{BTreeMap, BTreeSet};

use wol_lang::ast::{Atom, Clause, SkolemArgs, Term, Var};
use wol_lang::typecheck::TypeEnv;
use wol_model::{ClassName, Label, Type};

use crate::error::EngineError;
use crate::Result;

/// The head's description of a single target object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HeadObject {
    /// The head variable denoting the object.
    pub var: Var,
    /// The target class the object belongs to.
    pub class: ClassName,
    /// `Some` if the head contains an explicit `var = Mk_C(args)` equation.
    pub explicit_key: Option<SkolemArgs>,
    /// Attribute assignments `var.attr = term` found in the head.
    pub attrs: BTreeMap<Label, Term>,
    /// Whether the head itself asserts `var in class` (a *creating*
    /// description); if false the object is identified by the body.
    pub member_in_head: bool,
}

/// The result of analysing a clause head.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HeadAnalysis {
    /// Objects described by the head, in order of first appearance.
    pub objects: Vec<HeadObject>,
    /// Head atoms that do not describe target objects (rare in transformation
    /// clauses; they are treated as additional conditions to verify).
    pub residual: Vec<Atom>,
}

impl HeadAnalysis {
    /// Find the description of a particular object variable.
    pub fn object(&self, var: &str) -> Option<&HeadObject> {
        self.objects.iter().find(|o| o.var == var)
    }
}

/// Is `ty` a class type belonging to the target?
fn target_class_of(ty: Option<&Type>, target_classes: &BTreeSet<ClassName>) -> Option<ClassName> {
    match ty {
        Some(Type::Class(c)) if target_classes.contains(c) => Some(c.clone()),
        _ => None,
    }
}

/// Analyse the head of a transformation clause.
///
/// `env` is the clause's inferred type environment (from
/// [`wol_lang::typecheck::check_clause_types`]) and `target_classes` the set of
/// classes belonging to the target schema.
pub fn analyze_head(
    clause: &Clause,
    env: &TypeEnv,
    target_classes: &BTreeSet<ClassName>,
) -> Result<HeadAnalysis> {
    let mut objects: Vec<HeadObject> = Vec::new();
    let mut residual = Vec::new();

    let mut ensure_object = |objects: &mut Vec<HeadObject>, var: &Var, class: ClassName| -> usize {
        if let Some(pos) = objects.iter().position(|o| &o.var == var) {
            pos
        } else {
            objects.push(HeadObject {
                var: var.clone(),
                class,
                explicit_key: None,
                attrs: BTreeMap::new(),
                member_in_head: false,
            });
            objects.len() - 1
        }
    };

    for atom in &clause.head {
        match atom {
            Atom::Member(Term::Var(v), class) if target_classes.contains(class) => {
                let idx = ensure_object(&mut objects, v, class.clone());
                objects[idx].member_in_head = true;
            }
            Atom::Eq(lhs, rhs) => {
                // Try both orientations.
                if let Some(handled) = head_equation(
                    lhs,
                    rhs,
                    env,
                    target_classes,
                    &mut objects,
                    &mut ensure_object,
                )? {
                    if !handled {
                        residual.push(atom.clone());
                    }
                } else {
                    residual.push(atom.clone());
                }
            }
            other => residual.push(other.clone()),
        }
    }

    // Attach the body's membership classes to objects identified in the body
    // (their type is known from the environment even without a head member).
    for object in &mut objects {
        if object.class.as_str().is_empty() {
            if let Some(c) = target_class_of(env.get(&object.var), target_classes) {
                object.class = c;
            }
        }
    }
    Ok(HeadAnalysis { objects, residual })
}

/// Handle a head equation. Returns `Ok(Some(true))` if it contributed to an
/// object description, `Ok(Some(false))` if it should be kept as residual, and
/// `Ok(None)` if it does not concern target objects at all.
#[allow(clippy::too_many_arguments)]
fn head_equation(
    lhs: &Term,
    rhs: &Term,
    env: &TypeEnv,
    target_classes: &BTreeSet<ClassName>,
    objects: &mut Vec<HeadObject>,
    ensure_object: &mut impl FnMut(&mut Vec<HeadObject>, &Var, ClassName) -> usize,
) -> Result<Option<bool>> {
    for (a, b) in [(lhs, rhs), (rhs, lhs)] {
        // `O = Mk_C(args)` — explicit identity.
        if let (Term::Var(v), Term::Skolem(class, args)) = (a, b) {
            if target_classes.contains(class) {
                let idx = ensure_object(objects, v, class.clone());
                if objects[idx].explicit_key.is_some()
                    && objects[idx].explicit_key.as_ref() != Some(args)
                {
                    return Err(EngineError::Normalisation(format!(
                        "object {v} has two different explicit Skolem identities"
                    )));
                }
                objects[idx].explicit_key = Some(args.clone());
                return Ok(Some(true));
            }
        }
        // `O.attr = term` — attribute assignment (single-segment paths only).
        if let Term::Proj(base, attr) = a {
            if let Term::Var(v) = base.as_ref() {
                if let Some(class) = target_class_of(env.get(v), target_classes) {
                    let idx = ensure_object(objects, v, class);
                    if let Some(existing) = objects[idx].attrs.get(attr) {
                        if existing != b {
                            return Err(EngineError::Normalisation(format!(
                                "attribute {v}.{attr} is assigned two different terms in one head"
                            )));
                        }
                    }
                    objects[idx].attrs.insert(attr.clone(), b.clone());
                    return Ok(Some(true));
                }
            }
            // Nested projections on target objects (O.a.b = t) are outside the
            // supported normal-form fragment.
            if let Some((base_var, labels)) = a.as_var_path() {
                if labels.len() > 1 && target_class_of(env.get(base_var), target_classes).is_some()
                {
                    return Err(EngineError::Normalisation(format!(
                        "nested head projection {base_var}.{} is not supported; introduce an \
                         intermediate object variable instead",
                        labels
                            .iter()
                            .map(|l| l.as_str())
                            .collect::<Vec<_>>()
                            .join(".")
                    )));
                }
            }
        }
    }
    // An equation between two target object variables is an aliasing
    // constraint; keep it as residual (the caller decides how to treat it).
    if let (Term::Var(x), Term::Var(y)) = (lhs, rhs) {
        let tx = target_class_of(env.get(x), target_classes);
        let ty = target_class_of(env.get(y), target_classes);
        if tx.is_some() && ty.is_some() {
            return Ok(Some(false));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wol_lang::{check_clause_types, parse_clause};
    use wol_model::Schema;

    fn schemas() -> (Schema, Schema) {
        let euro = Schema::new("euro")
            .with_class(
                "CityE",
                Type::record([
                    ("name", Type::str()),
                    ("is_capital", Type::bool()),
                    ("country", Type::class("CountryE")),
                ]),
            )
            .with_class(
                "CountryE",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                ]),
            );
        let target = Schema::new("target")
            .with_class(
                "CityT",
                Type::record([
                    ("name", Type::str()),
                    (
                        "place",
                        Type::variant([
                            ("state", Type::class("StateT")),
                            ("euro_city", Type::class("CountryT")),
                        ]),
                    ),
                ]),
            )
            .with_class(
                "CountryT",
                Type::record([
                    ("name", Type::str()),
                    ("language", Type::str()),
                    ("currency", Type::str()),
                    ("capital", Type::optional(Type::class("CityT"))),
                ]),
            )
            .with_class(
                "StateT",
                Type::record([("name", Type::str()), ("capital", Type::class("CityT"))]),
            );
        (euro, target)
    }

    fn target_set(target: &Schema) -> BTreeSet<ClassName> {
        target.class_names().into_iter().collect()
    }

    #[test]
    fn analyse_clause_t1() {
        let (euro, target) = schemas();
        let clause = parse_clause(
            "X in CountryT, X.name = E.name, X.language = E.language, X.currency = E.currency \
             <= E in CountryE",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let analysis = analyze_head(&clause, &env, &target_set(&target)).unwrap();
        assert_eq!(analysis.objects.len(), 1);
        let obj = &analysis.objects[0];
        assert_eq!(obj.var, "X");
        assert_eq!(obj.class, ClassName::new("CountryT"));
        assert!(obj.member_in_head);
        assert!(obj.explicit_key.is_none());
        assert_eq!(obj.attrs.len(), 3);
        assert_eq!(obj.attrs["name"], Term::var("E").proj("name"));
        assert!(analysis.residual.is_empty());
    }

    #[test]
    fn analyse_clause_t2_variant_attribute() {
        let (euro, target) = schemas();
        let clause = parse_clause(
            "Y in CityT, Y.name = E.name, Y.place = ins_euro_city(X) \
             <= E in CityE, X in CountryT, X.name = E.country.name",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let analysis = analyze_head(&clause, &env, &target_set(&target)).unwrap();
        let obj = analysis.object("Y").unwrap();
        assert!(obj.member_in_head);
        assert_eq!(
            obj.attrs["place"],
            Term::variant("euro_city", Term::var("X"))
        );
        // X is a target object too, but the head does not describe it.
        assert!(analysis.object("X").is_none());
    }

    #[test]
    fn analyse_clause_t3_body_identified_object() {
        let (euro, target) = schemas();
        let clause = parse_clause(
            "X.capital = Y <= X in CountryT, Y in CityT, Y.place = ins_euro_city(X), \
             E in CityE, E.name = Y.name, E.is_capital = true",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let analysis = analyze_head(&clause, &env, &target_set(&target)).unwrap();
        let obj = analysis.object("X").unwrap();
        assert!(!obj.member_in_head);
        assert_eq!(obj.class, ClassName::new("CountryT"));
        assert_eq!(obj.attrs["capital"], Term::var("Y"));
    }

    #[test]
    fn analyse_explicit_skolem_identity() {
        let (euro, target) = schemas();
        let clause = parse_clause(
            "X = Mk_CountryT(N), X.language = L <= Y in CountryE, Y.name = N, Y.language = L",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let analysis = analyze_head(&clause, &env, &target_set(&target)).unwrap();
        let obj = analysis.object("X").unwrap();
        assert_eq!(
            obj.explicit_key,
            Some(SkolemArgs::Positional(vec![Term::var("N")]))
        );
        assert_eq!(obj.attrs["language"], Term::var("L"));
    }

    #[test]
    fn conflicting_attribute_assignment_rejected() {
        let (euro, target) = schemas();
        let clause =
            parse_clause("X in CountryT, X.name = E.name, X.name = E.currency <= E in CountryE")
                .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let err = analyze_head(&clause, &env, &target_set(&target)).unwrap_err();
        assert!(matches!(err, EngineError::Normalisation(_)));
    }

    #[test]
    fn nested_projection_rejected() {
        let (euro, target) = schemas();
        let clause = parse_clause(
            "X.capital.name = E.name <= X in CountryT, E in CityE, E.is_capital = true, \
             E.country.name = X.name",
        )
        .unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let err = analyze_head(&clause, &env, &target_set(&target)).unwrap_err();
        assert!(err.to_string().contains("nested head projection"));
    }

    #[test]
    fn residual_atoms_preserved() {
        let (euro, target) = schemas();
        // A head condition over source values only.
        let clause = parse_clause("E.name = \"Paris\" <= E in CityE").unwrap();
        let env = check_clause_types(&clause, &[&euro, &target]).unwrap();
        let analysis = analyze_head(&clause, &env, &target_set(&target)).unwrap();
        assert!(analysis.objects.is_empty());
        assert_eq!(analysis.residual.len(), 1);
    }
}
