//! # storage
//!
//! Heterogeneous storage substrates for the WOL reproduction.
//!
//! The paper's trials move data between a **Sybase relational database**
//! (Chr22DB) and an **ACeDB tree database** (ACe22DB) at the Sanger Centre,
//! "which use incompatible data-models as well as different interpretations of
//! the underlying data" (Section 6). Neither system is available here, so this
//! crate provides the closest synthetic equivalents that exercise the same
//! code paths:
//!
//! * [`relational`] — a flat table store (named columns, rows of base values)
//!   with an adapter that loads tables into model [`Instance`]s and dumps
//!   class extents back out to tables;
//! * [`acedb`] — an ACeDB-like store of *tagged trees* ("tree-like structures
//!   with object identities ... well suited for representing sparsely
//!   populated data") with an importer that maps trees onto model instances
//!   with optional attributes;
//! * [`csv`] — a minimal line-oriented import/export format for flat classes,
//!   standing in for the "uploading certain file formats" use case of the
//!   introduction.
//!
//! [`Instance`]: wol_model::Instance

pub mod acedb;
pub mod csv;
pub mod error;
pub mod relational;

pub use acedb::{AceObject, AceStore, AceValue};
pub use error::StorageError;
pub use relational::{Column, ColumnType, Table, TableSchema};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, StorageError>;
