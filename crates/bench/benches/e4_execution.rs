//! Experiment E4 — single-pass execution of normal-form programs vs direct
//! (recursive, multi-pass) clause application, and the indexed matcher vs
//! the naive pre-index matcher.
//!
//! Paper claim (Section 5): "Implementing a transformation directly using
//! clauses such as (T1), (T2) and (T3) would be inefficient ... we would have
//! to apply the clauses recursively"; normal-form programs run "in a single
//! pass over the source databases". The workload is the Cities/Countries
//! integration scaled by the number of source cities.
//!
//! On top of the paper's comparison, this bench measures the engine's two
//! execution levers on the same workload: semi-naive delta passes and
//! attribute-indexed, selectivity-ordered body matching. The summary section
//! reports `bindings_considered` for the indexed matcher vs the naive
//! generate-and-test matcher on a >=10k-object join, the numbers the
//! performance regression test (`tests/properties.rs`) guards.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use morphase::Morphase;
use wol_engine::{
    match_body_reference, match_body_with_stats, naive_transform, naive_transform_with_report,
    Bindings, Databases, MatchStats, NaiveOptions,
};
use wol_lang::parse_clause;
use wol_model::SkolemFactory;
use workloads::cities::{generate_euro, CitiesWorkload};

fn bench_execution(c: &mut Criterion) {
    let mut group = c.benchmark_group("e4_execution");
    group
        .sample_size(bench::SAMPLES)
        .measurement_time(Duration::from_secs(bench::MEASURE_SECS))
        .warm_up_time(Duration::from_millis(bench::WARMUP_MS));

    let workload = CitiesWorkload::new();
    let program = workload.euro_program();

    for &countries in &[10usize, 30, 100] {
        let cities_per_country = 10;
        let source = generate_euro(countries, cities_per_country, 42);
        let total_cities = countries * cities_per_country;

        // Morphase: compile once, then single-pass CPL execution.
        let compiled = Morphase::new();
        group.bench_with_input(
            BenchmarkId::new("morphase_single_pass", total_cities),
            &source,
            |b, source| {
                b.iter(|| {
                    compiled
                        .transform(&program, &[source][..])
                        .expect("transforms")
                })
            },
        );

        // Naive: repeated clause application against sources + target
        // (indexed matching + semi-naive passes, the default).
        group.bench_with_input(
            BenchmarkId::new("naive_multi_pass", total_cities),
            &source,
            |b, source| {
                b.iter(|| naive_transform(&program, &[source][..], "target").expect("transforms"))
            },
        );

        // The pre-index baseline: same fixpoint, but full passes with the
        // naive generate-and-test matcher. Only run at the smaller sizes —
        // the baseline is cubic in the extent sizes, which is the point.
        if total_cities <= 300 {
            let preindex = NaiveOptions {
                semi_naive: false,
                use_indexed_matching: false,
                ..NaiveOptions::default()
            };
            group.bench_with_input(
                BenchmarkId::new("naive_multi_pass_preindex", total_cities),
                &source,
                |b, source| {
                    b.iter(|| {
                        naive_transform_with_report(&program, &[source][..], "target", &preindex)
                            .expect("transforms")
                    })
                },
            );
        }
    }
    group.finish();

    // Paper-style summary at a fixed size.
    let source = generate_euro(30, 10, 42);
    let t0 = std::time::Instant::now();
    let morphase_run = Morphase::new().transform(&program, &[&source][..]).unwrap();
    let single = t0.elapsed();
    let t1 = std::time::Instant::now();
    naive_transform(&program, &[&source][..], "target").unwrap();
    let naive = t1.elapsed();
    eprintln!(
        "[E4] 300 source cities: Morphase single pass {single:?}, naive multi-pass {naive:?}, \
         speed-up {:.1}x",
        naive.as_secs_f64() / single.as_secs_f64().max(1e-9)
    );

    // Indexed vs pre-index matching on a >=10k-object three-way join: the
    // tentpole comparison (see ISSUE 1 acceptance criteria).
    let source = generate_euro(100, 100, 42); // 100 countries + 10_000 cities
    let refs = [&source];
    let dbs = Databases::new(&refs[..]);
    let body = parse_clause(
        "Z = 1 <= E in CityE, X in CountryE, X.name = E.country.name, \
                 Y in CityE, Y.country = X, Y.is_capital = true",
    )
    .unwrap()
    .body;

    let mut factory = SkolemFactory::new();
    let mut indexed_stats = MatchStats::default();
    let t0 = std::time::Instant::now();
    let indexed = match_body_with_stats(
        &body,
        &dbs,
        &mut factory,
        Bindings::new(),
        &mut indexed_stats,
    )
    .unwrap();
    let indexed_time = t0.elapsed();

    let mut factory = SkolemFactory::new();
    let mut reference_stats = MatchStats::default();
    let t1 = std::time::Instant::now();
    let reference = match_body_reference(
        &body,
        &dbs,
        &mut factory,
        Bindings::new(),
        &mut reference_stats,
    )
    .unwrap();
    let reference_time = t1.elapsed();

    assert_eq!(indexed.len(), reference.len());
    eprintln!(
        "[E4] 3-way join over 10_100 objects ({} results):\n\
         [E4]   indexed matcher:  {indexed_time:?}, bindings_considered {}, \
         extents_scanned {}, index_probes {}\n\
         [E4]   pre-index matcher: {reference_time:?}, bindings_considered {}, \
         extents_scanned {}\n\
         [E4]   bindings ratio {:.1}x, wall-clock speed-up {:.1}x",
        indexed.len(),
        indexed_stats.bindings_considered,
        indexed_stats.extents_scanned,
        indexed_stats.index_probes,
        reference_stats.bindings_considered,
        reference_stats.extents_scanned,
        reference_stats.bindings_considered as f64
            / indexed_stats.bindings_considered.max(1) as f64,
        reference_time.as_secs_f64() / indexed_time.as_secs_f64().max(1e-9)
    );

    // Semi-naive + indexed fixpoint vs full pre-index fixpoint. The baseline
    // is cubic in the extents (clause T3 joins CountryT x CityT x CityE), so
    // this comparison runs at 1_100 objects; the indexed numbers at 10_100
    // objects come from the `naive_multi_pass` group above.
    let fixpoint_source = generate_euro(100, 10, 42);
    let t0 = std::time::Instant::now();
    let (_, semi_report) = naive_transform_with_report(
        &program,
        &[&fixpoint_source][..],
        "target",
        &NaiveOptions::default(),
    )
    .unwrap();
    let semi_time = t0.elapsed();
    let preindex = NaiveOptions {
        semi_naive: false,
        use_indexed_matching: false,
        ..NaiveOptions::default()
    };
    let t1 = std::time::Instant::now();
    let (_, preindex_report) =
        naive_transform_with_report(&program, &[&fixpoint_source][..], "target", &preindex)
            .unwrap();
    let preindex_time = t1.elapsed();
    eprintln!(
        "[E4] naive fixpoint over 1_100 objects:\n\
         [E4]   semi-naive+indexed: {semi_time:?} ({} passes, {} bindings, {} probes, {} clauses skipped)\n\
         [E4]   full+pre-index:     {preindex_time:?} ({} passes, {} bindings)\n\
         [E4]   bindings ratio {:.1}x, wall-clock speed-up {:.1}x",
        semi_report.passes,
        semi_report.bindings_considered,
        semi_report.index_probes,
        semi_report.clauses_skipped,
        preindex_report.passes,
        preindex_report.bindings_considered,
        preindex_report.bindings_considered as f64 / semi_report.bindings_considered.max(1) as f64,
        preindex_time.as_secs_f64() / semi_time.as_secs_f64().max(1e-9)
    );

    // Machine-readable summary for cross-PR tracking.
    bench::BenchJson::new()
        .str("bench", "e4_execution")
        .obj(
            "morphase_single_pass_300_cities",
            bench::BenchJson::new()
                .num("secs", single.as_secs_f64())
                .int("rows_scanned", morphase_run.exec.rows_scanned as u64)
                .int(
                    "max_intermediate_rows",
                    morphase_run.exec.max_intermediate_rows as u64,
                )
                .int("index_probes", morphase_run.exec.index_probes as u64),
        )
        .num("naive_multi_pass_300_cities_secs", naive.as_secs_f64())
        .obj(
            "three_way_join_10100_objects",
            bench::BenchJson::new()
                .num("indexed_secs", indexed_time.as_secs_f64())
                .num("reference_secs", reference_time.as_secs_f64())
                .int("indexed_bindings", indexed_stats.bindings_considered as u64)
                .int(
                    "reference_bindings",
                    reference_stats.bindings_considered as u64,
                )
                .int("index_probes", indexed_stats.index_probes as u64),
        )
        .obj(
            "fixpoint_1100_objects",
            bench::BenchJson::new()
                .num("semi_naive_indexed_secs", semi_time.as_secs_f64())
                .num("full_preindex_secs", preindex_time.as_secs_f64())
                .int(
                    "semi_naive_bindings",
                    semi_report.bindings_considered as u64,
                )
                .int(
                    "preindex_bindings",
                    preindex_report.bindings_considered as u64,
                ),
        )
        .stamped()
        .write("BENCH_e4.json");
}

criterion_group!(benches, bench_execution);
criterion_main!(benches);
