//! Optimisation of derived clauses using source constraints (Section 4.2).
//!
//! "Source database constraints play an important part in optimizing this
//! process, both by simplifying the derived rules and by causing unsatisfiable
//! rules to be rejected." The two optimisations implemented here are exactly
//! the ones the paper's Example 4.1 illustrates:
//!
//! * **self-join elimination**: if `name` is a key for `CountryE`, a body
//!   `Y in CountryE, Z in CountryE, Y.name = N, Z.name = N` can bind `Z := Y`
//!   and drop the duplicate atoms;
//! * **unsatisfiable-clause pruning**: a body that equates two distinct
//!   constants (directly or through a shared variable/attribute) can never be
//!   satisfied, so the clause is dropped.

use std::collections::BTreeMap;

use wol_lang::ast::{Atom, Term, Var};
use wol_model::{ClassName, Path, Value};

use crate::normalize::NormalClause;

/// Source keys: for each source class, the attribute paths that jointly form a
/// key (from merge-style key constraints such as clause (C8)).
pub type SourceKeys = BTreeMap<ClassName, Vec<Path>>;

/// Optimise a normal clause: simplify its body with the given source keys and
/// prune it entirely if the body is unsatisfiable. Returns `None` when the
/// clause is pruned.
pub fn optimize_clause(clause: NormalClause, source_keys: &SourceKeys) -> Option<NormalClause> {
    let mut body = clause.body;
    // Iterate self-join elimination to a fixpoint: merging two variables may
    // enable further merges.
    while let Some((keep, drop)) = find_mergeable_pair(&body, source_keys) {
        let subst: BTreeMap<Var, Term> = BTreeMap::from([(drop, Term::Var(keep))]);
        body = body.iter().map(|a| a.substitute(&subst)).collect();
        dedup_atoms(&mut body);
    }
    dedup_atoms(&mut body);
    drop_trivial_equalities(&mut body);
    if body_unsatisfiable(&body) {
        return None;
    }
    // The substitutions only affect body variables; attribute and key terms
    // refer to those variables, so apply the same merges there by re-running
    // the substitution through equality of rendered variables is unnecessary —
    // the merged variable is kept, the dropped one no longer occurs in the
    // body, but may still occur in attrs/key. To keep the clause well-formed
    // we rename occurrences of dropped variables in attrs/key as well.
    Some(NormalClause { body, ..clause })
}

/// Find a pair of body variables `(keep, drop)` ranging over the same keyed
/// source class whose key paths are all equated in the body.
fn find_mergeable_pair(body: &[Atom], source_keys: &SourceKeys) -> Option<(Var, Var)> {
    // Collect membership variables per keyed class.
    let mut members: BTreeMap<ClassName, Vec<Var>> = BTreeMap::new();
    for atom in body {
        if let Atom::Member(Term::Var(v), class) = atom {
            if source_keys.contains_key(class) {
                let entry = members.entry(class.clone()).or_default();
                if !entry.contains(v) {
                    entry.push(v.clone());
                }
            }
        }
    }
    for (class, vars) in &members {
        let key_paths = &source_keys[class];
        for i in 0..vars.len() {
            for j in (i + 1)..vars.len() {
                let a = &vars[i];
                let b = &vars[j];
                if key_paths.iter().all(|p| paths_equated(body, a, b, p)) {
                    return Some((a.clone(), b.clone()));
                }
            }
        }
    }
    None
}

/// Is `a.path` known to equal `b.path` in the body — either directly
/// (`a.p = b.p`) or through a shared variable or constant
/// (`a.p = N, b.p = N`)?
fn paths_equated(body: &[Atom], a: &str, b: &str, path: &Path) -> bool {
    let rhs_of = |var: &str| -> Vec<&Term> {
        body.iter()
            .filter_map(|atom| {
                let Atom::Eq(s, t) = atom else { return None };
                for (proj, other) in [(s, t), (t, s)] {
                    if let Some((base, labels)) = proj.as_var_path() {
                        if base == var && !labels.is_empty() {
                            let p = Path::new(labels.iter().map(|l| l.to_string()));
                            if &p == path {
                                return Some(other);
                            }
                        }
                    }
                }
                None
            })
            .collect()
    };
    let a_terms = rhs_of(a);
    let b_terms = rhs_of(b);
    for at in &a_terms {
        for bt in &b_terms {
            let linked = match (at, bt) {
                (Term::Var(x), Term::Var(y)) => x == y,
                (Term::Const(x), Term::Const(y)) => x == y,
                _ => false,
            };
            if linked {
                return true;
            }
            // Direct form `a.p = b.p`: the rhs of `a` is the projection of `b`.
            if let Some((base, labels)) = at.as_var_path() {
                if base == b && &Path::new(labels.iter().map(|l| l.to_string())) == path {
                    return true;
                }
            }
            if let Some((base, labels)) = bt.as_var_path() {
                if base == a && &Path::new(labels.iter().map(|l| l.to_string())) == path {
                    return true;
                }
            }
        }
    }
    // Direct `a.p = b.p` with no other equations.
    for atom in body {
        if let Atom::Eq(s, t) = atom {
            for (x, y) in [(s, t), (t, s)] {
                if let (Some((bx, lx)), Some((by, ly))) = (x.as_var_path(), y.as_var_path()) {
                    if bx == a
                        && by == b
                        && &Path::new(lx.iter().map(|l| l.to_string())) == path
                        && &Path::new(ly.iter().map(|l| l.to_string())) == path
                    {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Remove duplicate atoms, preserving first occurrences.
fn dedup_atoms(body: &mut Vec<Atom>) {
    let mut seen = Vec::new();
    body.retain(|atom| {
        if seen.contains(atom) {
            false
        } else {
            seen.push(atom.clone());
            true
        }
    });
}

/// Remove trivially true equalities `t = t`.
fn drop_trivial_equalities(body: &mut Vec<Atom>) {
    body.retain(|atom| !matches!(atom, Atom::Eq(s, t) if s == t));
}

/// Detect bodies that can never be satisfied: a variable or attribute equated
/// with two different constants, or two different constants equated directly.
pub fn body_unsatisfiable(body: &[Atom]) -> bool {
    // Direct constant conflicts.
    for atom in body {
        if let Atom::Eq(Term::Const(a), Term::Const(b)) = atom {
            if a != b {
                return true;
            }
        }
        if let Atom::Neq(Term::Const(a), Term::Const(b)) = atom {
            if a == b {
                return true;
            }
        }
    }
    // A term (rendered syntactically) equated with two distinct constants.
    let mut constant_of: BTreeMap<String, &Value> = BTreeMap::new();
    for atom in body {
        let Atom::Eq(s, t) = atom else { continue };
        let (term, constant) = match (s, t) {
            (Term::Const(c), other) if !matches!(other, Term::Const(_)) => (other, c),
            (other, Term::Const(c)) if !matches!(other, Term::Const(_)) => (other, c),
            _ => continue,
        };
        let key = wol_lang::render_term(term);
        match constant_of.get(&key) {
            Some(existing) if *existing != constant => return true,
            _ => {
                constant_of.insert(key, constant);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wol_lang::ast::SkolemArgs;
    use wol_lang::parse_clause;

    fn clause_with_body(body_text: &str) -> NormalClause {
        let parsed = parse_clause(&format!("H = 1 <= {body_text}")).unwrap();
        NormalClause {
            class: ClassName::new("CountryT"),
            key: SkolemArgs::Named(vec![("name".to_string(), Term::var("N"))]),
            attrs: BTreeMap::from([("name".to_string(), Term::var("N"))]),
            body: parsed.body,
            creates: true,
            provenance: vec!["test".to_string()],
        }
    }

    fn country_key() -> SourceKeys {
        BTreeMap::from([(ClassName::new("CountryE"), vec![Path::parse("name")])])
    }

    #[test]
    fn example_4_1_self_join_eliminated() {
        // Derived clause of Example 4.1: the product of CountryE with itself.
        let clause = clause_with_body(
            "Y in CountryE, Y.name = N, Y.language = L, Z in CountryE, Z.name = N, Z.currency = C",
        );
        let before = clause.body.len();
        let optimised = optimize_clause(clause, &country_key()).unwrap();
        // Z is replaced by Y and the duplicate membership/equation dropped.
        assert!(optimised.body.len() < before);
        let rendered: Vec<String> = optimised.body.iter().map(wol_lang::render_atom).collect();
        assert!(rendered.iter().any(|a| a == "Y.currency = C"));
        assert!(!rendered.iter().any(|a| a.contains('Z')));
    }

    #[test]
    fn direct_path_equality_also_merges() {
        let clause = clause_with_body(
            "Y in CountryE, Z in CountryE, Y.name = Z.name, Z.currency = C, Y.name = N",
        );
        let optimised = optimize_clause(clause, &country_key()).unwrap();
        assert!(!optimised
            .body
            .iter()
            .any(|a| wol_lang::render_atom(a).contains('Z')));
    }

    #[test]
    fn no_merge_without_key_constraint() {
        let clause = clause_with_body(
            "Y in CountryE, Y.name = N, Z in CountryE, Z.name = N, Z.currency = C",
        );
        let before = clause.body.len();
        let optimised = optimize_clause(clause, &SourceKeys::new()).unwrap();
        assert_eq!(optimised.body.len(), before);
    }

    #[test]
    fn no_merge_when_key_paths_differ() {
        // Equated on language, but the key is name: not mergeable.
        let clause = clause_with_body(
            "Y in CountryE, Y.language = L, Z in CountryE, Z.language = L, Z.name = N, Y.name = M",
        );
        let optimised = optimize_clause(clause, &country_key()).unwrap();
        assert!(optimised
            .body
            .iter()
            .any(|a| wol_lang::render_atom(a).contains('Z')));
    }

    #[test]
    fn composite_keys_require_all_paths() {
        let keys: SourceKeys = BTreeMap::from([(
            ClassName::new("CityE"),
            vec![Path::parse("name"), Path::parse("country")],
        )]);
        // Only the name is equated: no merge.
        let clause =
            clause_with_body("Y in CityE, Y.name = N, Z in CityE, Z.name = N, Z.is_capital = B");
        let optimised = optimize_clause(clause, &keys).unwrap();
        assert!(optimised
            .body
            .iter()
            .any(|a| wol_lang::render_atom(a).contains('Z')));
        // Both name and country equated: merge.
        let clause = clause_with_body(
            "Y in CityE, Y.name = N, Y.country = K, Z in CityE, Z.name = N, Z.country = K, Z.is_capital = B",
        );
        let optimised = optimize_clause(clause, &keys).unwrap();
        assert!(!optimised
            .body
            .iter()
            .any(|a| wol_lang::render_atom(a).contains('Z')));
    }

    #[test]
    fn chained_merges_reach_fixpoint() {
        // Three copies of the same country collapse to one.
        let clause = clause_with_body(
            "A in CountryE, A.name = N, B in CountryE, B.name = N, C in CountryE, C.name = N, \
             A.language = L, B.currency = Cur, C.language = L2",
        );
        let optimised = optimize_clause(clause, &country_key()).unwrap();
        let memberships = optimised
            .body
            .iter()
            .filter(|a| matches!(a, Atom::Member(_, _)))
            .count();
        assert_eq!(memberships, 1);
    }

    #[test]
    fn unsatisfiable_constant_conflict_pruned() {
        let clause =
            clause_with_body("Y in CountryE, Y.name = N, Y.is_big = true, Y.is_big = false");
        assert!(optimize_clause(clause, &country_key()).is_none());
        let clause = clause_with_body("Y in CountryE, Y.name = N, \"a\" = \"b\"");
        assert!(optimize_clause(clause, &country_key()).is_none());
        let clause = clause_with_body("Y in CountryE, Y.name = N, 1 != 1");
        assert!(optimize_clause(clause, &country_key()).is_none());
    }

    #[test]
    fn satisfiable_bodies_kept() {
        let clause = clause_with_body("Y in CountryE, Y.name = N, Y.is_big = true");
        assert!(optimize_clause(clause, &country_key()).is_some());
    }

    #[test]
    fn duplicate_and_trivial_atoms_removed() {
        let clause =
            clause_with_body("Y in CountryE, Y in CountryE, Y.name = N, Y.name = N, N = N");
        let optimised = optimize_clause(clause, &country_key()).unwrap();
        assert_eq!(optimised.body.len(), 2);
    }

    #[test]
    fn body_unsatisfiable_detects_shared_attribute_conflicts() {
        let parsed = parse_clause("H = 1 <= Y.kind = \"a\", Y.kind = \"b\"").unwrap();
        assert!(body_unsatisfiable(&parsed.body));
        let parsed = parse_clause("H = 1 <= Y.kind = \"a\", Y.kind = \"a\"").unwrap();
        assert!(!body_unsatisfiable(&parsed.body));
    }
}
