//! Range-restriction (safety) analysis of WOL clauses (Section 3.1).
//!
//! "The concept of range-restriction is used to ensure that every variable in
//! the clause is bound to some object or value occurring in the database
//! instance in order for the atoms of a clause to be true. This is similar to
//! the idea of safety in Datalog clauses."
//!
//! The analysis computes the set of *bound* variables as a fixpoint:
//!
//! * a variable `X` is bound if `X in C` appears (class membership produces a
//!   binding by ranging over the extent of `C`);
//! * if one side of an equality has only bound variables, then the variables
//!   in *invertible positions* of the other side become bound — the whole
//!   side when it is a variable, the fields of a record term, the payload of a
//!   variant term, and the arguments of a Skolem term (Skolem functions are
//!   injective);
//! * comparison atoms (`<`, `=<`, `!=`) and set membership never bind.
//!
//! Body atoms are processed first, then head atoms (head-only variables such
//! as the target object of a transformation clause are bound by head
//! membership or Skolem equations). A clause is range-restricted iff every
//! variable ends up bound. The paper's non-example — `X.population < Y <=
//! X in CityA` — is rejected because `Y` is never bound.

use std::collections::BTreeSet;

use crate::ast::{Atom, Clause, Term, Var};
use crate::error::LangError;
use crate::Result;

/// Report on the binding analysis of a clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RangeReport {
    /// Variables bound by the body alone.
    pub bound_in_body: BTreeSet<Var>,
    /// Variables bound after also considering head atoms.
    pub bound: BTreeSet<Var>,
    /// Variables that could not be bound.
    pub unbound: BTreeSet<Var>,
}

impl RangeReport {
    /// True if every variable of the clause is bound.
    pub fn is_range_restricted(&self) -> bool {
        self.unbound.is_empty()
    }
}

/// Variables of a term in invertible positions: binding the term's value also
/// determines these variables.
fn invertible_vars(term: &Term, out: &mut BTreeSet<Var>) {
    match term {
        Term::Var(v) => {
            out.insert(v.clone());
        }
        Term::Const(_) => {}
        // Projections are not invertible: knowing `X.a` does not determine `X`.
        Term::Proj(_, _) => {}
        Term::Record(fields) => fields.iter().for_each(|(_, t)| invertible_vars(t, out)),
        Term::Variant(_, payload) => invertible_vars(payload, out),
        Term::Skolem(_, args) => args.terms().iter().for_each(|t| invertible_vars(t, out)),
    }
}

/// Whether every variable of `term` is already bound.
fn grounded(term: &Term, bound: &BTreeSet<Var>) -> bool {
    term.var_set().iter().all(|v| bound.contains(v))
}

fn apply_atom(atom: &Atom, bound: &mut BTreeSet<Var>) -> bool {
    let before = bound.len();
    match atom {
        Atom::Member(t, _) => {
            // Membership ranges over the class extent, binding the pattern.
            invertible_vars(t, bound);
        }
        Atom::Eq(s, t) => {
            if grounded(s, bound) {
                invertible_vars(t, bound);
            }
            if grounded(t, bound) {
                invertible_vars(s, bound);
            }
        }
        // Comparisons and set membership test values but do not enumerate them.
        Atom::Neq(_, _) | Atom::Lt(_, _) | Atom::Leq(_, _) => {}
        Atom::InSet(elem, set) => {
            // `E member S` with S bound enumerates the elements of S, binding E.
            if grounded(set, bound) {
                invertible_vars(elem, bound);
            }
        }
    }
    bound.len() != before
}

fn fixpoint(atoms: &[Atom], bound: &mut BTreeSet<Var>) {
    loop {
        let mut changed = false;
        for atom in atoms {
            changed |= apply_atom(atom, bound);
        }
        if !changed {
            break;
        }
    }
}

/// Run the binding analysis and return the full report.
pub fn analyse(clause: &Clause) -> RangeReport {
    let mut bound = BTreeSet::new();
    fixpoint(&clause.body, &mut bound);
    let bound_in_body = bound.clone();
    // Head atoms may bind head-only (existential) variables.
    let all_atoms: Vec<Atom> = clause
        .body
        .iter()
        .chain(clause.head.iter())
        .cloned()
        .collect();
    fixpoint(&all_atoms, &mut bound);
    let unbound: BTreeSet<Var> = clause
        .variables()
        .into_iter()
        .filter(|v| !bound.contains(v))
        .collect();
    RangeReport {
        bound_in_body,
        bound,
        unbound,
    }
}

/// Check that a clause is range-restricted, returning an error naming the
/// unbound variables otherwise.
pub fn check_range_restricted(clause: &Clause) -> Result<RangeReport> {
    let report = analyse(clause);
    if report.is_range_restricted() {
        Ok(report)
    } else {
        Err(LangError::RangeRestriction {
            clause: clause
                .label
                .clone()
                .unwrap_or_else(|| "<unlabelled>".to_string()),
            unbound: report.unbound.iter().cloned().collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_clause;

    #[test]
    fn clause_c1_is_range_restricted() {
        let c = parse_clause("X.state = Y <= Y in StateA, X = Y.capital").unwrap();
        let report = check_range_restricted(&c).unwrap();
        assert!(report.bound_in_body.contains("X"));
        assert!(report.bound_in_body.contains("Y"));
    }

    #[test]
    fn papers_unrestricted_example_rejected() {
        // "in the clause X.population < Y <= X in CityA the variable Y is not
        //  range restricted."
        let c = parse_clause("X.population < Y <= X in CityA").unwrap();
        let err = check_range_restricted(&c).unwrap_err();
        match err {
            LangError::RangeRestriction { unbound, .. } => {
                assert_eq!(unbound, vec!["Y".to_string()])
            }
            other => panic!("expected range-restriction error, got {other:?}"),
        }
    }

    #[test]
    fn transformation_clause_head_object_is_bound_by_head_membership() {
        // Clause (T1): X only appears in the head, bound by `X in CountryT`.
        let c = parse_clause(
            "X in CountryT, X.name = E.name, X.language = E.language <= E in CountryE",
        )
        .unwrap();
        let report = check_range_restricted(&c).unwrap();
        assert!(!report.bound_in_body.contains("X"));
        assert!(report.bound.contains("X"));
    }

    #[test]
    fn skolem_equation_binds_target_object() {
        // Clause (T4): X = Mk_CountryT(N) in the head binds X once N is bound.
        let c = parse_clause(
            "X = Mk_CountryT(N), X.language = L <= Y in CountryE, Y.name = N, Y.language = L",
        )
        .unwrap();
        let report = check_range_restricted(&c).unwrap();
        assert!(report.bound.contains("X"));
        assert!(report.bound_in_body.contains("N"));
        assert!(report.bound_in_body.contains("L"));
    }

    #[test]
    fn projection_binds_forward_not_backward() {
        // Knowing Y binds N = Y.name, but knowing X.name does not bind X.
        let c = parse_clause("Z = X.name <= Y in CountryE, X.name = Y.name").unwrap();
        let report = analyse(&c);
        assert!(report.bound.contains("Y"));
        assert!(!report.bound.contains("X"));
        assert!(!report.is_range_restricted());
    }

    #[test]
    fn record_and_variant_patterns_bind_components() {
        let c = parse_clause("K = (name = N, country = C) <= X in CityT, K = X.key, N = N, C = C")
            .unwrap();
        // Simplified: K bound via X.key; record pattern binds N and C.
        let report = analyse(&c);
        assert!(report.bound.contains("N"));
        assert!(report.bound.contains("C"));

        let c = parse_clause("Y.place = ins_euro_city(X) <= Y in CityT").unwrap();
        let report = analyse(&c);
        // Y.place is grounded (Y is bound), so the variant payload X is bound.
        assert!(report.bound.contains("X"));
        assert!(report.is_range_restricted());
    }

    #[test]
    fn member_of_bound_set_binds_element() {
        let c = parse_clause("N = E.name <= X in Cluster, E member X.markers").unwrap();
        let report = analyse(&c);
        assert!(report.bound.contains("E"));
        assert!(report.is_range_restricted());
    }

    #[test]
    fn comparison_atoms_do_not_bind() {
        let c = parse_clause("X != Y <= X in CityA").unwrap();
        let report = analyse(&c);
        assert!(!report.bound.contains("Y"));
        assert!(!report.is_range_restricted());
    }

    #[test]
    fn constants_are_trivially_grounded() {
        let c = parse_clause("X.currency = \"US-Dollars\" <= X in CountryT").unwrap();
        assert!(check_range_restricted(&c).is_ok());
    }

    #[test]
    fn unlabelled_clause_reported_as_such() {
        let c = parse_clause("X.population < Y <= X in CityA").unwrap();
        match check_range_restricted(&c).unwrap_err() {
            LangError::RangeRestriction { clause, .. } => assert_eq!(clause, "<unlabelled>"),
            other => panic!("unexpected {other:?}"),
        }
    }
}
