//! Shared configuration for the benchmark harness.
//!
//! Every bench uses a reduced sample count so that the full suite regenerating
//! the paper's evaluation claims (experiments E1-E7, see EXPERIMENTS.md) runs
//! in minutes rather than hours. The absolute numbers are not expected to
//! match the 1997 hardware; the *shape* of each comparison is.

/// Criterion sample size used by all benches.
pub const SAMPLES: usize = 10;

/// Criterion measurement time (seconds) used by all benches.
pub const MEASURE_SECS: u64 = 2;

/// Criterion warm-up time (milliseconds) used by all benches.
pub const WARMUP_MS: u64 = 300;
